//! The graph database: a set of graphs sharing one label vocabulary.
//!
//! # Representations
//!
//! A [`GraphDatabase`] holds each graph in one of two representations:
//!
//! * **Owned** — the pointer-rich [`Graph`] (construction, mutation, and
//!   the parity oracle);
//! * **Arena** — a row of a shared compact [`GraphArena`] (CSR flat
//!   arrays + interned [`gss_graph::LabelPool`]), paired with
//!   column-oriented [`StatsColumns`] so summaries decode without any
//!   recomputation. Arena rows materialize into pointer-rich graphs
//!   lazily, at most once, only when a consumer actually needs full
//!   random access (exact solvers, isomorphism checks).
//!
//! [`GraphDatabase::compact`] converts the current content into the
//! arena representation; mutations ([`GraphDatabase::push`],
//! [`GraphDatabase::replace`], [`GraphDatabase::remove`]) copy-on-write
//! the touched graph back into an owned slot and leave the shared arena
//! untouched — which is exactly what the `gss-store` MVCC layer needs:
//! cloning an arena-backed database is O(slots), not O(content).
//!
//! Both representations answer every query with **byte-identical**
//! results; `tests/storage_compact.rs` proptests enforce it and the
//! S14 cold-start benchmark gates it in CI.
//!
//! # Persistence
//!
//! [`GraphDatabase::save_bytes`] / [`GraphDatabase::load_bytes`] use the
//! [`codec`] section framing (magic `GSSGRDB\0`): the on-disk payload is
//! the arena's in-memory column layout, so loading validates the FNV
//! frame and adopts the bytes into aligned buffers — no per-graph
//! parsing, no summary recomputation. See README "Memory & storage".

use std::sync::{Arc, OnceLock};

use gss_graph::arena::{ArenaError, GraphArena, LabelPool, StatsColumns};
use gss_graph::format::{parse_database, write_database};
use gss_graph::stats::GraphStats;
use gss_graph::{Graph, GraphBuilder, GraphError, Vocabulary};

/// Identifier of a graph inside a [`GraphDatabase`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct GraphId(pub usize);

impl GraphId {
    /// The id as a dense index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A database `D = {g1, …, gn}` of labeled graphs.
///
/// Owning the [`Vocabulary`] guarantees the workspace-wide invariant that
/// graphs compared against each other use the same label interning.
///
/// Every stored graph also carries a lazily-built, cached
/// [`GraphStats`] summary ([`GraphDatabase::stats`]): label multisets,
/// edge-class multiset, sorted degree sequence, WL fingerprint and
/// connectivity — computed at most **once per graph for the lifetime of
/// the database** instead of once per candidate per scan. The mutating
/// APIs keep the cache aligned: [`GraphDatabase::push`] adds a fresh
/// cell, [`GraphDatabase::remove`] drops one, and
/// [`GraphDatabase::replace`] resets the touched cell — so a computed
/// summary never goes stale. Clones share the cells, which is what makes
/// the `gss-store` MVCC layer cheap: a new epoch clones the database and
/// only the touched graphs lose their cached summaries.
///
/// # Epochs
///
/// A database carries a monotonically increasing **epoch** counter
/// ([`GraphDatabase::epoch`], 0 for freshly loaded/built databases) that
/// is folded into [`GraphDatabase::fingerprint`]. The `gss-store`
/// snapshot store bumps it on every mutation batch, so two snapshots
/// never share a fingerprint — even when a remove+insert round-trip
/// reproduces byte-identical content — which is what keeps
/// fingerprint-keyed caches (the server's result cache) epoch-consistent.
#[derive(Debug, Clone, Default)]
pub struct GraphDatabase {
    vocab: Vocabulary,
    /// One slot per graph, in id order: owned pointer-rich graphs and/or
    /// rows of the shared compact arena (see module docs).
    slots: Vec<Slot>,
    /// The shared compact store arena slots point into. `Arc` so clones
    /// (MVCC epochs) share one copy; `None` until [`GraphDatabase::compact`]
    /// or a binary load.
    compact: Option<Arc<CompactStore>>,
    /// Mutation-batch generation this content belongs to (see type docs).
    epoch: u64,
    /// One cache cell per graph, aligned with `slots`. `Arc` so clones
    /// share already-computed summaries; `OnceLock` for thread-safe
    /// fill-once semantics under the parallel scans.
    // gss-lint: exempt(GraphDatabase::stats) — derived cache: every summary is a pure function of the stored content + `vocab`, which the fingerprint already covers; hashing fill state would make the key depend on scan history
    stats: Vec<Arc<OnceLock<GraphStats>>>,
}

/// One stored graph: owned pointer-rich, or a lazily-materialized row of
/// the shared [`CompactStore`] arena.
#[derive(Debug, Clone)]
enum Slot {
    /// Pointer-rich graph owned by this database (freshly built or
    /// copy-on-write after a mutation).
    Owned(Graph),
    /// Row `idx` of the shared arena. `cell` caches the materialized
    /// pointer-rich form, filled at most once and shared by clones.
    Arena {
        idx: u32,
        cell: Arc<OnceLock<Graph>>,
    },
}

/// The compact half of an arena-backed database: CSR graph columns plus
/// column-oriented per-graph summaries, always index-aligned.
#[derive(Debug)]
struct CompactStore {
    arena: GraphArena,
    columns: StatsColumns,
}

/// Memory accounting of one database, for the observability surface
/// (`stats` verb, `gss index stats`, `gss client --stats`).
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryStats {
    /// Number of stored graphs.
    pub graphs: usize,
    /// Graphs currently living in the compact arena (the rest are owned
    /// pointer-rich slots).
    pub arena_graphs: usize,
    /// Arena slots whose pointer-rich form has been materialized (each
    /// costs pointer-rich bytes *in addition to* its arena row).
    pub materialized: usize,
    /// Heap bytes of the compact arena, interned pool included (0 when
    /// the database has no arena).
    pub arena_bytes: usize,
    /// Heap bytes of the column-oriented stats (0 without an arena).
    pub stats_columns_bytes: usize,
    /// Entries in the interned string pool (labels + graph names).
    pub pool_entries: usize,
    /// Heap bytes of the interned string pool.
    pub pool_bytes: usize,
    /// Estimated heap bytes the same content costs pointer-rich — the
    /// baseline the ≤ 60% compaction gate compares against.
    pub pointer_rich_bytes: usize,
}

impl MemoryStats {
    /// Arena bytes per graph (0.0 for an empty or arena-less database).
    pub fn arena_bytes_per_graph(&self) -> f64 {
        if self.arena_graphs == 0 {
            0.0
        } else {
            self.arena_bytes as f64 / self.arena_graphs as f64
        }
    }

    /// Pointer-rich estimate per graph (0.0 for an empty database).
    pub fn pointer_rich_bytes_per_graph(&self) -> f64 {
        if self.graphs == 0 {
            0.0
        } else {
            self.pointer_rich_bytes as f64 / self.graphs as f64
        }
    }
}

impl GraphDatabase {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps pre-built parts (e.g. the reconstructed paper dataset). The
    /// caller asserts that every graph was built against `vocab`.
    pub fn from_parts(vocab: Vocabulary, graphs: Vec<Graph>) -> Self {
        let stats = graphs.iter().map(|_| Arc::default()).collect();
        GraphDatabase {
            vocab,
            slots: graphs.into_iter().map(Slot::Owned).collect(),
            compact: None,
            epoch: 0,
            stats,
        }
    }

    /// Parses a database from the `t/v/e` text format.
    pub fn from_text(input: &str) -> Result<Self, GraphError> {
        let mut vocab = Vocabulary::new();
        let graphs = parse_database(input, &mut vocab)?;
        Ok(GraphDatabase::from_parts(vocab, graphs))
    }

    /// Serializes the database to the `t/v/e` text format.
    pub fn to_text(&self) -> String {
        write_database(self.iter().map(|(_, g)| g), &self.vocab)
    }

    /// Adds a graph built through a builder wired to this database's
    /// vocabulary; returns its id.
    ///
    /// ```
    /// use gss_core::GraphDatabase;
    ///
    /// let mut db = GraphDatabase::new();
    /// let id = db
    ///     .add("triangle", |b| {
    ///         b.vertices(&["x", "y", "z"], "C").cycle(&["x", "y", "z"], "-")
    ///     })
    ///     .unwrap();
    /// assert_eq!(db.get(id).size(), 3);
    /// ```
    pub fn add<F>(&mut self, name: &str, build: F) -> Result<GraphId, GraphError>
    where
        F: for<'v> FnOnce(GraphBuilder<'v>) -> GraphBuilder<'v>,
    {
        let builder = GraphBuilder::new(name, &mut self.vocab);
        let graph = build(builder).build()?;
        Ok(self.push(graph))
    }

    /// Adds an already-built graph (must share this database's vocabulary).
    ///
    /// The new graph lives in an owned pointer-rich slot regardless of
    /// whether the database is arena-backed — mutations never touch the
    /// shared arena (copy-on-write at graph granularity).
    pub fn push(&mut self, graph: Graph) -> GraphId {
        let id = GraphId(self.slots.len());
        self.slots.push(Slot::Owned(graph));
        self.stats.push(Arc::default());
        id
    }

    /// Removes a graph, compacting the dense id space: every graph after
    /// it shifts down by one id. Returns the removed graph. Derived
    /// artifacts holding old ids (indexes, snapshots) must be remapped or
    /// rebuilt — the `gss-store` mutation path does exactly that and bumps
    /// the epoch so stale fingerprints stop validating.
    ///
    /// # Panics
    /// Panics for ids not created by this database.
    pub fn remove(&mut self, id: GraphId) -> Graph {
        self.stats.remove(id.0);
        let slot = self.slots.remove(id.0);
        self.take_graph(slot)
    }

    /// Replaces the graph behind an id in place (same id, new content),
    /// resetting its cached stats cell. Returns the previous graph. The
    /// replacement must share this database's vocabulary.
    ///
    /// # Panics
    /// Panics for ids not created by this database.
    pub fn replace(&mut self, id: GraphId, graph: Graph) -> Graph {
        self.stats[id.0] = Arc::default();
        let slot = std::mem::replace(&mut self.slots[id.0], Slot::Owned(graph));
        self.take_graph(slot)
    }

    /// Converts a detached slot into an owned pointer-rich graph
    /// (materializing from the arena when it was never touched).
    fn take_graph(&self, slot: Slot) -> Graph {
        match slot {
            Slot::Owned(g) => g,
            Slot::Arena { idx, cell } => {
                let store = self
                    .compact
                    .as_ref()
                    .expect("arena slot without a compact store");
                match Arc::try_unwrap(cell) {
                    Ok(cell) => cell
                        .into_inner()
                        .unwrap_or_else(|| store.arena.materialize(idx as usize)),
                    Err(shared) => shared
                        .get()
                        .cloned()
                        .unwrap_or_else(|| store.arena.materialize(idx as usize)),
                }
            }
        }
    }

    /// Builds a query graph against this database's vocabulary *without*
    /// storing it.
    pub fn build_query<F>(&mut self, name: &str, build: F) -> Result<Graph, GraphError>
    where
        F: for<'v> FnOnce(GraphBuilder<'v>) -> GraphBuilder<'v>,
    {
        let builder = GraphBuilder::new(name, &mut self.vocab);
        build(builder).build()
    }

    /// Number of graphs.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the database holds no graphs.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The graph behind an id.
    ///
    /// For arena slots this materializes the pointer-rich form on first
    /// access (at most once; clones share the cell). Summary-only
    /// consumers should prefer [`GraphDatabase::stats`], which never
    /// materializes.
    ///
    /// # Panics
    /// Panics for ids not created by this database.
    pub fn get(&self, id: GraphId) -> &Graph {
        match &self.slots[id.0] {
            Slot::Owned(g) => g,
            Slot::Arena { idx, cell } => cell.get_or_init(|| {
                self.compact
                    .as_ref()
                    .expect("arena slot without a compact store")
                    .arena
                    .materialize(*idx as usize)
            }),
        }
    }

    /// The cached [`GraphStats`] summary of a stored graph, computed on
    /// first access and reused by every later scan (and by clones of this
    /// database).
    ///
    /// Arena-backed graphs never compute anything here: the summary is
    /// decoded from the column-oriented [`StatsColumns`] the compact
    /// store persisted, which is what makes cold start near-instant.
    ///
    /// # Panics
    /// Panics for ids not created by this database.
    pub fn stats(&self, id: GraphId) -> &GraphStats {
        self.stats[id.0].get_or_init(|| match &self.slots[id.0] {
            Slot::Owned(g) => GraphStats::compute(g),
            Slot::Arena { idx, .. } => self
                .compact
                .as_ref()
                .expect("arena slot without a compact store")
                .columns
                .decode(*idx as usize),
        })
    }

    /// Eagerly fills every stats cache cell — useful at load time in
    /// long-lived processes (e.g. `gss-server`) so the first query does not
    /// pay the whole database's summary cost. For arena-backed databases
    /// this is a pure column decode (no WL refinement, no connectivity
    /// traversal).
    pub fn precompute_stats(&self) {
        for i in 0..self.slots.len() {
            let _ = self.stats(GraphId(i));
        }
    }

    /// Iterates `(id, graph)` pairs in insertion order, materializing
    /// arena slots on the way.
    pub fn iter(&self) -> impl Iterator<Item = (GraphId, &Graph)> + '_ {
        (0..self.slots.len()).map(|i| (GraphId(i), self.get(GraphId(i))))
    }

    /// The display name of a stored graph, without materializing arena
    /// slots (one interned-pool lookup).
    ///
    /// # Panics
    /// Panics for ids not created by this database.
    pub fn name_of(&self, id: GraphId) -> &str {
        match &self.slots[id.0] {
            Slot::Owned(g) => g.name(),
            Slot::Arena { idx, cell } => match cell.get() {
                Some(g) => g.name(),
                None => self
                    .compact
                    .as_ref()
                    .expect("arena slot without a compact store")
                    .arena
                    .graph(*idx as usize)
                    .name(),
            },
        }
    }

    /// The shared vocabulary.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Mutable access to the vocabulary (for wiring external builders).
    pub fn vocab_mut(&mut self) -> &mut Vocabulary {
        &mut self.vocab
    }

    /// The mutation epoch this content belongs to (0 for freshly
    /// loaded/built databases; bumped by the `gss-store` snapshot store
    /// on every mutation batch). Folded into
    /// [`GraphDatabase::fingerprint`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Sets the mutation epoch (see [`GraphDatabase::epoch`]). Intended
    /// for the snapshot store's batch-apply path; changing the epoch
    /// changes the fingerprint, so derived artifacts built against the
    /// old epoch stop validating.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Finds a graph id by name (first match). Does not materialize
    /// arena slots.
    pub fn find_by_name(&self, name: &str) -> Option<GraphId> {
        (0..self.slots.len())
            .map(GraphId)
            .find(|&id| self.name_of(id) == name)
    }

    /// Groups the database into isomorphism classes: each inner vector holds
    /// the ids of mutually isomorphic graphs (singletons for unique graphs),
    /// ordered by first occurrence.
    ///
    /// Candidates are bucketed by Weisfeiler–Lehman fingerprint first, so
    /// the quadratic exact check only runs inside (typically tiny) buckets.
    pub fn isomorphism_classes(&self) -> Vec<Vec<GraphId>> {
        use std::collections::HashMap;
        let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
        for i in 0..self.slots.len() {
            // The cached summary's WL fingerprint uses the same round
            // count as the direct call did, and decodes for free on
            // arena-backed graphs.
            buckets
                .entry(self.stats(GraphId(i)).wl_fingerprint)
                .or_default()
                .push(i);
        }
        let mut classes: Vec<Vec<GraphId>> = Vec::new();
        let mut bucket_keys: Vec<(usize, u64)> = buckets
            .iter()
            .map(|(&fp, members)| (members[0], fp))
            .collect();
        bucket_keys.sort(); // first-occurrence order
        for (_, fp) in bucket_keys {
            let members = &buckets[&fp];
            let mut local: Vec<Vec<GraphId>> = Vec::new();
            'member: for &i in members {
                for class in &mut local {
                    let representative = class[0];
                    if gss_iso::are_isomorphic(self.get(representative), self.get(GraphId(i))) {
                        class.push(GraphId(i));
                        continue 'member;
                    }
                }
                local.push(vec![GraphId(i)]);
            }
            classes.extend(local);
        }
        classes.sort_by_key(|c| c[0]);
        classes
    }

    /// Ids of graphs that are isomorphic duplicates of an earlier graph —
    /// what a deduplicating ingest would drop.
    pub fn duplicate_ids(&self) -> Vec<GraphId> {
        self.isomorphism_classes()
            .into_iter()
            .flat_map(|class| class.into_iter().skip(1))
            .collect()
    }

    /// A structural fingerprint of the database: a 64-bit hash of the
    /// mutation epoch plus every graph's vertex labels and edge list in
    /// insertion order.
    ///
    /// Derived artifacts (e.g. a serialized `gss-index` pivot index) store
    /// this value and refuse to load against a database whose content or
    /// ordering has changed. Renaming graphs does not change the
    /// fingerprint; any structural or label edit does, and so does a
    /// mutation-epoch bump — two live-store snapshots never collide even
    /// when a mutation round-trip restores identical content.
    pub fn fingerprint(&self) -> u64 {
        let mut h = codec::Fnv64::new();
        h.write_u64(self.epoch);
        // Labels hash as their vocabulary strings, not their interned ids:
        // ids are vocabulary-relative, and two different databases can
        // intern different strings to the same dense ids.
        let label = |h: &mut codec::Fnv64, l: gss_graph::Label| {
            let name = self.vocab.name(l).unwrap_or("");
            h.write_u64(name.len() as u64);
            h.write(name.as_bytes());
        };
        h.write_u64(self.slots.len() as u64);
        // Both representations hash the identical byte stream — arena
        // labels are vocabulary ids by construction, so the same strings
        // come out either way. This keeps the fingerprint stable across
        // `compact()`, save/load, and graph-granular copy-on-write.
        for slot in &self.slots {
            match slot {
                Slot::Owned(g) => {
                    h.write_u64(g.order() as u64);
                    h.write_u64(g.size() as u64);
                    for v in g.vertices() {
                        label(&mut h, g.vertex_label(v));
                    }
                    for e in g.edges() {
                        let edge = g.edge(e);
                        h.write_u64(edge.u.index() as u64);
                        h.write_u64(edge.v.index() as u64);
                        label(&mut h, edge.label);
                    }
                }
                Slot::Arena { idx, .. } => {
                    let r = self
                        .compact
                        .as_ref()
                        .expect("arena slot without a compact store")
                        .arena
                        .graph(*idx as usize);
                    h.write_u64(r.order() as u64);
                    h.write_u64(r.size() as u64);
                    for v in r.vertices() {
                        label(&mut h, r.vertex_label(v));
                    }
                    for e in r.edges() {
                        let (u, v) = r.edge_endpoints(e);
                        h.write_u64(u.index() as u64);
                        h.write_u64(v.index() as u64);
                        label(&mut h, r.edge_label(e));
                    }
                }
            }
        }
        h.finish()
    }

    /// True when every stored graph lives in the compact arena (no owned
    /// slots) — the state [`GraphDatabase::compact`] and
    /// [`GraphDatabase::load_bytes`] produce.
    pub fn is_compact(&self) -> bool {
        self.slots.iter().all(|s| matches!(s, Slot::Arena { .. }))
    }

    /// Converts the current content into the compact arena representation:
    /// one shared [`GraphArena`] (CSR flat arrays + interned pool) plus
    /// column-oriented [`StatsColumns`].
    ///
    /// Content, ids, epoch and [`GraphDatabase::fingerprint`] are all
    /// unchanged; already-computed summaries are reused (anything missing
    /// is computed here, so the columns are always complete). Later
    /// mutations copy-on-write out of the arena at graph granularity.
    pub fn compact(&mut self) {
        // Complete the summary cache first — the columns persist every
        // graph's stats so a later load never recomputes them.
        self.precompute_stats();
        let arena = {
            let graphs: Vec<&Graph> = (0..self.slots.len())
                .map(|i| self.get(GraphId(i)))
                .collect();
            GraphArena::from_graphs(graphs, &self.vocab)
        };
        let columns =
            StatsColumns::from_stats((0..self.slots.len()).map(|i| self.stats(GraphId(i))));
        self.compact = Some(Arc::new(CompactStore { arena, columns }));
        self.slots = (0..self.stats.len())
            .map(|i| Slot::Arena {
                idx: i as u32,
                cell: Arc::default(),
            })
            .collect();
    }

    /// Memory accounting of the current representation (see
    /// [`MemoryStats`]). The pointer-rich baseline is an estimate of the
    /// same content in owned [`Graph`] form, derived from each graph's
    /// shape — allocator slack excluded on both sides.
    pub fn memory_stats(&self) -> MemoryStats {
        let mut m = MemoryStats {
            graphs: self.slots.len(),
            arena_graphs: 0,
            materialized: 0,
            arena_bytes: 0,
            stats_columns_bytes: 0,
            pool_entries: 0,
            pool_bytes: 0,
            pointer_rich_bytes: 0,
        };
        if let Some(store) = &self.compact {
            m.arena_bytes = store.arena.heap_bytes();
            m.stats_columns_bytes = store.columns.heap_bytes();
            m.pool_entries = store.arena.pool().len();
            m.pool_bytes = store.arena.pool().heap_bytes();
        }
        for slot in &self.slots {
            let (order, size, name_len) = match slot {
                Slot::Owned(g) => (g.order(), g.size(), g.name().len()),
                Slot::Arena { idx, cell } => {
                    m.arena_graphs += 1;
                    if cell.get().is_some() {
                        m.materialized += 1;
                    }
                    let r = self
                        .compact
                        .as_ref()
                        .expect("arena slot without a compact store")
                        .arena
                        .graph(*idx as usize);
                    (r.order(), r.size(), r.name().len())
                }
            };
            m.pointer_rich_bytes += gss_graph::arena::pointer_rich_estimate(order, size, name_len);
        }
        m
    }

    /// Serializes the database into the zero-parse binary format (magic
    /// `GSSGRDB\0`): the [`codec`] FNV-checksummed frame around
    /// alignment-padded sections whose payloads are the arena's
    /// in-memory columns. Databases not yet compact are compacted into a
    /// temporary store first (`&self` stays untouched).
    pub fn save_bytes(&self) -> Vec<u8> {
        if self.fully_compact() {
            let store = self.compact.as_ref().expect("fully_compact checked");
            encode_store(self.epoch, store)
        } else {
            let mut tmp = self.clone();
            tmp.compact();
            let store = tmp.compact.as_ref().expect("just compacted");
            encode_store(self.epoch, store)
        }
    }

    /// True when the slots are exactly rows `0..n` of the arena, in order
    /// — the state where the arena alone describes the whole content.
    fn fully_compact(&self) -> bool {
        match &self.compact {
            None => false,
            Some(store) => {
                store.arena.len() == self.slots.len()
                    && self
                        .slots
                        .iter()
                        .enumerate()
                        .all(|(i, s)| matches!(s, Slot::Arena { idx, .. } if *idx as usize == i))
            }
        }
    }

    /// Loads a database serialized by [`GraphDatabase::save_bytes`].
    ///
    /// The FNV frame is validated first (any single corrupted byte is
    /// rejected), then the section payloads are adopted into aligned
    /// column buffers and structurally validated — no per-graph parsing,
    /// no label re-interning, no summary recomputation. Every graph
    /// arrives as a lazy arena slot; the vocabulary is rebuilt from the
    /// pool prefix with identical label ids.
    pub fn load_bytes(data: &[u8]) -> Result<Self, codec::CodecError> {
        let (epoch, store) = decode_store(data)?;
        let vocab = store.arena.rebuild_vocab();
        let n = store.arena.len();
        Ok(GraphDatabase {
            vocab,
            slots: (0..n)
                .map(|i| Slot::Arena {
                    idx: i as u32,
                    cell: Arc::default(),
                })
                .collect(),
            compact: Some(Arc::new(store)),
            epoch,
            stats: (0..n).map(|_| Arc::default()).collect(),
        })
    }

    /// True when `data` begins with the binary database magic — the
    /// front-end's format sniff (binary vs `t/v/e` text).
    pub fn is_binary(data: &[u8]) -> bool {
        data.get(..8) == Some(&DB_MAGIC[..])
    }

    /// Writes [`GraphDatabase::save_bytes`] to a file.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.save_bytes())
    }

    /// Reads a file written by [`GraphDatabase::save`].
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        let data = std::fs::read(path)?;
        Self::load_bytes(&data).map_err(std::io::Error::other)
    }
}

/// 8-byte magic of the binary database format.
const DB_MAGIC: &[u8; 8] = b"GSSGRDB\0";
/// Current format version. Bump rules: add sections only at the end and
/// gate them on the version read from the header; never reorder or
/// re-type existing sections — old readers must keep rejecting newer
/// files via `UnsupportedVersion`, and this reader must keep accepting
/// every older version it ever shipped.
const DB_VERSION: u32 = 1;

/// Encodes a compact store (+ epoch) into the section format. Layout
/// after the 12-byte frame header: `epoch: u64`, `label_count: u32`,
/// then one aligned section per column in fixed order — pool (bytes,
/// offsets), arena (names, vertex_off, edge_off, vertex_labels, edge_u,
/// edge_v, edge_labels), stats (orders, sizes, wl_fingerprints,
/// connected, degree/vlabel/elabel/eclass CSR families) — and the
/// trailing FNV-1a checksum.
fn encode_store(epoch: u64, store: &CompactStore) -> Vec<u8> {
    let mut w = codec::Writer::new(DB_MAGIC, DB_VERSION);
    w.u64(epoch);
    w.u32(store.arena.label_count());
    let (pool_bytes, pool_offsets) = store.arena.pool().raw();
    w.section(pool_bytes);
    w.section_u32(pool_offsets);
    let (names, voff, eoff, vlabels, eu, ev, elabels) = store.arena.raw();
    for col in [names, voff, eoff, vlabels, eu, ev, elabels] {
        w.section_u32(col);
    }
    let (fixed, deg, vl, el, ec) = store.columns.raw();
    w.section_u32(fixed.0);
    w.section_u32(fixed.1);
    w.section_u64(fixed.2);
    w.section(fixed.3);
    for col in [
        deg.0, deg.1, vl.0, vl.1, vl.2, el.0, el.1, el.2, ec.0, ec.1, ec.2, ec.3, ec.4,
    ] {
        w.section_u32(col);
    }
    w.finish()
}

/// Decodes the section format back into a compact store (+ epoch),
/// validating frame, structure and cross-column alignment.
fn decode_store(data: &[u8]) -> Result<(u64, CompactStore), codec::CodecError> {
    let invalid = |e: ArenaError| codec::CodecError::Invalid(e.0);
    let (mut r, _version) = codec::Reader::new(data, DB_MAGIC, DB_VERSION)?;
    let epoch = r.u64()?;
    let label_count = r.u32()?;
    let pool_bytes = r.section()?.to_vec();
    let pool_offsets = r.section_u32()?;
    let pool = LabelPool::from_raw(pool_bytes, pool_offsets).map_err(invalid)?;
    let names = r.section_u32()?;
    let voff = r.section_u32()?;
    let eoff = r.section_u32()?;
    let vlabels = r.section_u32()?;
    let eu = r.section_u32()?;
    let ev = r.section_u32()?;
    let elabels = r.section_u32()?;
    let arena = GraphArena::from_raw(
        pool,
        label_count,
        names,
        voff,
        eoff,
        vlabels,
        eu,
        ev,
        elabels,
    )
    .map_err(invalid)?;
    let orders = r.section_u32()?;
    let sizes = r.section_u32()?;
    let wl = r.section_u64()?;
    let connected = r.section()?.to_vec();
    let deg_off = r.section_u32()?;
    let deg_vals = r.section_u32()?;
    let vl_off = r.section_u32()?;
    let vl_keys = r.section_u32()?;
    let vl_counts = r.section_u32()?;
    let el_off = r.section_u32()?;
    let el_keys = r.section_u32()?;
    let el_counts = r.section_u32()?;
    let ec_off = r.section_u32()?;
    let ec_lo = r.section_u32()?;
    let ec_hi = r.section_u32()?;
    let ec_label = r.section_u32()?;
    let ec_counts = r.section_u32()?;
    r.finish()?;
    let columns = StatsColumns::from_raw(
        (orders, sizes, wl, connected),
        (deg_off, deg_vals),
        (vl_off, vl_keys, vl_counts),
        (el_off, el_keys, el_counts),
        (ec_off, ec_lo, ec_hi, ec_label, ec_counts),
    )
    .map_err(invalid)?;
    if columns.len() != arena.len() {
        return Err(codec::CodecError::Invalid(
            "stats columns do not align with the arena".into(),
        ));
    }
    Ok((epoch, CompactStore { arena, columns }))
}

pub mod codec {
    //! Versioned binary serialization for database-derived artifacts.
    //!
    //! A tiny dependency-free little-endian codec with the framing every
    //! persistent artifact in the workspace shares: an 8-byte magic, a
    //! `u32` format version, a length-delimited payload and a trailing
    //! FNV-1a checksum. [`Writer`] produces the frame, [`Reader`] verifies
    //! magic/version/checksum up front so consumers only ever decode
    //! integrity-checked bytes. The first user is the `gss-index` pivot
    //! index (`PivotIndex::{to_bytes, from_bytes}`).

    use std::fmt;

    /// Streaming FNV-1a 64-bit hasher (checksums and fingerprints).
    #[derive(Clone, Debug)]
    pub struct Fnv64(u64);

    impl Fnv64 {
        /// The standard FNV-1a offset basis.
        pub fn new() -> Self {
            Fnv64(0xcbf2_9ce4_8422_2325)
        }

        /// Absorbs raw bytes.
        pub fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 ^= u64::from(b);
                self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }

        /// Absorbs a `u64` (little-endian).
        pub fn write_u64(&mut self, v: u64) {
            self.write(&v.to_le_bytes());
        }

        /// The digest so far.
        pub fn finish(&self) -> u64 {
            self.0
        }
    }

    impl Default for Fnv64 {
        fn default() -> Self {
            Fnv64::new()
        }
    }

    /// Why a binary artifact failed to decode.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum CodecError {
        /// The magic bytes do not match the expected artifact type.
        BadMagic,
        /// The payload checksum does not match (truncation or corruption).
        BadChecksum,
        /// The reader ran past the end of the payload.
        Truncated,
        /// The payload has bytes left after the last expected field.
        TrailingBytes,
        /// The format version is newer than this build understands.
        UnsupportedVersion {
            /// Version found in the artifact header.
            found: u32,
            /// Highest version this build can read.
            supported: u32,
        },
        /// A field decoded to a value that violates the format's invariants.
        Invalid(String),
    }

    impl fmt::Display for CodecError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                CodecError::BadMagic => write!(f, "not a recognized artifact (bad magic)"),
                CodecError::BadChecksum => write!(f, "checksum mismatch (corrupt or truncated)"),
                CodecError::Truncated => write!(f, "unexpected end of data"),
                CodecError::TrailingBytes => write!(f, "trailing bytes after payload"),
                CodecError::UnsupportedVersion { found, supported } => write!(
                    f,
                    "format version {found} is newer than supported version {supported}"
                ),
                CodecError::Invalid(msg) => write!(f, "invalid field: {msg}"),
            }
        }
    }

    impl std::error::Error for CodecError {}

    /// Builds a framed artifact: magic, version, payload, FNV-1a checksum.
    #[derive(Debug)]
    pub struct Writer {
        buf: Vec<u8>,
    }

    impl Writer {
        /// Starts a frame with the given 8-byte magic and format version.
        pub fn new(magic: &[u8; 8], version: u32) -> Self {
            let mut buf = Vec::with_capacity(64);
            buf.extend_from_slice(magic);
            buf.extend_from_slice(&version.to_le_bytes());
            Writer { buf }
        }

        /// Appends a `u32`.
        pub fn u32(&mut self, v: u32) {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }

        /// Appends a `u64`.
        pub fn u64(&mut self, v: u64) {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }

        /// Appends a `usize` as `u64`.
        pub fn usize(&mut self, v: usize) {
            self.u64(v as u64);
        }

        /// Appends an `f64` by bit pattern (exact round-trip).
        pub fn f64(&mut self, v: f64) {
            self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }

        /// Appends length-delimited raw bytes (`u64` length, then the
        /// bytes verbatim).
        pub fn bytes(&mut self, v: &[u8]) {
            self.usize(v.len());
            self.buf.extend_from_slice(v);
        }

        /// Appends a length-delimited UTF-8 string.
        pub fn str(&mut self, v: &str) {
            self.bytes(v.as_bytes());
        }

        /// Pads with zero bytes to the next 8-byte frame offset.
        pub fn align8(&mut self) {
            while !self.buf.len().is_multiple_of(8) {
                self.buf.push(0);
            }
        }

        /// Appends an **aligned section**: a `u64` byte length, zero
        /// padding up to the next 8-byte frame offset, then the payload
        /// verbatim. Because payloads always start 8-byte aligned, a
        /// little-endian array written here can be adopted (or mmapped)
        /// in place by the reader — the on-disk layout *is* the
        /// in-memory layout.
        pub fn section(&mut self, payload: &[u8]) {
            self.usize(payload.len());
            self.align8();
            self.buf.extend_from_slice(payload);
        }

        /// Appends a `u32` column as an aligned section (little-endian).
        pub fn section_u32(&mut self, vals: &[u32]) {
            self.usize(vals.len() * 4);
            self.align8();
            for &v in vals {
                self.buf.extend_from_slice(&v.to_le_bytes());
            }
        }

        /// Appends a `u64` column as an aligned section (little-endian).
        pub fn section_u64(&mut self, vals: &[u64]) {
            self.usize(vals.len() * 8);
            self.align8();
            for &v in vals {
                self.buf.extend_from_slice(&v.to_le_bytes());
            }
        }

        /// Finishes the frame: appends the checksum of everything written
        /// (magic and version included) and returns the bytes.
        pub fn finish(self) -> Vec<u8> {
            let mut h = Fnv64::new();
            h.write(&self.buf);
            let mut buf = self.buf;
            buf.extend_from_slice(&h.finish().to_le_bytes());
            buf
        }
    }

    /// Decodes a framed artifact produced by [`Writer`].
    #[derive(Debug)]
    pub struct Reader<'a> {
        data: &'a [u8],
        pos: usize,
    }

    impl<'a> Reader<'a> {
        /// Verifies magic, version and checksum; returns the reader
        /// positioned at the payload plus the artifact's version.
        ///
        /// `supported` is the highest version this build understands;
        /// older versions are the caller's job to branch on.
        pub fn new(
            data: &'a [u8],
            magic: &[u8; 8],
            supported: u32,
        ) -> Result<(Self, u32), CodecError> {
            if data.len() < 8 + 4 + 8 {
                return Err(if data.get(..8) == Some(&magic[..]) {
                    CodecError::BadChecksum
                } else {
                    CodecError::BadMagic
                });
            }
            if &data[..8] != magic {
                return Err(CodecError::BadMagic);
            }
            let (payload, tail) = data.split_at(data.len() - 8);
            let mut h = Fnv64::new();
            h.write(payload);
            if tail != h.finish().to_le_bytes() {
                return Err(CodecError::BadChecksum);
            }
            let version = u32::from_le_bytes(payload[8..12].try_into().expect("4 bytes"));
            if version > supported {
                return Err(CodecError::UnsupportedVersion {
                    found: version,
                    supported,
                });
            }
            Ok((
                Reader {
                    data: payload,
                    pos: 12,
                },
                version,
            ))
        }

        fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
            let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
            if end > self.data.len() {
                return Err(CodecError::Truncated);
            }
            let s = &self.data[self.pos..end];
            self.pos = end;
            Ok(s)
        }

        /// Reads a `u32`.
        pub fn u32(&mut self) -> Result<u32, CodecError> {
            Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
        }

        /// Reads a `u64`.
        pub fn u64(&mut self) -> Result<u64, CodecError> {
            Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
        }

        /// Reads a `usize` (stored as `u64`), rejecting values that do not
        /// fit the platform.
        pub fn usize(&mut self) -> Result<usize, CodecError> {
            usize::try_from(self.u64()?)
                .map_err(|_| CodecError::Invalid("length exceeds platform usize".into()))
        }

        /// Reads an `f64` by bit pattern.
        pub fn f64(&mut self) -> Result<f64, CodecError> {
            Ok(f64::from_bits(self.u64()?))
        }

        /// Reads length-delimited raw bytes written by [`Writer::bytes`].
        pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
            let len = self.usize()?;
            self.take(len)
        }

        /// Reads a length-delimited UTF-8 string written by
        /// [`Writer::str`], rejecting invalid UTF-8.
        pub fn str(&mut self) -> Result<&'a str, CodecError> {
            std::str::from_utf8(self.bytes()?)
                .map_err(|_| CodecError::Invalid("string field is not valid UTF-8".into()))
        }

        /// Skips the padding [`Writer::align8`] wrote.
        pub fn align8(&mut self) -> Result<(), CodecError> {
            let pad = (8 - self.pos % 8) % 8;
            self.take(pad).map(|_| ())
        }

        /// Reads an aligned section written by [`Writer::section`],
        /// borrowing the payload in place (zero-copy).
        pub fn section(&mut self) -> Result<&'a [u8], CodecError> {
            let len = self.usize()?;
            self.align8()?;
            self.take(len)
        }

        /// Reads an aligned `u32` column section into an (aligned)
        /// buffer — a bulk little-endian adopt, not a parse.
        pub fn section_u32(&mut self) -> Result<Vec<u32>, CodecError> {
            let raw = self.section()?;
            if raw.len() % 4 != 0 {
                return Err(CodecError::Invalid(
                    "u32 section length not a multiple of 4".into(),
                ));
            }
            Ok(raw
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().expect("4")))
                .collect())
        }

        /// Reads an aligned `u64` column section into an (aligned)
        /// buffer — a bulk little-endian adopt, not a parse.
        pub fn section_u64(&mut self) -> Result<Vec<u64>, CodecError> {
            let raw = self.section()?;
            if raw.len() % 8 != 0 {
                return Err(CodecError::Invalid(
                    "u64 section length not a multiple of 8".into(),
                ));
            }
            Ok(raw
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("8")))
                .collect())
        }

        /// Asserts the payload was consumed exactly.
        pub fn finish(self) -> Result<(), CodecError> {
            if self.pos == self.data.len() {
                Ok(())
            } else {
                Err(CodecError::TrailingBytes)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut db = GraphDatabase::new();
        let a = db.add("a", |b| b.vertex("x", "X")).unwrap();
        let b = db
            .add("b", |b| b.vertices(&["p", "q"], "P").edge("p", "q", "-"))
            .unwrap();
        assert_eq!(db.len(), 2);
        assert_eq!(db.get(a).name(), "a");
        assert_eq!(db.get(b).size(), 1);
        assert_eq!(db.find_by_name("b"), Some(b));
        assert_eq!(db.find_by_name("zzz"), None);
        assert!(!db.is_empty());
    }

    #[test]
    fn builder_errors_propagate() {
        let mut db = GraphDatabase::new();
        let err = db.add("bad", |b| b.edge("no", "pe", "-")).unwrap_err();
        assert!(matches!(err, GraphError::UnknownVertexName { .. }));
        assert!(db.is_empty(), "failed add must not insert");
    }

    #[test]
    fn shared_vocabulary_across_graphs() {
        let mut db = GraphDatabase::new();
        db.add("a", |b| b.vertex("x", "C")).unwrap();
        db.add("b", |b| b.vertex("y", "C")).unwrap();
        let la = db.get(GraphId(0)).vertex_label(gss_graph::VertexId::new(0));
        let lb = db.get(GraphId(1)).vertex_label(gss_graph::VertexId::new(0));
        assert_eq!(la, lb, "same string label must intern identically");
    }

    #[test]
    fn text_round_trip() {
        let mut db = GraphDatabase::new();
        db.add("mol", |b| {
            b.vertex("c1", "C").vertex("o", "O").edge("c1", "o", "=")
        })
        .unwrap();
        let text = db.to_text();
        let db2 = GraphDatabase::from_text(&text).unwrap();
        assert_eq!(db2.len(), 1);
        assert_eq!(db2.get(GraphId(0)).name(), "mol");
        assert_eq!(db2.to_text(), text);
    }

    #[test]
    fn isomorphism_classes_group_duplicates() {
        let mut db = GraphDatabase::new();
        // Two structurally identical triangles entered in different orders,
        // one distinct path, and an exact re-insertion.
        db.add("t1", |b| {
            b.vertices(&["a", "b", "c"], "C")
                .cycle(&["a", "b", "c"], "-")
        })
        .unwrap();
        db.add("p", |b| {
            b.vertices(&["a", "b", "c"], "C")
                .path(&["a", "b", "c"], "-")
        })
        .unwrap();
        db.add("t2", |b| {
            b.vertices(&["x", "y", "z"], "C")
                .cycle(&["z", "x", "y"], "-")
        })
        .unwrap();
        db.add("t3", |b| {
            b.vertices(&["q", "r", "s"], "C")
                .cycle(&["q", "r", "s"], "-")
        })
        .unwrap();

        let classes = db.isomorphism_classes();
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[0], vec![GraphId(0), GraphId(2), GraphId(3)]);
        assert_eq!(classes[1], vec![GraphId(1)]);
        assert_eq!(db.duplicate_ids(), vec![GraphId(2), GraphId(3)]);
    }

    #[test]
    fn isomorphism_classes_respect_labels() {
        let mut db = GraphDatabase::new();
        db.add("c", |b| b.vertices(&["a", "b"], "C").edge("a", "b", "-"))
            .unwrap();
        db.add("n", |b| b.vertices(&["a", "b"], "N").edge("a", "b", "-"))
            .unwrap();
        assert_eq!(db.isomorphism_classes().len(), 2);
        assert!(db.duplicate_ids().is_empty());
    }

    #[test]
    fn codec_round_trips_and_rejects_corruption() {
        use codec::{CodecError, Reader, Writer};
        const MAGIC: &[u8; 8] = b"GSSTEST\0";
        let mut w = Writer::new(MAGIC, 3);
        w.u32(7);
        w.u64(u64::MAX);
        w.usize(42);
        w.f64(-0.125);
        let bytes = w.finish();

        let (mut r, version) = Reader::new(&bytes, MAGIC, 3).unwrap();
        assert_eq!(version, 3);
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.usize().unwrap(), 42);
        assert_eq!(r.f64().unwrap(), -0.125);
        r.finish().unwrap();

        // Underread is detected by finish, overread by the accessor.
        let (r, _) = Reader::new(&bytes, MAGIC, 3).unwrap();
        assert_eq!(r.finish().unwrap_err(), CodecError::TrailingBytes);
        let (mut r2, _) = Reader::new(&bytes, MAGIC, 3).unwrap();
        for _ in 0..4 {
            let _ = r2.u64();
        }
        assert_eq!(r2.u64().unwrap_err(), CodecError::Truncated);

        // Wrong magic, future version, flipped bit, truncation.
        assert_eq!(
            Reader::new(&bytes, b"OTHERMAG", 3).unwrap_err(),
            CodecError::BadMagic
        );
        assert_eq!(
            Reader::new(&bytes, MAGIC, 2).unwrap_err(),
            CodecError::UnsupportedVersion {
                found: 3,
                supported: 2
            }
        );
        let mut corrupt = bytes.clone();
        corrupt[14] ^= 1;
        assert_eq!(
            Reader::new(&corrupt, MAGIC, 3).unwrap_err(),
            CodecError::BadChecksum
        );
        assert_eq!(
            Reader::new(&bytes[..bytes.len() - 1], MAGIC, 3).unwrap_err(),
            CodecError::BadChecksum
        );
        assert_eq!(
            Reader::new(&bytes[..4], MAGIC, 3).unwrap_err(),
            CodecError::BadMagic
        );
    }

    #[test]
    fn codec_strings_and_bytes_round_trip() {
        use codec::{CodecError, Reader, Writer};
        const MAGIC: &[u8; 8] = b"GSSTEST\0";
        let mut w = Writer::new(MAGIC, 1);
        w.str("t a\nv 0 C\n");
        w.bytes(&[0, 255, 7]);
        w.str("");
        let bytes = w.finish();

        let (mut r, _) = Reader::new(&bytes, MAGIC, 1).unwrap();
        assert_eq!(r.str().unwrap(), "t a\nv 0 C\n");
        assert_eq!(r.bytes().unwrap(), &[0, 255, 7]);
        assert_eq!(r.str().unwrap(), "");
        r.finish().unwrap();

        // A length that runs past the payload is a truncation, and
        // invalid UTF-8 is rejected as a typed error.
        let mut w = Writer::new(MAGIC, 1);
        w.usize(1_000_000);
        let bytes = w.finish();
        let (mut r, _) = Reader::new(&bytes, MAGIC, 1).unwrap();
        assert_eq!(r.bytes().unwrap_err(), CodecError::Truncated);
        let mut w = Writer::new(MAGIC, 1);
        w.bytes(&[0xff, 0xfe]);
        let bytes = w.finish();
        let (mut r, _) = Reader::new(&bytes, MAGIC, 1).unwrap();
        assert!(matches!(r.str().unwrap_err(), CodecError::Invalid(_)));
    }

    #[test]
    fn fingerprint_tracks_structure_not_names() {
        let mut db = GraphDatabase::new();
        db.add("a", |b| b.vertices(&["x", "y"], "C").edge("x", "y", "-"))
            .unwrap();
        let fp = db.fingerprint();
        assert_eq!(fp, db.fingerprint(), "deterministic");

        // Renaming a graph leaves the fingerprint alone…
        let mut renamed = db.clone();
        let g = renamed.get(GraphId(0)).clone();
        let mut g2 = g.clone();
        g2.set_name("other");
        renamed = GraphDatabase::from_parts(renamed.vocab().clone(), vec![g2]);
        assert_eq!(renamed.fingerprint(), fp);

        // …while adding a graph or editing structure changes it.
        let mut grown = db.clone();
        grown.add("b", |b| b.vertex("z", "N")).unwrap();
        assert_ne!(grown.fingerprint(), fp);
        let mut edited = GraphDatabase::new();
        edited
            .add("a", |b| b.vertices(&["x", "y"], "C").edge("x", "y", "="))
            .unwrap();
        assert_ne!(edited.fingerprint(), fp);
    }

    #[test]
    fn remove_compacts_ids_and_replace_resets_stats() {
        let mut db = GraphDatabase::new();
        db.add("a", |b| b.vertex("x", "A")).unwrap();
        db.add("b", |b| b.vertices(&["p", "q"], "B").edge("p", "q", "-"))
            .unwrap();
        db.add("c", |b| b.vertex("y", "C")).unwrap();
        let snapshot = db.clone();

        let gone = db.remove(GraphId(1));
        assert_eq!(gone.name(), "b");
        assert_eq!(db.len(), 2);
        assert_eq!(db.get(GraphId(1)).name(), "c", "ids compact");
        assert_eq!(db.stats(GraphId(1)).order, 1);
        // The clone taken before the removal is untouched.
        assert_eq!(snapshot.len(), 3);
        assert_eq!(snapshot.get(GraphId(1)).name(), "b");

        let replacement = db
            .build_query("a2", |b| b.vertices(&["u", "v"], "A").edge("u", "v", "-"))
            .unwrap();
        let old = db.replace(GraphId(0), replacement);
        assert_eq!(old.name(), "a");
        assert_eq!(db.stats(GraphId(0)).order, 2, "stats cell was reset");
        assert_eq!(snapshot.stats(GraphId(0)).order, 1, "clone keeps its own");
    }

    #[test]
    fn epoch_is_folded_into_the_fingerprint() {
        let mut db = GraphDatabase::new();
        db.add("a", |b| b.vertices(&["x", "y"], "C").edge("x", "y", "-"))
            .unwrap();
        assert_eq!(db.epoch(), 0, "fresh databases start at epoch 0");
        let fp0 = db.fingerprint();

        // Same content at a later epoch fingerprints differently…
        let mut bumped = db.clone();
        bumped.set_epoch(7);
        assert_eq!(bumped.epoch(), 7);
        assert_ne!(bumped.fingerprint(), fp0);
        // …deterministically…
        assert_eq!(bumped.fingerprint(), bumped.fingerprint());
        // …and restoring the epoch restores the fingerprint.
        bumped.set_epoch(0);
        assert_eq!(bumped.fingerprint(), fp0);
    }

    #[test]
    fn stats_cache_matches_fresh_computation_and_tracks_pushes() {
        let mut db = GraphDatabase::new();
        let a = db
            .add("a", |b| {
                b.vertices(&["x", "y", "z"], "C")
                    .cycle(&["x", "y", "z"], "-")
            })
            .unwrap();
        let cached = db.stats(a).clone();
        assert_eq!(cached, GraphStats::compute(db.get(a)));
        assert!(cached.connected);
        assert_eq!(cached.size, 3);

        // Pushing more graphs leaves earlier cells intact and adds new ones.
        let b = db.add("b", |b| b.vertex("q", "N")).unwrap();
        assert_eq!(db.stats(a), &cached);
        assert_eq!(db.stats(b).order, 1);
        assert!(!db.stats(b).connected || db.get(b).order() <= 1);

        // Clones share computed cells (same values either way).
        let clone = db.clone();
        assert_eq!(clone.stats(a), &cached);
        db.precompute_stats();
        assert_eq!(db.stats(b), clone.stats(b));
    }

    #[test]
    fn query_built_on_same_vocab() {
        let mut db = GraphDatabase::new();
        db.add("g", |b| b.vertex("x", "C")).unwrap();
        let q = db.build_query("q", |b| b.vertex("y", "C")).unwrap();
        assert_eq!(db.len(), 1, "query must not be stored");
        let lg = db.get(GraphId(0)).vertex_label(gss_graph::VertexId::new(0));
        let lq = q.vertex_label(gss_graph::VertexId::new(0));
        assert_eq!(lg, lq);
    }

    fn sample_db() -> GraphDatabase {
        let mut db = GraphDatabase::new();
        db.add("triangle", |b| {
            b.vertices(&["a", "b", "c"], "C")
                .cycle(&["a", "b", "c"], "-")
        })
        .unwrap();
        db.add("path", |b| {
            b.vertex("p", "N")
                .vertex("q", "C")
                .vertex("r", "O")
                .path(&["p", "q", "r"], "=")
        })
        .unwrap();
        db.add("lone", |b| b.vertex("x", "S")).unwrap();
        db.set_epoch(11);
        db
    }

    #[test]
    fn compact_preserves_fingerprint_content_and_stats() {
        let oracle = sample_db();
        let mut db = sample_db();
        assert!(!db.is_compact());
        db.compact();
        assert!(db.is_compact());

        // Byte-identical contract: fingerprint, text form, per-graph stats
        // and structure all match the pointer-rich oracle.
        assert_eq!(db.fingerprint(), oracle.fingerprint());
        assert_eq!(db.to_text(), oracle.to_text());
        for (id, g) in oracle.iter() {
            assert_eq!(db.name_of(id), g.name());
            assert_eq!(db.stats(id), oracle.stats(id));
            let m = db.get(id);
            assert_eq!(m.order(), g.order());
            assert_eq!(m.size(), g.size());
            for v in g.vertices() {
                let pairs_a: Vec<_> = g.neighbors(v).collect();
                let pairs_b: Vec<_> = m.neighbors(v).collect();
                assert_eq!(pairs_a, pairs_b, "adjacency order must survive");
            }
        }
        assert_eq!(
            db.isomorphism_classes(),
            oracle.isomorphism_classes(),
            "cached WL fingerprints must group identically"
        );
    }

    #[test]
    fn compact_mutations_copy_on_write() {
        let mut db = sample_db();
        db.compact();
        let clone = db.clone();

        // Replacing one graph de-compacts only the touched slot; the other
        // slots still read from the shared arena and the clone is untouched.
        let replacement = db
            .build_query("path2", |b| {
                b.vertices(&["u", "v"], "C").edge("u", "v", "-")
            })
            .unwrap();
        let old = db.replace(GraphId(1), replacement);
        assert_eq!(old.name(), "path");
        assert_eq!(db.get(GraphId(1)).name(), "path2");
        assert_eq!(db.name_of(GraphId(0)), "triangle");
        assert_eq!(clone.get(GraphId(1)).name(), "path");
        assert_eq!(clone.len(), 3);

        // Pushing appends an owned slot alongside the arena-backed ones.
        let extra = db.build_query("extra", |b| b.vertex("z", "C")).unwrap();
        db.push(extra);
        assert_eq!(db.len(), 4);
        assert_eq!(db.name_of(GraphId(3)), "extra");
    }

    #[test]
    fn save_load_round_trip_is_byte_stable() {
        let db = sample_db();
        let bytes = db.save_bytes();
        assert!(GraphDatabase::is_binary(&bytes));
        assert!(!GraphDatabase::is_binary(b"t graph\nv 0 C\n"));

        let loaded = GraphDatabase::load_bytes(&bytes).unwrap();
        assert_eq!(loaded.len(), db.len());
        assert_eq!(loaded.epoch(), db.epoch());
        assert!(loaded.is_compact(), "load adopts the arena directly");
        assert_eq!(loaded.fingerprint(), db.fingerprint());
        assert_eq!(loaded.to_text(), db.to_text());
        for (id, _) in db.iter() {
            assert_eq!(loaded.stats(id), db.stats(id), "stats come from columns");
        }

        // Saving an already-compact database is deterministic.
        let mut compacted = sample_db();
        compacted.compact();
        assert_eq!(compacted.save_bytes(), bytes);
        let again = GraphDatabase::load_bytes(&compacted.save_bytes()).unwrap();
        assert_eq!(again.save_bytes(), bytes);
    }

    #[test]
    fn load_rejects_any_single_byte_flip() {
        let bytes = sample_db().save_bytes();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x01;
            assert!(
                GraphDatabase::load_bytes(&corrupt).is_err(),
                "flip at byte {i} must be rejected"
            );
        }
        assert!(GraphDatabase::load_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(GraphDatabase::load_bytes(&[]).is_err());
    }

    #[test]
    fn save_load_file_round_trip() {
        let db = sample_db();
        let dir = std::env::temp_dir().join(format!("gss-dbio-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("smoke.gdb");
        db.save(&path).unwrap();
        let loaded = GraphDatabase::load(&path).unwrap();
        assert_eq!(loaded.fingerprint(), db.fingerprint());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn memory_stats_report_compaction_win() {
        let mut db = GraphDatabase::new();
        for i in 0..32 {
            db.add(&format!("g{i}"), |b| {
                b.vertices(&["a", "b", "c", "d"], "C")
                    .cycle(&["a", "b", "c", "d"], "-")
                    .edge("a", "c", "=")
            })
            .unwrap();
        }
        let before = db.memory_stats();
        assert_eq!(before.graphs, 32);
        assert_eq!(before.arena_graphs, 0);
        assert!(before.pointer_rich_bytes > 0);

        db.compact();
        let after = db.memory_stats();
        assert_eq!(after.arena_graphs, 32);
        assert_eq!(after.materialized, 0, "compact() drops materialized copies");
        assert!(after.pool_entries > 0);
        assert!(
            (after.arena_bytes as f64) <= 0.6 * after.pointer_rich_bytes as f64,
            "arena {} vs pointer-rich {} misses the 60% gate",
            after.arena_bytes,
            after.pointer_rich_bytes
        );

        // Touching a graph materializes exactly that slot.
        let _ = db.get(GraphId(3));
        assert_eq!(db.memory_stats().materialized, 1);
    }

    #[test]
    fn empty_database_round_trips() {
        let db = GraphDatabase::new();
        let bytes = db.save_bytes();
        let loaded = GraphDatabase::load_bytes(&bytes).unwrap();
        assert!(loaded.is_empty());
        assert_eq!(loaded.fingerprint(), db.fingerprint());
        assert_eq!(loaded.memory_stats().graphs, 0);
    }
}
