//! Single-measure top-k retrieval — the baseline the paper contrasts with.
//!
//! Section VI: "If we are interested in the best k (= 3) answers, g3 is then
//! returned … by the edit-distance-based approach … but with the
//! skyline-based approach g3 is not returned since g5 does better than it."
//! This module implements that baseline so the contrast (and the recall
//! ablation A1) can be reproduced.

use gss_graph::Graph;

use crate::database::{GraphDatabase, GraphId};
use crate::measures::{compute_primitives, MeasureKind, SolverConfig};
use crate::parallel::parallel_map_indexed;

/// A scored answer.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct ScoredGraph {
    /// The database graph.
    pub id: GraphId,
    /// Its distance to the query under the chosen measure.
    pub distance: f64,
}

/// Returns the `k` database graphs closest to `query` under a **single**
/// measure, ascending by distance (ties by id — deterministic).
pub fn top_k_by_measure(
    db: &GraphDatabase,
    query: &Graph,
    measure: MeasureKind,
    k: usize,
    solvers: &SolverConfig,
    threads: usize,
) -> Vec<ScoredGraph> {
    let distances = parallel_map_indexed(db.len(), threads, |i| {
        let p = compute_primitives(db.get(GraphId(i)), query, solvers);
        measure.from_primitives(&p)
    });
    let mut scored: Vec<ScoredGraph> = distances
        .into_iter()
        .enumerate()
        .map(|(i, distance)| ScoredGraph {
            id: GraphId(i),
            distance,
        })
        .collect();
    scored.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.id.cmp(&b.id)));
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_datasets::paper::figure3_database;

    #[test]
    fn paper_contrast_g3_in_ed_top3_but_dominated() {
        let data = figure3_database();
        let db = GraphDatabase::from_parts(data.vocab, data.graphs);
        let top3 = top_k_by_measure(
            &db,
            &data.query,
            MeasureKind::EditDistance,
            3,
            &SolverConfig::default(),
            1,
        );
        let ids: Vec<usize> = top3.iter().map(|s| s.id.index()).collect();
        // DistEd: g4=2, g3=3, g5=3 → top-3 = {g4, g3, g5}.
        assert!(ids.contains(&3), "g4 must be in ED top-3");
        assert!(
            ids.contains(&2),
            "g3 must be in ED top-3 (the paper's point)"
        );
        assert!(ids.contains(&4), "g5 must be in ED top-3");
        // …and yet g3 is NOT in the skyline (dominated by g5).
        let r = crate::query::graph_similarity_skyline(
            &db,
            &data.query,
            &crate::query::QueryOptions::default(),
        );
        assert!(!r.contains(GraphId(2)));
    }

    #[test]
    fn ordering_and_truncation() {
        let data = figure3_database();
        let db = GraphDatabase::from_parts(data.vocab, data.graphs);
        let all = top_k_by_measure(
            &db,
            &data.query,
            MeasureKind::EditDistance,
            usize::MAX,
            &SolverConfig::default(),
            2,
        );
        assert_eq!(all.len(), db.len());
        for w in all.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
        let none = top_k_by_measure(
            &db,
            &data.query,
            MeasureKind::EditDistance,
            0,
            &SolverConfig::default(),
            1,
        );
        assert!(none.is_empty());
    }

    #[test]
    fn different_measures_rank_differently() {
        let data = figure3_database();
        let db = GraphDatabase::from_parts(data.vocab, data.graphs);
        let by_ed = top_k_by_measure(
            &db,
            &data.query,
            MeasureKind::EditDistance,
            1,
            &SolverConfig::default(),
            1,
        );
        let by_mcs = top_k_by_measure(
            &db,
            &data.query,
            MeasureKind::Mcs,
            1,
            &SolverConfig::default(),
            1,
        );
        let by_gu = top_k_by_measure(
            &db,
            &data.query,
            MeasureKind::Gu,
            1,
            &SolverConfig::default(),
            1,
        );
        // Section VI: g4 best by DistEd, g1 best by DistMcs, g7 best by DistGu.
        assert_eq!(by_ed[0].id, GraphId(3));
        assert_eq!(by_mcs[0].id, GraphId(0));
        assert_eq!(by_gu[0].id, GraphId(6));
    }
}
