//! Cache-key fingerprinting for queries and options.
//!
//! A long-lived query service (the `gss-server` crate) answers repeated
//! queries from a result cache. A cached answer may only be reused when
//! *everything* that could change the response bytes matches:
//!
//! 1. the **database** — [`crate::GraphDatabase::fingerprint`];
//! 2. the **query graph** — [`query_fingerprint`], a structural hash over
//!    label *strings* (not interned ids, which are vocabulary-relative);
//! 3. the **options** — [`options_fingerprint`], covering the measures,
//!    the solver configuration, the skyline algorithm, the
//!    prefilter/index pipeline, and the attached index's identity.
//!
//! [`QueryKey`] bundles the three. Notably **excluded** is
//! [`QueryOptions::threads`]: thread count never changes the skyline or
//! witnesses, and a server normalizes evaluation to per-query
//! single-threaded scans (via [`crate::graph_similarity_skyline_batch`]),
//! so per-candidate counters are thread-invariant too.
//!
//! The query fingerprint is **encoding-sensitive, not
//! isomorphism-invariant**: two textually identical graphs (same vertex
//! order, edge order and labels) collide; an isomorphic re-encoding does
//! not. That is the right trade-off for a cache key — false negatives
//! only cost a re-computation, while canonical hashing would cost an
//! isomorphism canonization per request. The graph's *name* is excluded,
//! matching [`crate::GraphDatabase::fingerprint`] semantics.

use gss_graph::{Graph, Vocabulary};

use crate::database::codec::Fnv64;
use crate::database::GraphDatabase;
use crate::measures::{GedMode, McsMode};
use crate::query::QueryOptions;

/// The composite cache key of one query evaluation.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryKey {
    /// [`crate::GraphDatabase::fingerprint`] of the database served.
    pub database: u64,
    /// [`query_fingerprint`] of the query graph.
    pub query: u64,
    /// [`options_fingerprint`] of the evaluation options.
    pub options: u64,
}

impl QueryKey {
    /// Builds the key for evaluating `query` against `db` under `options`.
    ///
    /// `db.fingerprint()` is linear in the database size — long-lived
    /// services should compute it once and use [`QueryKey::with_database`].
    pub fn new(db: &GraphDatabase, query: &Graph, options: &QueryOptions) -> QueryKey {
        QueryKey::with_database(db.fingerprint(), db.vocab(), query, options)
    }

    /// Builds the key from a pre-computed database fingerprint.
    pub fn with_database(
        database: u64,
        vocab: &Vocabulary,
        query: &Graph,
        options: &QueryOptions,
    ) -> QueryKey {
        QueryKey {
            database,
            query: query_fingerprint(query, vocab),
            options: options_fingerprint(options),
        }
    }
}

fn hash_str(h: &mut Fnv64, s: &str) {
    h.write_u64(s.len() as u64);
    h.write(s.as_bytes());
}

/// A structural fingerprint of one graph: vertex count, edge count, vertex
/// labels in vertex order and edges (endpoints + label) in edge order,
/// with labels hashed as their vocabulary strings. The graph's name is
/// excluded. Graphs built against different [`Vocabulary`] instances hash
/// equal iff their label strings and structure match.
pub fn query_fingerprint(query: &Graph, vocab: &Vocabulary) -> u64 {
    let mut h = Fnv64::new();
    let label = |h: &mut Fnv64, l: gss_graph::Label| {
        hash_str(h, vocab.name(l).unwrap_or(""));
    };
    h.write_u64(query.order() as u64);
    h.write_u64(query.size() as u64);
    for v in query.vertices() {
        label(&mut h, query.vertex_label(v));
    }
    for e in query.edges() {
        let edge = query.edge(e);
        h.write_u64(edge.u.index() as u64);
        h.write_u64(edge.v.index() as u64);
        label(&mut h, edge.label);
    }
    h.finish()
}

/// A fingerprint of everything in [`QueryOptions`] that can change the
/// response: measures (order-sensitive), skyline algorithm, solver modes
/// (with their numeric parameters), the prefilter flag, the requested
/// [`crate::Plan`], and the attached index's identity
/// ([`crate::QueryIndex::describe`]). `threads` is deliberately excluded —
/// see the module docs.
pub fn options_fingerprint(options: &QueryOptions) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(options.measures.len() as u64);
    for m in &options.measures {
        hash_str(&mut h, m.name());
    }
    hash_str(
        &mut h,
        match options.skyline_algorithm {
            gss_skyline::Algorithm::Naive => "naive",
            gss_skyline::Algorithm::Bnl => "bnl",
            gss_skyline::Algorithm::Sfs => "sfs",
            gss_skyline::Algorithm::DivideConquer2D => "dc2d",
        },
    );
    match options.solvers.ged {
        GedMode::Exact => hash_str(&mut h, "ged:exact"),
        GedMode::ExactBudget(n) => {
            hash_str(&mut h, "ged:budget");
            h.write_u64(n);
        }
        GedMode::Bipartite => hash_str(&mut h, "ged:bipartite"),
        GedMode::Beam(w) => {
            hash_str(&mut h, "ged:beam");
            h.write_u64(w as u64);
        }
    }
    match options.solvers.mcs {
        McsMode::Exact => hash_str(&mut h, "mcs:exact"),
        McsMode::Greedy => hash_str(&mut h, "mcs:greedy"),
    }
    h.write_u64(u64::from(options.prefilter));
    // The requested plan is part of the key: plans never change answers,
    // but they do change the response document (pruning stats, per-graph
    // `exact` flags), and `Auto` resolves deterministically from the
    // database + options, both already covered by the composite key.
    hash_str(&mut h, "plan:");
    hash_str(&mut h, options.plan.name());
    match &options.index {
        None => hash_str(&mut h, "index:none"),
        Some(index) => {
            hash_str(&mut h, "index:");
            hash_str(&mut h, &index.describe());
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measures::{MeasureKind, SolverConfig};
    use gss_graph::GraphBuilder;

    fn build(vocab: &mut Vocabulary, name: &str, edge_label: &str) -> Graph {
        GraphBuilder::new(name, vocab)
            .vertices(&["x", "y", "z"], "C")
            .path(&["x", "y", "z"], edge_label)
            .build()
            .unwrap()
    }

    #[test]
    fn query_fingerprint_is_structural_and_vocab_independent() {
        let mut v1 = Vocabulary::new();
        // Pre-intern extra labels so the same strings get different ids in
        // the two vocabularies.
        v1.intern("Zr");
        v1.intern("He");
        let mut v2 = Vocabulary::new();
        let a = build(&mut v1, "a", "-");
        let b = build(&mut v2, "renamed", "-");
        assert_eq!(
            query_fingerprint(&a, &v1),
            query_fingerprint(&b, &v2),
            "same structure + strings, different interning and name"
        );
        let c = build(&mut v2, "c", "=");
        assert_ne!(
            query_fingerprint(&b, &v2),
            query_fingerprint(&c, &v2),
            "an edge relabel must change the fingerprint"
        );
    }

    #[test]
    fn options_fingerprint_tracks_result_affecting_fields_only() {
        let base = QueryOptions::default();
        let fp = options_fingerprint(&base);
        assert_eq!(fp, options_fingerprint(&base), "deterministic");

        let threads = QueryOptions {
            threads: 8,
            ..base.clone()
        };
        assert_eq!(
            fp,
            options_fingerprint(&threads),
            "thread count must not fragment the cache"
        );

        let shards = QueryOptions {
            shards: 8,
            ..base.clone()
        };
        assert_eq!(
            fp,
            options_fingerprint(&shards),
            "shard count must not fragment the cache (the sharded document is shard-invariant)"
        );

        let sharded_plan = QueryOptions {
            plan: crate::exec::Plan::Sharded,
            ..base.clone()
        };
        assert_ne!(
            fp,
            options_fingerprint(&sharded_plan),
            "the plan itself stays in the key"
        );

        let prefilter = QueryOptions {
            prefilter: true,
            ..base.clone()
        };
        assert_ne!(fp, options_fingerprint(&prefilter));

        let approx = QueryOptions {
            solvers: SolverConfig {
                ged: GedMode::Bipartite,
                mcs: McsMode::Greedy,
            },
            ..base.clone()
        };
        assert_ne!(fp, options_fingerprint(&approx));

        let beam16 = QueryOptions {
            solvers: SolverConfig {
                ged: GedMode::Beam(16),
                ..SolverConfig::default()
            },
            ..base.clone()
        };
        let beam32 = QueryOptions {
            solvers: SolverConfig {
                ged: GedMode::Beam(32),
                ..SolverConfig::default()
            },
            ..base.clone()
        };
        assert_ne!(
            options_fingerprint(&beam16),
            options_fingerprint(&beam32),
            "solver parameters are part of the key"
        );

        let measures = QueryOptions {
            measures: vec![MeasureKind::EditDistance],
            ..base.clone()
        };
        assert_ne!(fp, options_fingerprint(&measures));

        let algo = QueryOptions {
            skyline_algorithm: gss_skyline::Algorithm::Sfs,
            ..base.clone()
        };
        assert_ne!(fp, options_fingerprint(&algo));

        let plan = QueryOptions {
            plan: crate::exec::Plan::Naive,
            ..base
        };
        assert_ne!(
            fp,
            options_fingerprint(&plan),
            "the requested plan changes the response document"
        );
    }

    #[test]
    fn query_key_combines_all_three_dimensions() {
        let mut db = GraphDatabase::new();
        db.add("g", |b| b.vertices(&["a", "b"], "C").edge("a", "b", "-"))
            .unwrap();
        let q = db.build_query("q", |b| b.vertex("x", "C")).unwrap();
        let opts = QueryOptions::default();
        let k1 = QueryKey::new(&db, &q, &opts);
        assert_eq!(k1, QueryKey::new(&db, &q, &opts));

        let q2 = db.build_query("q2", |b| b.vertex("x", "N")).unwrap();
        assert_ne!(k1, QueryKey::new(&db, &q2, &opts));

        let mut db2 = GraphDatabase::new();
        db2.add("g", |b| b.vertices(&["a", "b"], "C").edge("a", "b", "="))
            .unwrap();
        let q_db2 = db2.build_query("q", |b| b.vertex("x", "C")).unwrap();
        assert_ne!(k1, QueryKey::new(&db2, &q_db2, &opts));
    }
}
