//! Diversity refinement of a graph similarity skyline (Section VII).
//!
//! Builds the pairwise distance matrices over the skyline members —
//! dimensions `(DistN-Ed, DistMcs, DistGu)` per the paper — and delegates to
//! `gss-diversity` for the exhaustive rank-sum selection (or the greedy
//! heuristic for large skylines).

use gss_diversity::{refine_exact, refine_greedy, DiversityError, DiversityResult};

use crate::database::{GraphDatabase, GraphId};
use crate::measures::{compute_primitives, MeasureKind, SolverConfig};
use crate::parallel::parallel_map_indexed;

/// Options for [`refine_skyline`].
#[derive(Clone, Debug)]
pub struct RefineOptions {
    /// Pairwise distance dimensions. Default: the paper's Section VII
    /// triple `(DistN-Ed, DistMcs, DistGu)`.
    pub measures: Vec<MeasureKind>,
    /// Solver configuration for pairwise primitives.
    pub solvers: SolverConfig,
    /// Worker threads for the pairwise matrix.
    pub threads: usize,
    /// Cap on `C(n, k)` for the exact enumeration.
    pub max_candidates: u128,
}

impl Default for RefineOptions {
    fn default() -> Self {
        RefineOptions {
            measures: MeasureKind::paper_diversity_measures(),
            solvers: SolverConfig::default(),
            threads: 1,
            max_candidates: 1 << 24,
        }
    }
}

/// A refined (maximally diverse) subset of skyline members.
#[derive(Clone, Debug)]
pub struct RefinedSkyline {
    /// The skyline member ids, in the order the matrices index them.
    pub members: Vec<GraphId>,
    /// The winning subset, as database graph ids.
    pub selected: Vec<GraphId>,
    /// The full candidate evaluation (diversity vectors, ranks, rank sums),
    /// indices referring to positions in `members`.
    pub evaluation: DiversityResult,
    /// The pairwise matrices used, one per measure (symmetric, zero
    /// diagonal), indices referring to positions in `members`.
    pub matrices: Vec<Vec<Vec<f64>>>,
}

/// Computes the pairwise distance matrices over `members`.
pub fn pairwise_matrices(
    db: &GraphDatabase,
    members: &[GraphId],
    measures: &[MeasureKind],
    solvers: &SolverConfig,
    threads: usize,
) -> Vec<Vec<Vec<f64>>> {
    let n = members.len();
    // Upper-triangle pair list.
    let mut pairs = Vec::new();
    for a in 0..n {
        for b in a + 1..n {
            pairs.push((a, b));
        }
    }
    let prims = parallel_map_indexed(pairs.len(), threads, |k| {
        let (a, b) = pairs[k];
        compute_primitives(db.get(members[a]), db.get(members[b]), solvers)
    });
    let mut matrices = vec![vec![vec![0.0f64; n]; n]; measures.len()];
    for (k, &(a, b)) in pairs.iter().enumerate() {
        for (mi, m) in measures.iter().enumerate() {
            let v = m.from_primitives(&prims[k]);
            matrices[mi][a][b] = v;
            matrices[mi][b][a] = v;
        }
    }
    matrices
}

/// Exact (paper Section VII) diversity refinement: pick the `k`-subset of
/// `members` minimizing the rank sum of per-dimension diversities.
pub fn refine_skyline(
    db: &GraphDatabase,
    members: &[GraphId],
    k: usize,
    options: &RefineOptions,
) -> Result<RefinedSkyline, DiversityError> {
    let matrices = pairwise_matrices(
        db,
        members,
        &options.measures,
        &options.solvers,
        options.threads,
    );
    let evaluation = refine_exact(&matrices, k, options.max_candidates)?;
    let selected = evaluation
        .best_members()
        .iter()
        .map(|&i| members[i])
        .collect();
    Ok(RefinedSkyline {
        members: members.to_vec(),
        selected,
        evaluation,
        matrices,
    })
}

/// Greedy max-min refinement for skylines too large for exhaustive
/// enumeration. Returns database ids.
pub fn refine_skyline_greedy(
    db: &GraphDatabase,
    members: &[GraphId],
    k: usize,
    options: &RefineOptions,
) -> Vec<GraphId> {
    let matrices = pairwise_matrices(
        db,
        members,
        &options.measures,
        &options.solvers,
        options.threads,
    );
    refine_greedy(&matrices, k)
        .into_iter()
        .map(|i| members[i])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::GraphDatabase;
    use gss_datasets::paper::{expected, figure3_database};

    fn paper_members() -> (GraphDatabase, Vec<GraphId>) {
        let data = figure3_database();
        let db = GraphDatabase::from_parts(data.vocab, data.graphs);
        let members = expected::SKYLINE.iter().map(|&i| GraphId(i)).collect();
        (db, members)
    }

    #[test]
    fn paper_refinement_selects_g1_g4() {
        let (db, members) = paper_members();
        let r = refine_skyline(&db, &members, 2, &RefineOptions::default()).unwrap();
        let got: Vec<usize> = r.selected.iter().map(|g| g.index()).collect();
        assert_eq!(got, expected::REFINED.to_vec(), "𝕊 = {{g1, g4}}");
        // With our two documented GED deviations, S1 and S5 tie on val;
        // the evaluation must expose that tie.
        assert!(!r.evaluation.tied.is_empty());
    }

    #[test]
    fn table4_mcs_derived_cells_match() {
        let (db, members) = paper_members();
        let r = refine_skyline(&db, &members, 2, &RefineOptions::default()).unwrap();
        // Candidate order is lexicographic: S1..S6 as in the paper.
        for (idx, cand) in r.evaluation.candidates.iter().enumerate() {
            let (v2, v3) = (cand.diversity[1], cand.diversity[2]);
            let p2 = expected::TABLE4[idx][1];
            let p3 = expected::TABLE4[idx][2];
            // Tolerance 0.006: the paper mixes rounding and truncation
            // when printing two decimals (e.g. 0.615… appears as 0.61).
            assert!(
                (v2 - p2).abs() < 0.006,
                "S{} v2: measured {v2} vs paper {p2}",
                idx + 1
            );
            assert!(
                (v3 - p3).abs() < 0.006,
                "S{} v3: measured {v3} vs paper {p3}",
                idx + 1
            );
        }
    }

    #[test]
    fn matrices_are_symmetric_zero_diagonal() {
        let (db, members) = paper_members();
        let m = pairwise_matrices(
            &db,
            &members,
            &MeasureKind::paper_diversity_measures(),
            &SolverConfig::default(),
            2,
        );
        assert_eq!(m.len(), 3);
        for mat in &m {
            for (i, row) in mat.iter().enumerate() {
                assert_eq!(row[i], 0.0);
                for (j, v) in row.iter().enumerate() {
                    assert_eq!(*v, mat[j][i]);
                }
            }
        }
    }

    #[test]
    fn greedy_refinement_returns_k_members() {
        let (db, members) = paper_members();
        let sel = refine_skyline_greedy(&db, &members, 2, &RefineOptions::default());
        assert_eq!(sel.len(), 2);
        for id in &sel {
            assert!(members.contains(id));
        }
    }

    #[test]
    fn refine_propagates_errors() {
        let (db, members) = paper_members();
        assert!(refine_skyline(&db, &members, 1, &RefineOptions::default()).is_err());
        assert!(refine_skyline(&db, &members, 99, &RefineOptions::default()).is_err());
    }
}
