//! # gss-server — concurrent similarity-skyline query serving
//!
//! The first stateful layer of the workspace: a long-lived, std-only TCP
//! service (no async runtime — `std::net` plus worker threads) that loads
//! a [`gss_core::GraphDatabase`] (and optionally a `gss-index` pivot
//! index) **once** and serves many skyline queries, amortizing the
//! build-once/serve-many lifecycle the index enables.
//!
//! ```no_run
//! use std::sync::Arc;
//! use gss_core::{GraphDatabase, QueryOptions};
//! use gss_server::{serve, ServerConfig};
//!
//! let db = Arc::new(GraphDatabase::from_text("t g\nv 0 C\n").unwrap());
//! let handle = serve(db, QueryOptions::default(), ServerConfig::default()).unwrap();
//! println!("listening on {}", handle.addr());
//! let final_stats = handle.join(); // returns after a `shutdown` request drains
//! # let _ = final_stats;
//! ```
//!
//! ## Wire format
//!
//! The protocol is **newline-delimited JSON**: one request object per
//! line, one response object per line, over a plain TCP connection (test
//! it with `nc`). Requests are processed in order per connection;
//! concurrency comes from multiple connections. Every request may carry
//! an `"id"` (string or number), echoed verbatim in the response.
//!
//! ### Verbs
//!
//! | request | response |
//! |---------|----------|
//! | `{"op":"ping"}` | `{"ok":true}` |
//! | `{"op":"stats"}` | `{"ok":true,"stats":{…}}` |
//! | `{"op":"shutdown"}` | `{"ok":true,"draining":true}` |
//! | `{"op":"query","graph":"t q\nv 0 C\n…"}` | `{"ok":true,"cached":false,"result":{…}}` |
//!
//! Anything else (including malformed JSON) gets
//! `{"ok":false,"error":"…"}`.
//!
//! ### The `query` verb
//!
//! * `"graph"` (required) — the query graph in the `t/v/e` text format
//!   (first graph of the document is used). Labels unknown to the
//!   database are fine; they simply never match.
//! * `"options"` (optional object) — per-request overrides of the
//!   server's base options: `"prefilter"` (bool), `"approx"` (bool:
//!   bipartite GED + greedy MCS), `"algo"` (`"naive"|"bnl"|"sfs"`),
//!   `"plan"` (`"auto"|"naive"|"prefilter"|"indexed"`; `"indexed"` needs
//!   a server-side index). Unknown keys are rejected.
//! * `"deadline_ms"` (optional) — the evaluation deadline. If the request
//!   is still waiting in the queue when it expires it is dropped (counted
//!   as `deadline_expired`); if it expires **mid-evaluation**, the scan is
//!   aborted at its next [`gss_core::CancelToken`] wave checkpoint
//!   (counted as `cancelled`). Either way the response is
//!   `{"ok":false,"error":"deadline exceeded"}`. Cancellation is
//!   cooperative: a single in-flight solver call is never interrupted, so
//!   abort latency is bounded by the most expensive candidate pair.
//!
//! The `"result"` payload is exactly the [`gss_core::to_json`] explain
//! document (measures, per-graph GCS vectors, dominators, skyline,
//! pruning stats when the pipeline ran), compacted onto one line by the
//! [`gss_core::jsonio`] writer.
//!
//! ## Cache semantics
//!
//! Results are cached in a sharded LRU keyed by
//! [`gss_core::QueryKey`]: database fingerprint × structural query
//! fingerprint × normalized options fingerprint. A hit returns the
//! **byte-identical** result document of a fresh evaluation (the cache
//! stores the serialized document itself) with `"cached":true` in the
//! envelope. Thread counts never enter the key: evaluation is
//! normalized to per-query single-threaded scans via
//! [`gss_core::graph_similarity_skyline_batch`], whose results are
//! identical to sequential evaluation by construction.
//!
//! ## Admission control & micro-batching
//!
//! A bounded queue sits between connections and the dispatcher. When it
//! is full (or the server is draining), queries are rejected immediately
//! with `{"ok":false,"error":"queue full","retry_after_ms":N}` —
//! backpressure instead of unbounded buffering. The dispatcher pops up
//! to `batch_max` queued queries at a time and runs them through one
//! wave-parallel [`gss_core::graph_similarity_skyline_batch`] call
//! (grouped by options fingerprint), so concurrent clients share scan
//! parallelism instead of fighting over it.
//!
//! ## Graceful drain
//!
//! The `shutdown` verb (or [`ServerHandle::shutdown`]) stops accepting
//! connections and admitting queries; everything already admitted is
//! still evaluated and answered before [`ServerHandle::join`] returns.
//! In-queue requests whose deadline lapses during the drain get the
//! deadline response — admitted work is never silently dropped. Cache
//! hits may still be served while draining (a hit admits no work);
//! queries that would need evaluation get the backpressure rejection.

#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod engine;
pub mod server;
pub mod stats;

pub use cache::ShardedCache;
pub use client::Client;
pub use engine::{Engine, QueryRequest, Request, RequestError};
pub use server::{serve, ServerConfig, ServerHandle};
pub use stats::{percentile_us, LatencySnapshot, ServerStats};
