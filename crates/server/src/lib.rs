//! # gss-server — concurrent similarity-skyline query serving
//!
//! The first stateful layer of the workspace: a long-lived, std-only TCP
//! service (no async runtime — `std::net` plus worker threads) that loads
//! a [`gss_core::GraphDatabase`] (and optionally a `gss-index` pivot
//! index) **once** and serves many skyline queries, amortizing the
//! build-once/serve-many lifecycle the index enables.
//!
//! ```no_run
//! use std::sync::Arc;
//! use gss_core::{GraphDatabase, QueryOptions};
//! use gss_server::{serve, ServerConfig};
//!
//! let db = Arc::new(GraphDatabase::from_text("t g\nv 0 C\n").unwrap());
//! let handle = serve(db, QueryOptions::default(), ServerConfig::default()).unwrap();
//! println!("listening on {}", handle.addr());
//! let final_stats = handle.join(); // returns after a `shutdown` request drains
//! # let _ = final_stats;
//! ```
//!
//! ## Wire format
//!
//! The wire protocol — newline-delimited JSON, the verb vocabulary, the
//! option/deadline fields, the exact response byte formats — is owned by
//! the [`gss_protocol`] crate; see its docs for the spec. This crate
//! consumes the typed [`gss_protocol::Request`] / [`Response`] envelopes:
//! requests are parsed once by the [`engine`], responses are serialized
//! **once, at the connection edge** (`Response::to_line`), identically on
//! every front end.
//!
//! ## Front ends
//!
//! Two interchangeable connection front ends feed one shared protocol
//! path (parse → cache probe → admission queue), so their responses are
//! byte-identical by construction:
//!
//! * **Reactor** (Linux, the default) — [`ServerConfig::reactor_threads`]
//!   event-loop threads multiplex *all* connections over nonblocking
//!   sockets and an epoll readiness layer: per-connection read/write
//!   buffers, newline framing, strict request-order response sequencing
//!   even when later requests (cache hits, pings) complete before earlier
//!   ones (evaluations). Thousands of idle connections cost two fds and
//!   a few hundred bytes each — no thread, no stack.
//! * **Thread-per-connection** (`reactor_threads: 0`, and every non-Linux
//!   platform) — the legacy blocking front end, kept as the portable
//!   fallback and as the byte-parity oracle for the reactor.
//!
//! ## Sharded evaluation
//!
//! [`ServerConfig::shards`] > 1 rewrites the server's base options to
//! [`gss_core::Plan::Sharded`]: the candidate space is statically split
//! into per-shard filter-and-verify pipelines whose frontiers merge into
//! one skyline. A *single* admitted query fans its shards out across the
//! evaluation threads (one huge query keeps the machine busy), while a
//! full micro-batch packs queries one-per-thread as before — same
//! answers, same bytes, either way (the shard count is deliberately
//! excluded from the cache key).
//!
//! ## Deadlines
//!
//! A request's `deadline_ms` is enforced in two places: if it expires
//! while the request waits in the queue the request is dropped (counted
//! as `deadline_expired`); if it expires **mid-evaluation** the scan is
//! aborted at its next [`gss_core::CancelToken`] wave checkpoint (counted
//! as `cancelled`). Either way the client gets the deadline response.
//! Cancellation is cooperative: a single in-flight solver call is never
//! interrupted, so abort latency is bounded by the most expensive
//! candidate pair.
//!
//! ## Cache semantics
//!
//! Results are cached in a sharded LRU keyed by
//! [`gss_core::QueryKey`]: database fingerprint × structural query
//! fingerprint × normalized options fingerprint. A hit returns the
//! **byte-identical** result document of a fresh evaluation (the cache
//! stores the serialized document itself) with `"cached":true` in the
//! envelope. Thread counts never enter the key: evaluation is
//! normalized to per-query single-threaded scans via
//! [`gss_core::graph_similarity_skyline_batch`], whose results are
//! identical to sequential evaluation by construction.
//!
//! ## Admission control & micro-batching
//!
//! A bounded queue sits between connections and the dispatcher. When it
//! is full (or the server is draining), queries are rejected immediately
//! with `{"ok":false,"error":"queue full","retry_after_ms":N}` —
//! backpressure instead of unbounded buffering. The dispatcher pops up
//! to `batch_max` queued queries at a time and runs them through one
//! wave-parallel [`gss_core::graph_similarity_skyline_batch`] call
//! (grouped by options fingerprint), so concurrent clients share scan
//! parallelism instead of fighting over it.
//!
//! ## Graceful drain
//!
//! The `shutdown` verb (or [`ServerHandle::shutdown`]) stops accepting
//! connections and admitting queries; everything already admitted is
//! still evaluated and answered before [`ServerHandle::join`] returns.
//! In-queue requests whose deadline lapses during the drain get the
//! deadline response — admitted work is never silently dropped. Cache
//! hits may still be served while draining (a hit admits no work);
//! queries that would need evaluation get the backpressure rejection.
//!
//! ## Live mutation
//!
//! The database behind a server is a [`gss_store::GraphStore`]: an
//! epoch-based MVCC snapshot store. The `insert` / `remove` / `update`
//! verbs apply atomic mutation batches that bump the epoch; queries pin
//! the head snapshot at parse time and evaluate against it no matter how
//! many mutations land meanwhile. Because the epoch is folded into the
//! database fingerprint (the cache key's `database` component), cached
//! results can never leak across epochs — mutation additionally evicts
//! the now-unreachable stale entries eagerly. Serve a store with a
//! maintained pivot index or a tuned staleness budget via
//! [`serve_store`]; plain [`serve`] wraps the database in an index-less
//! store so mutation works out of the box.

#![warn(missing_docs)]

pub mod cache;
pub mod client;
#[cfg(target_os = "linux")]
mod conn;
pub mod engine;
#[cfg(target_os = "linux")]
mod reactor;
pub mod server;
pub mod stats;

pub use cache::ShardedCache;
pub use client::{Client, ClientBuilder, RetryPolicy};
pub use engine::{Engine, QueryRequest, Request, RequestError};
pub use gss_protocol::Response;
pub use gss_store::{
    FaultAction, FaultPlan, FsyncPolicy, GraphStore, IndexMaintenance, MutationBatch,
    MutationError, MutationReceipt, RecoveryStats, Snapshot, StoreConfig, StoreStats, WalConfig,
    WalStats,
};
pub use server::{serve, serve_store, ServerConfig, ServerHandle};
pub use stats::{percentile_us, LatencySnapshot, ServerStats};
