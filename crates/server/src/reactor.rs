//! The event-driven front end: a minimal readiness loop over Linux
//! `epoll`, multiplexing thousands of connections per thread without an
//! async runtime (std only — the three `epoll` syscalls are declared
//! directly against libc, which std already links).
//!
//! Thread layout with `reactor_threads = R`:
//!
//! ```text
//! reactor 0 ──► owns the nonblocking listener, accepts, keeps every
//!               R-th connection, hands the rest to reactors 1..R via
//!               their injection queues (woken through a socketpair)
//! reactor i ──► epoll loop: reads lines, answers ping/stats/shutdown
//!               inline, admits queries to the shared AdmissionQueue
//! dispatcher ─► unchanged micro-batching over the queue; completions
//!               return to the owning reactor's completion queue
//! ```
//!
//! Each connection's requests are answered **in order** even though the
//! dispatcher completes them asynchronously: parsed requests take
//! sequence-numbered slots in a [`Conn`] and only the completed in-order
//! prefix is flushed (see [`crate::conn`]). The wire bytes are identical
//! to the thread-per-connection path because both go through the same
//! [`crate::server::process_line`] and serialize the same typed
//! [`gss_protocol::Response`] at the socket edge.
//!
//! Drain protocol: after `shutdown`, reactor 0 drops the listener; every
//! reactor keeps flushing until the dispatcher has exited (it owes no
//! more completions), its completion and injection queues are empty, and
//! every connection is idle — then it closes all sockets and exits. The
//! 50 ms `epoll_wait` timeout doubles as the drain poll.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::conn::Conn;
use crate::server::{process_line, Outcome, Responder, Shared};

// ---------------------------------------------------------------------------
// epoll FFI: the kernel interface is three syscalls and one struct. std
// links libc, so plain `extern "C"` declarations suffice — no new deps.
// ---------------------------------------------------------------------------

/// One readiness notification. On x86-64 the kernel lays this struct out
/// packed (no padding between the 32-bit mask and the 64-bit payload).
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn close(fd: i32) -> i32;
}

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLL_CLOEXEC: i32 = 0o2000000;

/// `epoll_wait` timeout; doubles as the drain-condition poll interval.
const WAIT_MS: i32 = 50;

/// `data` value marking the listener (reactor 0 only).
const LISTENER_TOKEN: u64 = u64::MAX;
/// `data` value marking the wake socketpair's read end.
const WAKE_TOKEN: u64 = u64::MAX - 1;

fn ep_ctl(epfd: i32, op: i32, fd: i32, events: u32, token: u64) -> std::io::Result<()> {
    let mut ev = EpollEvent {
        events,
        data: token,
    };
    // SAFETY: `epfd` came from `epoll_create1` and `ev` outlives the call;
    // the kernel copies the struct before returning.
    let rc = unsafe { epoll_ctl(epfd, op, fd, &mut ev) };
    if rc < 0 {
        Err(std::io::Error::last_os_error())
    } else {
        Ok(())
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Poison recovery mirrors the admission queue: a panicked thread must
    // not wedge the reactor, and the guarded state (plain Vec pushes)
    // stays structurally valid.
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// The dispatcher-facing half of one reactor: completion and injection
/// queues plus the wake handle that interrupts `epoll_wait`.
pub(crate) struct ReactorShared {
    /// `(connection token, request seq, serialized response line)`.
    completions: Mutex<Vec<(usize, u64, String)>>,
    /// Accepted connections assigned to this reactor by reactor 0.
    injected: Mutex<Vec<TcpStream>>,
    /// Write end of the wake socketpair (nonblocking; a full pipe means a
    /// wake byte is already pending, so `WouldBlock` is safely ignored).
    wake_tx: UnixStream,
}

impl ReactorShared {
    /// Interrupts the reactor's `epoll_wait`.
    pub(crate) fn wake(&self) {
        let _ = (&self.wake_tx).write(&[1u8]);
    }

    /// Queues a serialized response for connection `token` / request
    /// `seq` and wakes the reactor to flush it.
    pub(crate) fn complete(&self, token: usize, seq: u64, line: String) {
        lock(&self.completions).push((token, seq, line));
        self.wake();
    }

    fn inject(&self, stream: TcpStream) {
        lock(&self.injected).push(stream);
        self.wake();
    }
}

/// One connection slot in the slab. `stream` goes `None` when the socket
/// died while dispatcher responses were still outstanding: the slot stays
/// reserved (so late completions cannot alias a reused token) until the
/// last response arrives and is discarded.
struct Entry {
    stream: Option<TcpStream>,
    conn: Conn,
    /// Whether the epoll registration currently includes `EPOLLOUT`.
    interest_out: bool,
    dead: bool,
}

/// What [`spawn_reactors`] hands back: the dispatcher-facing handles and
/// the reactor threads' join handles.
type SpawnedReactors = (Vec<Arc<ReactorShared>>, Vec<std::thread::JoinHandle<()>>);

/// Spawns `threads` reactor loops sharing `listener` (owned by reactor 0)
/// and returns their dispatcher-facing handles plus join handles.
pub(crate) fn spawn_reactors(
    shared: &Arc<Shared>,
    listener: TcpListener,
    threads: usize,
) -> std::io::Result<SpawnedReactors> {
    let threads = threads.max(1);
    let mut shareds = Vec::with_capacity(threads);
    let mut wake_rxs = Vec::with_capacity(threads);
    for _ in 0..threads {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        shareds.push(Arc::new(ReactorShared {
            completions: Mutex::new(Vec::new()),
            injected: Mutex::new(Vec::new()),
            wake_tx: tx,
        }));
        wake_rxs.push(rx);
    }
    let mut handles = Vec::with_capacity(threads);
    let mut listener = Some(listener);
    for (index, wake_rx) in wake_rxs.into_iter().enumerate() {
        let own = match shareds.get(index) {
            Some(own) => Arc::clone(own),
            None => continue,
        };
        let mut reactor = Reactor::new(
            Arc::clone(shared),
            own,
            shareds.clone(),
            index,
            listener.take(),
            wake_rx,
        )?;
        handles.push(
            std::thread::Builder::new()
                .name(format!("gss-reactor-{index}"))
                .spawn(move || reactor.run())?,
        );
    }
    Ok((shareds, handles))
}

struct Reactor {
    epfd: i32,
    shared: Arc<Shared>,
    own: Arc<ReactorShared>,
    peers: Vec<Arc<ReactorShared>>,
    index: usize,
    listener: Option<TcpListener>,
    wake_rx: UnixStream,
    slab: Vec<Option<Entry>>,
    free: Vec<usize>,
    /// Round-robin cursor for distributing accepted connections.
    next_peer: usize,
}

impl Drop for Reactor {
    fn drop(&mut self) {
        // SAFETY: `epfd` was returned by `epoll_create1` and is closed
        // exactly once, here.
        unsafe { close(self.epfd) };
    }
}

impl Reactor {
    fn new(
        shared: Arc<Shared>,
        own: Arc<ReactorShared>,
        peers: Vec<Arc<ReactorShared>>,
        index: usize,
        listener: Option<TcpListener>,
        wake_rx: UnixStream,
    ) -> std::io::Result<Reactor> {
        // SAFETY: plain syscall; a negative return is checked below.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        let reactor = Reactor {
            epfd,
            shared,
            own,
            peers,
            index,
            listener,
            wake_rx,
            slab: Vec::new(),
            free: Vec::new(),
            next_peer: 0,
        };
        ep_ctl(
            reactor.epfd,
            EPOLL_CTL_ADD,
            reactor.wake_rx.as_raw_fd(),
            EPOLLIN,
            WAKE_TOKEN,
        )?;
        if let Some(l) = &reactor.listener {
            ep_ctl(
                reactor.epfd,
                EPOLL_CTL_ADD,
                l.as_raw_fd(),
                EPOLLIN,
                LISTENER_TOKEN,
            )?;
        }
        Ok(reactor)
    }

    fn run(&mut self) {
        let mut events = vec![EpollEvent { events: 0, data: 0 }; 128];
        let mut scratch = [0u8; 16 * 1024];
        loop {
            let n = {
                // SAFETY: `events` stays alive and sized for the call; the
                // kernel writes at most `maxevents` entries.
                let rc = unsafe {
                    epoll_wait(self.epfd, events.as_mut_ptr(), events.len() as i32, WAIT_MS)
                };
                if rc < 0 {
                    let err = std::io::Error::last_os_error();
                    if err.kind() == std::io::ErrorKind::Interrupted {
                        continue;
                    }
                    // An unrecoverable epoll error: fall through to drain
                    // bookkeeping so shutdown still terminates.
                    0
                } else {
                    rc as usize
                }
            };
            for ev in events.iter().take(n).copied() {
                let (mask, token) = (ev.events, ev.data);
                match token {
                    WAKE_TOKEN => self.drain_wake(),
                    LISTENER_TOKEN => self.accept_ready(),
                    t => self.conn_ready(t as usize, mask, &mut scratch),
                }
            }
            self.adopt_injected();
            self.apply_completions();
            if self.drained() {
                return; // slab and epfd close via Drop
            }
        }
    }

    /// Swallows pending wake bytes so `epoll_wait` can block again.
    fn drain_wake(&mut self) {
        let mut buf = [0u8; 256];
        loop {
            match (&self.wake_rx).read(&mut buf) {
                Ok(0) => return,
                Ok(_) => continue,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return, // WouldBlock: drained
            }
        }
    }

    /// Accepts everything ready, keeping every R-th connection and
    /// injecting the rest round-robin into peer reactors.
    fn accept_ready(&mut self) {
        loop {
            let listener = match &self.listener {
                Some(l) => l,
                None => return,
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    if self.shared.draining() {
                        continue; // accept-and-drop until the listener closes
                    }
                    let target = self.next_peer % self.peers.len().max(1);
                    self.next_peer = self.next_peer.wrapping_add(1);
                    if target == self.index {
                        self.register_conn(stream);
                    } else if let Some(peer) = self.peers.get(target) {
                        peer.inject(stream);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return, // WouldBlock or transient accept failure
            }
        }
    }

    /// Registers an accepted connection in the slab and with epoll.
    fn register_conn(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let token = self.free.pop().unwrap_or(self.slab.len());
        if ep_ctl(
            self.epfd,
            EPOLL_CTL_ADD,
            stream.as_raw_fd(),
            EPOLLIN | EPOLLRDHUP,
            token as u64,
        )
        .is_err()
        {
            self.free.push(token);
            return;
        }
        let entry = Entry {
            stream: Some(stream),
            conn: Conn::new(),
            interest_out: false,
            dead: false,
        };
        if token == self.slab.len() {
            self.slab.push(Some(entry));
        } else if let Some(slot) = self.slab.get_mut(token) {
            *slot = Some(entry);
        }
    }

    /// Handles readiness on one connection: read, frame, process each
    /// complete line, then flush whatever became writable.
    fn conn_ready(&mut self, token: usize, mask: u32, scratch: &mut [u8]) {
        let shared = Arc::clone(&self.shared);
        let own = Arc::clone(&self.own);
        // Once the dispatcher has exited during drain no new work can be
        // answered, so stop consuming input and just finish flushing.
        let accepting_input =
            !(shared.draining() && shared.dispatcher_done.load(Ordering::Relaxed));
        if let Some(entry) = self.slab.get_mut(token).and_then(|s| s.as_mut()) {
            if mask & (EPOLLERR | EPOLLHUP) != 0 {
                entry.dead = true;
            }
            if !entry.dead && mask & (EPOLLIN | EPOLLRDHUP) != 0 {
                let mut lines = Vec::new();
                if let Some(stream) = entry.stream.as_mut() {
                    loop {
                        match stream.read(scratch) {
                            Ok(0) => {
                                entry.dead = true;
                                break;
                            }
                            Ok(n) => {
                                if let Some(data) = scratch.get(..n) {
                                    lines.extend(entry.conn.push_bytes(data));
                                }
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                            Err(_) => {
                                entry.dead = true;
                                break;
                            }
                        }
                    }
                }
                for line in lines {
                    let trimmed = line.trim();
                    if trimmed.is_empty() || !accepting_input {
                        continue;
                    }
                    let seq = entry.conn.begin_request();
                    let outcome = process_line(trimmed, &shared, || Responder::Reactor {
                        reactor: Arc::clone(&own),
                        token,
                        seq,
                    });
                    match outcome {
                        Outcome::Immediate(response) => {
                            entry.conn.complete(seq, response.to_line());
                        }
                        Outcome::Enqueued => {}
                    }
                }
            }
        }
        self.pump(token);
    }

    /// Adopts connections reactor 0 assigned to this thread.
    fn adopt_injected(&mut self) {
        let streams = std::mem::take(&mut *lock(&self.own.injected));
        for stream in streams {
            if self.shared.draining() {
                continue;
            }
            self.register_conn(stream);
        }
    }

    /// Applies dispatcher completions and flushes the affected conns.
    fn apply_completions(&mut self) {
        let completions = std::mem::take(&mut *lock(&self.own.completions));
        if completions.is_empty() {
            return;
        }
        let mut touched = Vec::new();
        for (token, seq, line) in completions {
            if let Some(entry) = self.slab.get_mut(token).and_then(|s| s.as_mut()) {
                entry.conn.complete(seq, line);
                if !touched.contains(&token) {
                    touched.push(token);
                }
            }
        }
        for token in touched {
            self.pump(token);
        }
    }

    /// Releases in-order responses into the write buffer, writes as much
    /// as the socket takes, keeps `EPOLLOUT` interest in sync, and frees
    /// the slot once a dead connection owes nothing more.
    fn pump(&mut self, token: usize) {
        let epfd = self.epfd;
        let mut free_slot = false;
        if let Some(entry) = self.slab.get_mut(token).and_then(|s| s.as_mut()) {
            let released = entry.conn.flush_ready();
            if released > 0 && entry.stream.is_some() {
                self.shared
                    .engine
                    .stats
                    .served
                    .fetch_add(released as u64, Ordering::Relaxed);
            }
            if !entry.dead {
                if let Some(stream) = entry.stream.as_mut() {
                    // Chaos testing: an injected reset (or crash) at the
                    // socket edge hangs up before the buffered response
                    // bytes leave, so the client observes a dead
                    // connection and must retry. Transient kinds fall
                    // through — the write loop below already absorbs
                    // interrupted/would-block, which is what they model.
                    if !entry.conn.unwritten().is_empty() {
                        if let Some(gss_store::FaultAction::Reset | gss_store::FaultAction::Crash) =
                            self.shared
                                .config
                                .faults
                                .fire(gss_store::fault::points::CONN_WRITE)
                        {
                            let _ = stream.shutdown(std::net::Shutdown::Both);
                            entry.dead = true;
                        }
                    }
                    loop {
                        if entry.dead {
                            break;
                        }
                        let written = {
                            let buf = entry.conn.unwritten();
                            if buf.is_empty() {
                                break;
                            }
                            match stream.write(buf) {
                                Ok(0) => {
                                    entry.dead = true;
                                    break;
                                }
                                Ok(n) => n,
                                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                                Err(_) => {
                                    entry.dead = true;
                                    break;
                                }
                            }
                        };
                        entry.conn.advance_written(written);
                    }
                }
            }
            if !entry.dead {
                if let Some(stream) = &entry.stream {
                    let want_out = !entry.conn.unwritten().is_empty();
                    if want_out != entry.interest_out {
                        let events = if want_out {
                            EPOLLIN | EPOLLRDHUP | EPOLLOUT
                        } else {
                            EPOLLIN | EPOLLRDHUP
                        };
                        if ep_ctl(
                            epfd,
                            EPOLL_CTL_MOD,
                            stream.as_raw_fd(),
                            events,
                            token as u64,
                        )
                        .is_ok()
                        {
                            entry.interest_out = want_out;
                        }
                    }
                }
            }
            if entry.dead {
                // Closing the fd deregisters it from epoll; the slot stays
                // reserved while responses are still in flight so their
                // (token, seq) completions cannot alias a reused slot.
                drop(entry.stream.take());
                if entry.conn.outstanding() == 0 {
                    free_slot = true;
                }
            }
        }
        if free_slot {
            if let Some(slot) = self.slab.get_mut(token) {
                *slot = None;
            }
            self.free.push(token);
        }
    }

    /// The drain exit condition; also drops the listener once draining.
    fn drained(&mut self) -> bool {
        if !self.shared.draining() {
            return false;
        }
        // Stop accepting: dropping the listener closes the socket (and
        // deregisters it). Only reactor 0 holds one.
        drop(self.listener.take());
        if !self.shared.dispatcher_done.load(Ordering::Relaxed) {
            return false;
        }
        if !lock(&self.own.completions).is_empty() || !lock(&self.own.injected).is_empty() {
            return false;
        }
        self.slab.iter().flatten().all(|entry| entry.conn.idle())
    }
}
