//! The serving engine: protocol resolution, cache lookups and
//! micro-batched evaluation. Everything here is transport-free — the TCP
//! layer in [`crate::server`] feeds it request lines and ships back typed
//! [`Response`] values (serialized once, at the connection edge) — so the
//! whole request path is unit-testable without sockets.
//!
//! The *shape* of the wire format lives in [`gss_protocol`]; this module
//! owns the semantic half: graph text is parsed against the database
//! vocabulary, overrides are merged into the base options, cache keys are
//! built and deadlines armed.

use std::sync::Arc;
use std::time::{Duration, Instant};

use gss_core::jsonio::Value;
use gss_core::{
    try_graph_similarity_skyline_batch, BatchStats, CancelToken, GedMode, GraphDatabase, McsMode,
    Plan, QueryKey, QueryOptions, SolverConfig,
};
use gss_graph::Graph;
use gss_protocol::{QueryEnvelope, Response};
use gss_store::{GraphStore, MutationBatch, MutationError, MutationReceipt, StoreConfig};

use crate::cache::ShardedCache;
use crate::stats::ServerStats;
use crate::ServerConfig;

pub use gss_protocol::WireError as RequestError;

/// A resolved protocol request: the wire verbs with the `query` envelope
/// parsed against this engine's database and options.
pub enum Request {
    /// Liveness probe.
    Ping {
        /// Client correlation id, echoed back.
        id: Option<Value>,
    },
    /// Counter snapshot.
    Stats {
        /// Client correlation id, echoed back.
        id: Option<Value>,
    },
    /// Begin graceful drain.
    Shutdown {
        /// Client correlation id, echoed back.
        id: Option<Value>,
    },
    /// A skyline query.
    Query(Box<QueryRequest>),
    /// Append graphs to the live store.
    Insert {
        /// Client correlation id, echoed back.
        id: Option<Value>,
        /// Graphs to append, in `t/v/e` text form.
        graphs: String,
        /// Client idempotency key, deduplicated by a durable store.
        mutation_id: Option<String>,
    },
    /// Remove graphs from the live store by name.
    Remove {
        /// Client correlation id, echoed back.
        id: Option<Value>,
        /// Names of the graphs to remove.
        names: Vec<String>,
        /// Client idempotency key, deduplicated by a durable store.
        mutation_id: Option<String>,
    },
    /// Replace one named graph in place.
    Update {
        /// Client correlation id, echoed back.
        id: Option<Value>,
        /// Name of the graph to replace.
        name: String,
        /// The replacement, in `t/v/e` text form.
        graph: String,
        /// Client idempotency key, deduplicated by a durable store.
        mutation_id: Option<String>,
    },
}

/// One admitted skyline query, pinned to the MVCC snapshot it was
/// admitted against.
pub struct QueryRequest {
    /// Client correlation id, echoed back in the response.
    // gss-lint: exempt(QueryRequest::id) — per-request correlation metadata, echoed in the envelope around the cached document, never inside it
    pub id: Option<Value>,
    /// The snapshot database this query evaluates against: mutations
    /// landing after admission cannot disturb it.
    // gss-lint: exempt(QueryRequest::db) — the snapshot's identity IS the key's `database` component (its epoch-folded fingerprint, captured by `QueryKey::with_database` at parse time)
    pub db: Arc<GraphDatabase>,
    /// The parsed query graph.
    pub graph: Graph,
    /// Effective options (server base + per-request overrides).
    pub options: QueryOptions,
    /// The result-cache key.
    // gss-lint: exempt(QueryRequest::key) — the key IS the fingerprint (the with_database output), not an input to it
    pub key: QueryKey,
    /// Absolute execution deadline: the dispatcher drops the request if it
    /// is still queued past this instant.
    // gss-lint: exempt(QueryRequest::deadline) — scheduling metadata; an expired request gets an error envelope, never a cached document
    pub deadline: Instant,
}

/// The transport-free serving core: one live store, one base option set,
/// one result cache, one stats block.
pub struct Engine {
    store: Arc<GraphStore>,
    base: QueryOptions,
    workers: usize,
    default_deadline: Duration,
    /// The sharded LRU result cache.
    pub cache: ShardedCache,
    /// Shared observability counters.
    pub stats: ServerStats,
    /// Wall-clock of the construction-time warmup (stats precompute) —
    /// near-zero when the database was loaded from the compact binary
    /// format, whose stats columns arrive precomputed. Reported under
    /// `memory.cold_start_ms` in the `stats` verb.
    cold_start_ms: f64,
}

impl Engine {
    /// Creates the engine for one database under one server configuration.
    /// `base` supplies the defaults a request's `options` object overrides.
    ///
    /// A [`ServerConfig::shards`] greater than one rewrites the base plan
    /// to [`Plan::Sharded`] over that many candidate partitions — decided
    /// here, at construction, so every request resolves (and caches)
    /// against one consistent base; a per-request `plan` override still
    /// wins.
    pub fn new(db: Arc<GraphDatabase>, base: QueryOptions, config: &ServerConfig) -> Engine {
        Engine::with_store(
            Arc::new(GraphStore::new(db, StoreConfig::default())),
            base,
            config,
        )
    }

    /// Creates the engine over an existing live store (e.g. one carrying
    /// a maintained pivot index or a tuned staleness budget).
    pub fn with_store(store: Arc<GraphStore>, base: QueryOptions, config: &ServerConfig) -> Engine {
        // Fill the per-graph stats cache up front: a long-lived server
        // should pay the one-time summary cost at load, not on the first
        // uncached query. (Later epochs share the cells of untouched
        // graphs, so churn only recomputes what actually changed; a
        // compact-loaded database decodes its stats columns instead of
        // recomputing, which is what makes this near-instant.)
        let warmup = Instant::now();
        store.snapshot().database().precompute_stats();
        let cold_start_ms = warmup.elapsed().as_secs_f64() * 1e3;
        let base = if config.shards > 1 {
            QueryOptions {
                plan: Plan::Sharded,
                shards: config.shards,
                ..base
            }
        } else {
            base
        };
        Engine {
            store,
            base,
            workers: config.workers.max(1),
            default_deadline: Duration::from_millis(config.default_deadline_ms),
            cache: ShardedCache::new(config.cache_capacity, config.cache_shards),
            stats: ServerStats::default(),
            cold_start_ms,
        }
    }

    /// The database of the current head snapshot.
    pub fn db(&self) -> Arc<GraphDatabase> {
        Arc::clone(self.store.snapshot().database())
    }

    /// The live store behind this engine.
    pub fn store(&self) -> &Arc<GraphStore> {
        &self.store
    }

    /// The current head snapshot's fingerprint (changes every epoch).
    pub fn db_fingerprint(&self) -> u64 {
        self.store.snapshot().fingerprint()
    }

    /// Applies one mutation batch to the live store, then evicts result
    /// cache entries whose database fingerprint is no longer the head's
    /// (epoch-folded fingerprints make them unreachable the moment the
    /// epoch bumps; eviction reclaims their memory eagerly and keeps the
    /// `cache_entries` stat honest).
    pub fn apply_mutation(&self, batch: &MutationBatch) -> Result<MutationReceipt, MutationError> {
        self.apply_mutation_logged(batch, None)
    }

    /// [`Engine::apply_mutation`] with a client idempotency key. A
    /// replayed receipt (duplicate `mutation_id` on a durable store)
    /// skips the stats bump and cache eviction — nothing changed.
    pub fn apply_mutation_logged(
        &self,
        batch: &MutationBatch,
        mutation_id: Option<&str>,
    ) -> Result<MutationReceipt, MutationError> {
        let receipt = self.store.apply_logged(batch, mutation_id)?;
        if !receipt.replayed {
            ServerStats::bump(&self.stats.mutated);
            self.cache.evict_stale(self.store.snapshot().fingerprint());
        }
        Ok(receipt)
    }

    /// Parses one request line: wire shape via [`gss_protocol::Request`],
    /// then semantic resolution of the `query` envelope.
    pub fn parse_request(&self, line: &str) -> Result<Request, RequestError> {
        match gss_protocol::Request::from_line(line)? {
            gss_protocol::Request::Ping { id } => Ok(Request::Ping { id }),
            gss_protocol::Request::Stats { id } => Ok(Request::Stats { id }),
            gss_protocol::Request::Shutdown { id } => Ok(Request::Shutdown { id }),
            gss_protocol::Request::Query(envelope) => {
                let id = envelope.id.clone();
                self.parse_query(*envelope)
                    .map_err(|message| RequestError { id, message })
            }
            gss_protocol::Request::Insert {
                id,
                graphs,
                mutation_id,
            } => Ok(Request::Insert {
                id,
                graphs,
                mutation_id,
            }),
            gss_protocol::Request::Remove {
                id,
                names,
                mutation_id,
            } => Ok(Request::Remove {
                id,
                names,
                mutation_id,
            }),
            gss_protocol::Request::Update {
                id,
                name,
                graph,
                mutation_id,
            } => Ok(Request::Update {
                id,
                name,
                graph,
                mutation_id,
            }),
        }
    }

    fn parse_query(&self, envelope: QueryEnvelope) -> Result<Request, String> {
        // Pin the head snapshot: this query resolves, keys and evaluates
        // against exactly this epoch, however many mutations land while
        // it waits in the queue.
        let snapshot = self.store.snapshot();
        // Parse against a clone of the database vocabulary: label ids stay
        // consistent with the stored graphs, labels new to this query get
        // fresh ids, and the shared database stays immutable. The clone is
        // O(vocab) per request — label vocabularies are small (element and
        // bond names, not per-graph data), and parsing needs `&mut`, so a
        // copy-on-write overlay is not worth a gss-graph API change yet.
        let mut vocab = snapshot.database().vocab().clone();
        let graphs = gss_graph::format::parse_database(&envelope.graph, &mut vocab)
            .map_err(|e| format!("cannot parse query graph: {e}"))?;
        let graph = graphs
            .into_iter()
            .next()
            .ok_or_else(|| "the \"graph\" field contains no graph".to_owned())?;

        let mut options = self.base.clone();
        // The snapshot's incrementally maintained index replaces whatever
        // the base carried: it is the one that validates against this
        // epoch's database.
        if let Some(index) = snapshot.query_index() {
            options.index = Some(index);
        }
        let o = &envelope.overrides;
        if let Some(prefilter) = o.prefilter {
            options.prefilter = prefilter;
        }
        if let Some(approx) = o.approx {
            options.solvers = if approx {
                SolverConfig {
                    ged: GedMode::Bipartite,
                    mcs: McsMode::Greedy,
                }
            } else {
                SolverConfig::default()
            };
        }
        if let Some(algo) = o.algo {
            options.skyline_algorithm = algo;
        }
        if let Some(plan) = o.plan {
            if plan == Plan::Indexed && options.index.is_none() {
                return Err("options.plan \"indexed\" requires a server-side index \
                     (start gss serve with --index)"
                    .to_owned());
            }
            options.plan = plan;
        }

        let deadline_ms = envelope
            .deadline_ms
            .unwrap_or(self.default_deadline.as_millis() as u64);

        let key = QueryKey::with_database(snapshot.fingerprint(), &vocab, &graph, &options);
        Ok(Request::Query(Box::new(QueryRequest {
            id: envelope.id,
            db: Arc::clone(snapshot.database()),
            graph,
            options,
            key,
            deadline: Instant::now() + Duration::from_millis(deadline_ms),
        })))
    }

    /// Answers a query from the cache, if present: the response carries
    /// `cached: true` around the byte-identical result document.
    pub fn try_cache(&self, request: &QueryRequest) -> Option<Response> {
        self.cache.get(&request.key).map(|result| Response::Result {
            id: request.id.clone(),
            cached: true,
            result,
        })
    }

    /// The `stats` verb response: the server counters plus the live
    /// store's epoch, mutation totals and index-maintenance state.
    pub fn stats_response(&self, id: &Option<Value>) -> Response {
        let mut value = self.stats.to_value(self.cache.len());
        let store = self.store.stats();
        if let Value::Object(members) = &mut value {
            let n = |v: u64| Value::Number(v as f64);
            members.push(("epoch".to_owned(), n(store.epoch)));
            members.push((
                "store".to_owned(),
                Value::Object(vec![
                    ("inserted".to_owned(), n(store.inserted)),
                    ("removed".to_owned(), n(store.removed)),
                    ("updated".to_owned(), n(store.updated)),
                ]),
            ));
            if let (Some(stale), Some(partial)) =
                (store.index_stale_ops, store.index_partial_rebuilds)
            {
                members.push((
                    "index".to_owned(),
                    Value::Object(vec![
                        ("stale_ops".to_owned(), n(stale)),
                        ("partial_rebuilds".to_owned(), n(partial)),
                        ("rebuilds".to_owned(), n(store.index_rebuilds)),
                    ]),
                ));
            }
            let mem = self.store.snapshot().database().memory_stats();
            members.push((
                "memory".to_owned(),
                Value::Object(vec![
                    ("graphs".to_owned(), n(mem.graphs as u64)),
                    ("arena_graphs".to_owned(), n(mem.arena_graphs as u64)),
                    ("materialized".to_owned(), n(mem.materialized as u64)),
                    ("arena_bytes".to_owned(), n(mem.arena_bytes as u64)),
                    (
                        "stats_columns_bytes".to_owned(),
                        n(mem.stats_columns_bytes as u64),
                    ),
                    (
                        "pointer_rich_bytes".to_owned(),
                        n(mem.pointer_rich_bytes as u64),
                    ),
                    (
                        "arena_bytes_per_graph".to_owned(),
                        Value::Number(mem.arena_bytes_per_graph()),
                    ),
                    (
                        "pointer_rich_bytes_per_graph".to_owned(),
                        Value::Number(mem.pointer_rich_bytes_per_graph()),
                    ),
                    ("pool_entries".to_owned(), n(mem.pool_entries as u64)),
                    ("pool_bytes".to_owned(), n(mem.pool_bytes as u64)),
                    (
                        "cold_start_ms".to_owned(),
                        Value::Number(self.cold_start_ms),
                    ),
                ]),
            ));
            if let Some(wal) = store.wal {
                members.push((
                    "wal".to_owned(),
                    Value::Object(vec![
                        ("appended".to_owned(), n(wal.appended)),
                        ("fsyncs".to_owned(), n(wal.fsyncs)),
                        ("checkpoints".to_owned(), n(wal.checkpoints)),
                        ("checkpoint_failures".to_owned(), n(wal.checkpoint_failures)),
                        ("last_durable_epoch".to_owned(), n(wal.last_durable_epoch)),
                        (
                            "recovery".to_owned(),
                            Value::Object(vec![
                                ("replayed".to_owned(), n(wal.recovery.replayed)),
                                (
                                    "truncated_tail".to_owned(),
                                    Value::Bool(wal.recovery.truncated_tail),
                                ),
                            ]),
                        ),
                    ]),
                ));
            }
        }
        Response::Stats {
            id: id.clone(),
            stats: value.to_compact(),
        }
    }

    /// Evaluates admitted queries as micro-batches: jobs sharing an options
    /// fingerprint go through one [`try_graph_similarity_skyline_batch`]
    /// call (wave-parallel across the batch, each query single-threaded —
    /// the normalization that keeps responses thread-count-invariant; a
    /// lone [`Plan::Sharded`] query instead fans its shards out across the
    /// worker pool, which is byte-identical by the sharded plan's
    /// construction), results are serialized, cached, and returned as
    /// typed [`Response`] values in job order. Jobs sharing a full
    /// [`QueryKey`] (concurrent identical queries that all missed the cold
    /// cache) are evaluated **once** and fanned out.
    ///
    /// Every evaluation carries a deadline-armed [`CancelToken`], so a
    /// query whose deadline passes *mid-scan* is aborted at the next wave
    /// checkpoint and answered with [`Response::Expired`] (counted in
    /// [`crate::ServerStats::cancelled`], distinct from the in-queue
    /// `deadline_expired` drops). Duplicates share one evaluation, so its
    /// token fires only once the **latest** duplicate deadline passed.
    // gss-lint: allow(no-panic-in-request-path[index]) — all indices are positions produced by enumerate() over the same `jobs`/`reps`/`responses` slices; in-bounds by construction
    pub fn evaluate_batch(&self, jobs: &[QueryRequest]) -> Vec<Response> {
        let mut responses: Vec<Option<Response>> = (0..jobs.len()).map(|_| None).collect();
        // Group by (database, options) fingerprint pair, preserving
        // first-seen order: one micro-batch may span epochs when a
        // mutation landed between admissions, and each job must evaluate
        // against the snapshot it was keyed on.
        let mut groups: Vec<((u64, u64), Vec<usize>)> = Vec::new();
        for (i, job) in jobs.iter().enumerate() {
            let fp = (job.key.database, job.key.options);
            match groups.iter_mut().find(|(g, _)| *g == fp) {
                Some((_, members)) => members.push(i),
                None => groups.push((fp, vec![i])),
            }
        }
        for (_, members) in groups {
            // One representative per distinct key: duplicates ride along.
            let mut reps: Vec<usize> = Vec::new();
            for &i in &members {
                if !reps.iter().any(|&r| jobs[r].key == jobs[i].key) {
                    reps.push(i);
                }
            }
            let graphs: Vec<Graph> = reps.iter().map(|&i| jobs[i].graph.clone()).collect();
            let cancels: Vec<CancelToken> = reps
                .iter()
                .map(|&r| {
                    let latest = members
                        .iter()
                        .filter(|&&i| jobs[i].key == jobs[r].key)
                        .map(|&i| jobs[i].deadline)
                        .max()
                        // A representative represents at least itself.
                        .unwrap_or(jobs[r].deadline);
                    CancelToken::with_deadline(latest)
                })
                .collect();
            let options = QueryOptions {
                threads: self.workers,
                ..jobs[members[0]].options.clone()
            };
            // Every member of the group shares one key.database, hence
            // one pinned snapshot database.
            let db = &jobs[members[0]].db;
            let results = try_graph_similarity_skyline_batch(db, &graphs, &options, &cancels);
            let mut totals = BatchStats::default();
            for r in results.iter().flatten() {
                totals.absorb(r);
            }
            self.stats.absorb_batch(&totals);
            for (k, &rep) in reps.iter().enumerate() {
                match &results[k] {
                    Ok(result) => {
                        let pretty = gss_core::to_json(db, result);
                        match Value::parse(&pretty) {
                            Ok(value) => {
                                let result = value.to_compact();
                                self.cache.insert(jobs[rep].key, result.clone());
                                for &i in &members {
                                    if jobs[i].key == jobs[rep].key {
                                        responses[i] = Some(Response::Result {
                                            id: jobs[i].id.clone(),
                                            cached: false,
                                            result: result.clone(),
                                        });
                                    }
                                }
                            }
                            // Unreachable while to_json is correct, but a
                            // serializer bug must surface as an error
                            // envelope, not a worker panic that strands
                            // every queued connection.
                            Err(_) => {
                                for &i in &members {
                                    if jobs[i].key == jobs[rep].key {
                                        responses[i] = Some(Response::Error {
                                            id: jobs[i].id.clone(),
                                            message: "internal: result serialization failed"
                                                .to_owned(),
                                        });
                                    }
                                }
                            }
                        }
                    }
                    Err(_cancelled) => {
                        for &i in &members {
                            if jobs[i].key == jobs[rep].key {
                                ServerStats::bump(&self.stats.cancelled);
                                responses[i] = Some(Response::Expired {
                                    id: jobs[i].id.clone(),
                                });
                            }
                        }
                    }
                }
            }
        }
        responses
            .into_iter()
            // Every job belongs to exactly one group; the fallback keeps
            // a grouping bug answerable instead of panicking mid-batch.
            .map(|r| {
                r.unwrap_or_else(|| Response::Error {
                    id: None,
                    message: "internal: job not evaluated".to_owned(),
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_datasets::workload::{Workload, WorkloadConfig};
    use gss_skyline::Algorithm;

    fn engine() -> Engine {
        let w = Workload::generate(&WorkloadConfig {
            database_size: 12,
            ..WorkloadConfig::default()
        });
        let db = Arc::new(GraphDatabase::from_parts(w.vocab, w.graphs));
        Engine::new(db, QueryOptions::default(), &ServerConfig::default())
    }

    fn graph_text(engine: &Engine) -> String {
        gss_graph::format::write_database(
            std::slice::from_ref(engine.db().get(gss_core::GraphId(0))),
            engine.db().vocab(),
        )
    }

    fn query_line(engine: &Engine, extra: &str) -> String {
        format!(
            "{{\"op\":\"query\",\"graph\":\"{}\"{extra}}}",
            gss_core::jsonio::escape(&graph_text(engine))
        )
    }

    fn response_value(response: &Response) -> Value {
        Value::parse(response.to_line().trim()).expect("responses serialize to JSON")
    }

    #[test]
    fn parses_the_verbs() {
        let e = engine();
        assert!(matches!(
            e.parse_request("{\"op\":\"ping\"}"),
            Ok(Request::Ping { id: None })
        ));
        assert!(matches!(
            e.parse_request("{\"op\":\"stats\",\"id\":7}"),
            Ok(Request::Stats { id: Some(_) })
        ));
        assert!(matches!(
            e.parse_request("{\"op\":\"shutdown\"}"),
            Ok(Request::Shutdown { .. })
        ));
        let q = e.parse_request(&query_line(&e, ""));
        assert!(matches!(q, Ok(Request::Query(_))));
        assert!(matches!(
            e.parse_request("{\"op\":\"insert\",\"graphs\":\"t a\\nv 0 C\\n\"}"),
            Ok(Request::Insert { .. })
        ));
        assert!(matches!(
            e.parse_request("{\"op\":\"remove\",\"names\":[\"a\"]}"),
            Ok(Request::Remove { .. })
        ));
        assert!(matches!(
            e.parse_request("{\"op\":\"update\",\"name\":\"a\",\"graph\":\"t a\\nv 0 C\\n\"}"),
            Ok(Request::Update { .. })
        ));
    }

    #[test]
    fn mutations_bump_epochs_and_queries_pin_their_snapshot() {
        let e = engine();
        let before = e.db();
        // Warm the cache at epoch 0.
        let job0 = match e.parse_request(&query_line(&e, "")).unwrap() {
            Request::Query(q) => *q,
            _ => unreachable!(),
        };
        e.evaluate_batch(std::slice::from_ref(&job0));
        assert!(e.try_cache(&job0).is_some(), "epoch-0 entry cached");

        let receipt = e
            .apply_mutation(&MutationBatch::default().insert("t fresh\nv 0 C\nv 1 O\ne 0 1 =\n"))
            .expect("insert applies");
        assert_eq!(receipt.epoch, 1);
        assert_eq!(e.db().len(), before.len() + 1);
        assert_eq!(
            e.stats.mutated.load(std::sync::atomic::Ordering::Relaxed),
            1
        );
        assert!(
            e.try_cache(&job0).is_none(),
            "stale-epoch cache entries are evicted"
        );

        // The same query line now keys (and evaluates) against epoch 1.
        let job1 = match e.parse_request(&query_line(&e, "")).unwrap() {
            Request::Query(q) => *q,
            _ => unreachable!(),
        };
        assert_ne!(job0.key.database, job1.key.database, "epoch in the key");
        assert_eq!(job0.key.query, job1.key.query, "same graph fingerprint");
        assert_eq!(job0.db.len() + 1, job1.db.len(), "snapshots pinned");

        // One micro-batch spanning both epochs: each job evaluates against
        // its own pinned snapshot.
        let epoch1_fp = job1.key.database;
        let responses = e.evaluate_batch(&[job0, job1]);
        let result = |k: usize| match &responses[k] {
            Response::Result { result, .. } => result.clone(),
            other => panic!("expected a result, got {:?}", other.to_line()),
        };
        assert_ne!(
            result(0),
            result(1),
            "the epoch-1 answer sees the inserted graph"
        );

        // A failed batch is a no-op and does not bump anything.
        assert!(e
            .apply_mutation(&MutationBatch::default().remove("no-such-graph"))
            .is_err());
        assert_eq!(e.db_fingerprint(), epoch1_fp);

        // The stats payload reports the store state.
        let Response::Stats { stats, .. } = e.stats_response(&None) else {
            unreachable!()
        };
        let v = Value::parse(&stats).expect("stats payload parses");
        assert_eq!(v.get("epoch").and_then(Value::as_f64), Some(1.0));
        assert_eq!(v.get("mutated").and_then(Value::as_f64), Some(1.0));
        assert_eq!(
            v.get("store")
                .and_then(|s| s.get("inserted"))
                .and_then(Value::as_f64),
            Some(1.0)
        );
        let mem = v.get("memory").expect("memory section");
        assert_eq!(
            mem.get("graphs").and_then(Value::as_f64),
            Some(e.db().len() as f64)
        );
        assert!(mem.get("pointer_rich_bytes").and_then(Value::as_f64) > Some(0.0));
        assert!(mem.get("cold_start_ms").and_then(Value::as_f64).is_some());
    }

    #[test]
    fn rejects_malformed_requests() {
        let e = engine();
        for (line, what) in [
            ("", "empty line"),
            ("not json", "not JSON"),
            ("{}", "missing op"),
            ("{\"op\":\"frobnicate\"}", "unknown op"),
            ("{\"op\":\"query\"}", "missing graph"),
            (
                "{\"op\":\"query\",\"graph\":\"t g\\nv 0\"}",
                "bad graph text",
            ),
            ("{\"op\":\"query\",\"graph\":\"\"}", "no graph in text"),
            ("{\"op\":\"ping\",\"id\":[1]}", "non-scalar id"),
        ] {
            assert!(e.parse_request(line).is_err(), "{what}");
        }
        let bad_opts = query_line(&e, ",\"options\":{\"bogus\":1}");
        assert!(e.parse_request(&bad_opts).is_err(), "unknown option");
        let bad_algo = query_line(&e, ",\"options\":{\"algo\":\"quantum\"}");
        assert!(e.parse_request(&bad_algo).is_err(), "unknown algo");
        let bad_deadline = query_line(&e, ",\"deadline_ms\":-5");
        assert!(e.parse_request(&bad_deadline).is_err(), "negative deadline");
    }

    #[test]
    fn per_request_options_override_the_base() {
        let e = engine();
        let plain = match e.parse_request(&query_line(&e, "")).unwrap() {
            Request::Query(q) => q,
            _ => unreachable!(),
        };
        assert!(!plain.options.prefilter);
        let tuned = match e
            .parse_request(&query_line(
                &e,
                ",\"options\":{\"prefilter\":true,\"approx\":true,\"algo\":\"sfs\"}",
            ))
            .unwrap()
        {
            Request::Query(q) => q,
            _ => unreachable!(),
        };
        assert!(tuned.options.prefilter);
        assert_eq!(tuned.options.solvers.ged, GedMode::Bipartite);
        assert_eq!(tuned.options.skyline_algorithm, Algorithm::Sfs);
        assert_ne!(
            plain.key.options, tuned.key.options,
            "different options, different cache slots"
        );
        assert_eq!(plain.key.query, tuned.key.query, "same graph");
    }

    #[test]
    fn evaluation_matches_direct_call_and_caches() {
        let e = engine();
        let job = match e.parse_request(&query_line(&e, "")).unwrap() {
            Request::Query(q) => q,
            _ => unreachable!(),
        };
        assert!(e.try_cache(&job).is_none(), "cold cache");
        let responses = e.evaluate_batch(std::slice::from_ref(&job));
        assert_eq!(responses.len(), 1);
        let Response::Result {
            cached: false,
            result: served,
            ..
        } = &responses[0]
        else {
            panic!("expected a fresh result, got {:?}", responses[0].to_line())
        };

        // The embedded result is byte-identical to a direct evaluation
        // (same pretty document, compacted by the same writer).
        let direct = gss_core::graph_similarity_skyline(
            &e.db(),
            &job.graph,
            &QueryOptions {
                threads: 1,
                ..job.options.clone()
            },
        );
        let direct_compact = Value::parse(&gss_core::to_json(&e.db(), &direct))
            .unwrap()
            .to_compact();
        assert_eq!(served, &direct_compact);

        // Second time around: a cache hit with the identical payload.
        let hit = e.try_cache(&job).expect("warm cache");
        let Response::Result {
            cached: true,
            result: hit_result,
            ..
        } = &hit
        else {
            panic!("expected a cache hit, got {:?}", hit.to_line())
        };
        assert_eq!(hit_result, served, "hit bytes match the fresh evaluation");
    }

    #[test]
    fn batch_groups_by_options_and_preserves_order() {
        let e = engine();
        let mk = |extra: &str| match e.parse_request(&query_line(&e, extra)).unwrap() {
            Request::Query(q) => *q,
            _ => unreachable!(),
        };
        let jobs = vec![
            mk(",\"id\":\"a\""),
            mk(",\"id\":\"b\",\"options\":{\"prefilter\":true}"),
            mk(",\"id\":\"c\""),
        ];
        let responses = e.evaluate_batch(&jobs);
        assert_eq!(responses.len(), 3);
        for (resp, id) in responses.iter().zip(["a", "b", "c"]) {
            let v = response_value(resp);
            assert_eq!(v.get("id").and_then(Value::as_str), Some(id));
            assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        }
        // The prefilter run carries pruning stats; the naive ones don't.
        let with_stats = response_value(&responses[1]);
        assert!(with_stats.get("result").unwrap().get("pruning").is_some());
        let naive = response_value(&responses[0]);
        assert!(naive.get("result").unwrap().get("pruning").is_none());
        // Engine totals absorbed both groups — jobs "a" and "c" are the
        // same query under the same options, so they share one scan.
        let totals = e.stats.totals();
        assert_eq!(totals.queries, 2);
        assert_eq!(totals.candidates, 2 * e.db().len());
    }

    #[test]
    fn identical_jobs_in_one_batch_evaluate_once() {
        let e = engine();
        let mk = |extra: &str| match e.parse_request(&query_line(&e, extra)).unwrap() {
            Request::Query(q) => *q,
            _ => unreachable!(),
        };
        // Three identical queries plus one distinct (prefilter) one.
        let jobs = vec![
            mk(",\"id\":1"),
            mk(",\"id\":2"),
            mk(",\"id\":3"),
            mk(",\"id\":4,\"options\":{\"prefilter\":true}"),
        ];
        let responses = e.evaluate_batch(&jobs);
        assert_eq!(responses.len(), 4);
        for (resp, id) in responses.iter().zip(1..) {
            let v = response_value(resp);
            assert_eq!(v.get("id").and_then(Value::as_f64), Some(f64::from(id)));
            assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        }
        // The three duplicates share one result document…
        let result = |k: usize| match &responses[k] {
            Response::Result { result, .. } => result.clone(),
            other => panic!("expected a result, got {:?}", other.to_line()),
        };
        assert_eq!(result(0), result(1));
        assert_eq!(result(1), result(2));
        // …and only two scans ran (one per distinct key).
        let totals = e.stats.totals();
        assert_eq!(totals.queries, 2, "duplicates must not re-evaluate");
        assert_eq!(totals.candidates, 2 * e.db().len());
    }

    #[test]
    fn plan_option_parses_and_validates() {
        let e = engine();
        let tuned = match e
            .parse_request(&query_line(&e, ",\"options\":{\"plan\":\"prefilter\"}"))
            .unwrap()
        {
            Request::Query(q) => q,
            _ => unreachable!(),
        };
        assert_eq!(tuned.options.plan, Plan::Prefilter);
        let plain = match e.parse_request(&query_line(&e, "")).unwrap() {
            Request::Query(q) => q,
            _ => unreachable!(),
        };
        assert_eq!(plain.options.plan, Plan::Auto);
        assert_ne!(
            plain.key.options, tuned.key.options,
            "different plans, different cache slots"
        );
        // The sharded plan is requestable per query (it runs as one shard
        // unless the server was started with --shards).
        let sharded = match e
            .parse_request(&query_line(&e, ",\"options\":{\"plan\":\"sharded\"}"))
            .unwrap()
        {
            Request::Query(q) => q,
            _ => unreachable!(),
        };
        assert_eq!(sharded.options.plan, Plan::Sharded);
        assert_ne!(sharded.key.options, plain.key.options);
        let bad = query_line(&e, ",\"options\":{\"plan\":\"quantum\"}");
        assert!(e.parse_request(&bad).is_err(), "unknown plan");
        // This engine has no index, so the indexed plan must be refused at
        // parse time (not panic mid-evaluation).
        let indexed = query_line(&e, ",\"options\":{\"plan\":\"indexed\"}");
        let err = match e.parse_request(&indexed) {
            Err(err) => err,
            Ok(_) => panic!("indexed plan without an index must be rejected"),
        };
        assert!(err.message.contains("index"), "{}", err.message);
    }

    #[test]
    fn sharded_server_config_rewrites_the_base_plan() {
        let w = Workload::generate(&WorkloadConfig {
            database_size: 12,
            ..WorkloadConfig::default()
        });
        let db = Arc::new(GraphDatabase::from_parts(w.vocab, w.graphs));
        let e = Engine::new(
            db,
            QueryOptions::default(),
            &ServerConfig {
                shards: 4,
                ..ServerConfig::default()
            },
        );
        let job = match e.parse_request(&query_line(&e, "")).unwrap() {
            Request::Query(q) => q,
            _ => unreachable!(),
        };
        assert_eq!(job.options.plan, Plan::Sharded);
        assert_eq!(job.options.shards, 4);
        // A per-request plan override still wins.
        let naive = match e
            .parse_request(&query_line(&e, ",\"options\":{\"plan\":\"naive\"}"))
            .unwrap()
        {
            Request::Query(q) => q,
            _ => unreachable!(),
        };
        assert_eq!(naive.options.plan, Plan::Naive);
    }

    #[test]
    fn expired_deadline_cancels_mid_batch_and_counts() {
        let e = engine();
        // deadline_ms 0: already expired when evaluate_batch arms the
        // token, so the first wave checkpoint aborts the scan.
        let job = match e
            .parse_request(&query_line(&e, ",\"id\":\"late\",\"deadline_ms\":0"))
            .unwrap()
        {
            Request::Query(q) => q,
            _ => unreachable!(),
        };
        let responses = e.evaluate_batch(std::slice::from_ref(&job));
        assert!(
            matches!(&responses[0], Response::Expired { id: Some(_) }),
            "{:?}",
            responses[0].to_line()
        );
        assert_eq!(
            responses[0].to_line(),
            "{\"id\":\"late\",\"ok\":false,\"error\":\"deadline exceeded\"}\n"
        );
        assert_eq!(
            e.stats.cancelled.load(std::sync::atomic::Ordering::Relaxed),
            1
        );
        // Nothing was cached and no engine totals were absorbed.
        assert!(e.try_cache(&job).is_none());
        assert_eq!(e.stats.totals().queries, 0);
    }
}
