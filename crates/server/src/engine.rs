//! The serving engine: protocol parsing, cache lookups and micro-batched
//! evaluation. Everything here is transport-free — the TCP layer in
//! [`crate::server`] feeds it request lines and ships back response
//! lines — so the whole request path is unit-testable without sockets.

use std::sync::Arc;
use std::time::{Duration, Instant};

use gss_core::jsonio::Value;
use gss_core::{
    try_graph_similarity_skyline_batch, BatchStats, CancelToken, GedMode, GraphDatabase, McsMode,
    Plan, QueryKey, QueryOptions, SolverConfig,
};
use gss_graph::Graph;
use gss_skyline::Algorithm;

use crate::cache::ShardedCache;
use crate::stats::ServerStats;
use crate::ServerConfig;

/// A parsed protocol request.
pub enum Request {
    /// Liveness probe.
    Ping {
        /// Client correlation id, echoed back.
        id: Option<Value>,
    },
    /// Counter snapshot.
    Stats {
        /// Client correlation id, echoed back.
        id: Option<Value>,
    },
    /// Begin graceful drain.
    Shutdown {
        /// Client correlation id, echoed back.
        id: Option<Value>,
    },
    /// A skyline query.
    Query(Box<QueryRequest>),
}

/// One admitted skyline query.
pub struct QueryRequest {
    /// Client correlation id, echoed back in the response.
    // gss-lint: exempt(QueryRequest::id) — per-request correlation metadata, echoed in the envelope around the cached document, never inside it
    pub id: Option<Value>,
    /// The parsed query graph.
    pub graph: Graph,
    /// Effective options (server base + per-request overrides).
    pub options: QueryOptions,
    /// The result-cache key.
    // gss-lint: exempt(QueryRequest::key) — the key IS the fingerprint (the with_database output), not an input to it
    pub key: QueryKey,
    /// Absolute execution deadline: the dispatcher drops the request if it
    /// is still queued past this instant.
    // gss-lint: exempt(QueryRequest::deadline) — scheduling metadata; an expired request gets an error envelope, never a cached document
    pub deadline: Instant,
}

/// A request parse failure: the correlation id (when one was readable)
/// plus a message for the error envelope.
#[derive(Debug)]
pub struct RequestError {
    /// Correlation id to echo, if the request got far enough to carry one.
    pub id: Option<Value>,
    /// Human-readable message.
    pub message: String,
}

/// The transport-free serving core: one database, one base option set,
/// one result cache, one stats block.
pub struct Engine {
    db: Arc<GraphDatabase>,
    db_fingerprint: u64,
    base: QueryOptions,
    workers: usize,
    default_deadline: Duration,
    /// The sharded LRU result cache.
    pub cache: ShardedCache,
    /// Shared observability counters.
    pub stats: ServerStats,
}

/// Builds a response envelope: `{"id":…,` (when present) followed by the
/// body members and a trailing newline (the protocol is line-delimited).
fn envelope(id: &Option<Value>, body: &str) -> String {
    let mut out = String::with_capacity(body.len() + 24);
    out.push('{');
    if let Some(id) = id {
        out.push_str("\"id\":");
        out.push_str(&id.to_compact());
        out.push(',');
    }
    out.push_str(body);
    out.push_str("}\n");
    out
}

impl Engine {
    /// Creates the engine for one database under one server configuration.
    /// `base` supplies the defaults a request's `options` object overrides.
    pub fn new(db: Arc<GraphDatabase>, base: QueryOptions, config: &ServerConfig) -> Engine {
        // Fill the per-graph stats cache up front: a long-lived server
        // should pay the one-time summary cost at load, not on the first
        // uncached query.
        db.precompute_stats();
        Engine {
            db_fingerprint: db.fingerprint(),
            db,
            base,
            workers: config.workers.max(1),
            default_deadline: Duration::from_millis(config.default_deadline_ms),
            cache: ShardedCache::new(config.cache_capacity, config.cache_shards),
            stats: ServerStats::default(),
        }
    }

    /// The database being served.
    pub fn db(&self) -> &Arc<GraphDatabase> {
        &self.db
    }

    /// The database fingerprint (computed once at startup).
    pub fn db_fingerprint(&self) -> u64 {
        self.db_fingerprint
    }

    /// Parses one request line.
    pub fn parse_request(&self, line: &str) -> Result<Request, RequestError> {
        let err = |id: &Option<Value>, message: String| RequestError {
            id: id.clone(),
            message,
        };
        let doc = Value::parse(line).map_err(|e| err(&None, format!("bad request: {e}")))?;
        let id = doc.get("id").cloned();
        if let Some(v) = &id {
            if !matches!(v, Value::String(_) | Value::Number(_)) {
                return Err(err(&None, "\"id\" must be a string or number".into()));
            }
        }
        let Some(op) = doc.get("op").and_then(Value::as_str) else {
            return Err(err(
                &id,
                "missing \"op\" (query|ping|stats|shutdown)".into(),
            ));
        };
        match op {
            "ping" => Ok(Request::Ping { id }),
            "stats" => Ok(Request::Stats { id }),
            "shutdown" => Ok(Request::Shutdown { id }),
            "query" => self.parse_query(&doc, id.clone()).map_err(|m| err(&id, m)),
            other => Err(err(&id, format!("unknown op {other:?}"))),
        }
    }

    fn parse_query(&self, doc: &Value, id: Option<Value>) -> Result<Request, String> {
        let Some(text) = doc.get("graph").and_then(Value::as_str) else {
            return Err("query needs a \"graph\" field (t/v/e text)".into());
        };
        // Parse against a clone of the database vocabulary: label ids stay
        // consistent with the stored graphs, labels new to this query get
        // fresh ids, and the shared database stays immutable. The clone is
        // O(vocab) per request — label vocabularies are small (element and
        // bond names, not per-graph data), and parsing needs `&mut`, so a
        // copy-on-write overlay is not worth a gss-graph API change yet.
        let mut vocab = self.db.vocab().clone();
        let graphs = gss_graph::format::parse_database(text, &mut vocab)
            .map_err(|e| format!("cannot parse query graph: {e}"))?;
        let graph = graphs
            .into_iter()
            .next()
            .ok_or_else(|| "the \"graph\" field contains no graph".to_owned())?;

        let mut options = self.base.clone();
        if let Some(o) = doc.get("options") {
            let members = o
                .as_object()
                .ok_or_else(|| "\"options\" must be an object".to_owned())?;
            for (k, v) in members {
                match k.as_str() {
                    "prefilter" => {
                        options.prefilter = v
                            .as_bool()
                            .ok_or_else(|| "options.prefilter must be a boolean".to_owned())?;
                    }
                    "approx" => {
                        let approx = v
                            .as_bool()
                            .ok_or_else(|| "options.approx must be a boolean".to_owned())?;
                        options.solvers = if approx {
                            SolverConfig {
                                ged: GedMode::Bipartite,
                                mcs: McsMode::Greedy,
                            }
                        } else {
                            SolverConfig::default()
                        };
                    }
                    "algo" => {
                        options.skyline_algorithm = match v.as_str() {
                            Some("naive") => Algorithm::Naive,
                            Some("bnl") => Algorithm::Bnl,
                            Some("sfs") => Algorithm::Sfs,
                            _ => return Err("options.algo must be naive|bnl|sfs".into()),
                        };
                    }
                    "plan" => {
                        let plan = v.as_str().and_then(Plan::parse).ok_or_else(|| {
                            "options.plan must be auto|naive|prefilter|indexed".to_owned()
                        })?;
                        if plan == Plan::Indexed && options.index.is_none() {
                            return Err("options.plan \"indexed\" requires a server-side index \
                                 (start gss serve with --index)"
                                .to_owned());
                        }
                        options.plan = plan;
                    }
                    other => return Err(format!("unknown option {other:?}")),
                }
            }
        }

        let deadline_ms = match doc.get("deadline_ms") {
            None => self.default_deadline.as_millis() as u64,
            Some(v) => v
                .as_f64()
                .filter(|ms| *ms >= 0.0 && ms.fract() == 0.0)
                .map(|ms| ms as u64)
                .ok_or_else(|| "\"deadline_ms\" must be a non-negative integer".to_owned())?,
        };

        let key = QueryKey::with_database(self.db_fingerprint, &vocab, &graph, &options);
        Ok(Request::Query(Box::new(QueryRequest {
            id,
            graph,
            options,
            key,
            deadline: Instant::now() + Duration::from_millis(deadline_ms),
        })))
    }

    /// Answers a query from the cache, if present: the response carries
    /// `"cached":true` around the byte-identical result document.
    pub fn try_cache(&self, request: &QueryRequest) -> Option<String> {
        self.cache
            .get(&request.key)
            .map(|result| Engine::ok_response(&request.id, true, &result))
    }

    /// Evaluates admitted queries as micro-batches: jobs sharing an options
    /// fingerprint go through one [`try_graph_similarity_skyline_batch`]
    /// call (wave-parallel across the batch, each query single-threaded —
    /// the normalization that keeps responses thread-count-invariant),
    /// results are serialized, cached, and returned as envelopes in job
    /// order. Jobs sharing a full [`QueryKey`] (concurrent identical
    /// queries that all missed the cold cache) are evaluated **once** and
    /// fanned out.
    ///
    /// Every evaluation carries a deadline-armed [`CancelToken`], so a
    /// query whose deadline passes *mid-scan* is aborted at the next wave
    /// checkpoint and answered with the `deadline exceeded` error (counted
    /// in [`crate::ServerStats::cancelled`], distinct from the in-queue
    /// `deadline_expired` drops). Duplicates share one evaluation, so its
    /// token fires only once the **latest** duplicate deadline passed.
    // gss-lint: allow(no-panic-in-request-path[index]) — all indices are positions produced by enumerate() over the same `jobs`/`reps`/`responses` slices; in-bounds by construction
    pub fn evaluate_batch(&self, jobs: &[QueryRequest]) -> Vec<String> {
        let mut responses: Vec<Option<String>> = (0..jobs.len()).map(|_| None).collect();
        // Group by options fingerprint, preserving first-seen order.
        let mut groups: Vec<(u64, Vec<usize>)> = Vec::new();
        for (i, job) in jobs.iter().enumerate() {
            match groups.iter_mut().find(|(fp, _)| *fp == job.key.options) {
                Some((_, members)) => members.push(i),
                None => groups.push((job.key.options, vec![i])),
            }
        }
        for (_, members) in groups {
            // One representative per distinct key: duplicates ride along.
            let mut reps: Vec<usize> = Vec::new();
            for &i in &members {
                if !reps.iter().any(|&r| jobs[r].key == jobs[i].key) {
                    reps.push(i);
                }
            }
            let graphs: Vec<Graph> = reps.iter().map(|&i| jobs[i].graph.clone()).collect();
            let cancels: Vec<CancelToken> = reps
                .iter()
                .map(|&r| {
                    let latest = members
                        .iter()
                        .filter(|&&i| jobs[i].key == jobs[r].key)
                        .map(|&i| jobs[i].deadline)
                        .max()
                        // A representative represents at least itself.
                        .unwrap_or(jobs[r].deadline);
                    CancelToken::with_deadline(latest)
                })
                .collect();
            let options = QueryOptions {
                threads: self.workers,
                ..jobs[members[0]].options.clone()
            };
            let results = try_graph_similarity_skyline_batch(&self.db, &graphs, &options, &cancels);
            let mut totals = BatchStats::default();
            for r in results.iter().flatten() {
                totals.absorb(r);
            }
            self.stats.absorb_batch(&totals);
            for (k, &rep) in reps.iter().enumerate() {
                match &results[k] {
                    Ok(result) => {
                        let pretty = gss_core::to_json(&self.db, result);
                        match Value::parse(&pretty) {
                            Ok(value) => {
                                let result = value.to_compact();
                                self.cache.insert(jobs[rep].key, result.clone());
                                for &i in &members {
                                    if jobs[i].key == jobs[rep].key {
                                        responses[i] =
                                            Some(Engine::ok_response(&jobs[i].id, false, &result));
                                    }
                                }
                            }
                            // Unreachable while to_json is correct, but a
                            // serializer bug must surface as an error
                            // envelope, not a worker panic that strands
                            // every queued connection.
                            Err(_) => {
                                for &i in &members {
                                    if jobs[i].key == jobs[rep].key {
                                        responses[i] = Some(Engine::error_response(
                                            &jobs[i].id,
                                            "internal: result serialization failed",
                                        ));
                                    }
                                }
                            }
                        }
                    }
                    Err(_cancelled) => {
                        for &i in &members {
                            if jobs[i].key == jobs[rep].key {
                                ServerStats::bump(&self.stats.cancelled);
                                responses[i] = Some(Engine::expired_response(&jobs[i].id));
                            }
                        }
                    }
                }
            }
        }
        responses
            .into_iter()
            // Every job belongs to exactly one group; the fallback keeps
            // a grouping bug answerable instead of panicking mid-batch.
            .map(|r| {
                r.unwrap_or_else(|| Engine::error_response(&None, "internal: job not evaluated"))
            })
            .collect()
    }

    /// The `stats` verb response.
    pub fn stats_response(&self, id: &Option<Value>) -> String {
        let stats = self.stats.to_value(self.cache.len()).to_compact();
        envelope(id, &format!("\"ok\":true,\"stats\":{stats}"))
    }

    /// A successful query response wrapping a serialized result document.
    pub fn ok_response(id: &Option<Value>, cached: bool, result: &str) -> String {
        envelope(
            id,
            &format!("\"ok\":true,\"cached\":{cached},\"result\":{result}"),
        )
    }

    /// A `ping` response.
    pub fn pong_response(id: &Option<Value>) -> String {
        envelope(id, "\"ok\":true")
    }

    /// A `shutdown` acknowledgement.
    pub fn shutdown_response(id: &Option<Value>) -> String {
        envelope(id, "\"ok\":true,\"draining\":true")
    }

    /// A generic error response.
    pub fn error_response(id: &Option<Value>, message: &str) -> String {
        envelope(
            id,
            &format!(
                "\"ok\":false,\"error\":\"{}\"",
                gss_core::jsonio::escape(message)
            ),
        )
    }

    /// The backpressure response: the admission queue is full (or the
    /// server is draining); the client should retry after the given delay.
    pub fn backpressure_response(id: &Option<Value>, retry_after_ms: u64) -> String {
        envelope(
            id,
            &format!("\"ok\":false,\"error\":\"queue full\",\"retry_after_ms\":{retry_after_ms}"),
        )
    }

    /// The deadline expiry response — sent both for in-queue drops and for
    /// evaluations aborted mid-scan by their [`CancelToken`].
    pub fn expired_response(id: &Option<Value>) -> String {
        envelope(id, "\"ok\":false,\"error\":\"deadline exceeded\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_datasets::workload::{Workload, WorkloadConfig};

    fn engine() -> Engine {
        let w = Workload::generate(&WorkloadConfig {
            database_size: 12,
            ..WorkloadConfig::default()
        });
        let db = Arc::new(GraphDatabase::from_parts(w.vocab, w.graphs));
        Engine::new(db, QueryOptions::default(), &ServerConfig::default())
    }

    fn graph_text(engine: &Engine) -> String {
        gss_graph::format::write_database(
            std::slice::from_ref(engine.db().get(gss_core::GraphId(0))),
            engine.db().vocab(),
        )
    }

    fn query_line(engine: &Engine, extra: &str) -> String {
        format!(
            "{{\"op\":\"query\",\"graph\":\"{}\"{extra}}}",
            gss_core::jsonio::escape(&graph_text(engine))
        )
    }

    #[test]
    fn parses_the_verbs() {
        let e = engine();
        assert!(matches!(
            e.parse_request("{\"op\":\"ping\"}"),
            Ok(Request::Ping { id: None })
        ));
        assert!(matches!(
            e.parse_request("{\"op\":\"stats\",\"id\":7}"),
            Ok(Request::Stats { id: Some(_) })
        ));
        assert!(matches!(
            e.parse_request("{\"op\":\"shutdown\"}"),
            Ok(Request::Shutdown { .. })
        ));
        let q = e.parse_request(&query_line(&e, ""));
        assert!(matches!(q, Ok(Request::Query(_))));
    }

    #[test]
    fn rejects_malformed_requests() {
        let e = engine();
        for (line, what) in [
            ("", "empty line"),
            ("not json", "not JSON"),
            ("{}", "missing op"),
            ("{\"op\":\"frobnicate\"}", "unknown op"),
            ("{\"op\":\"query\"}", "missing graph"),
            (
                "{\"op\":\"query\",\"graph\":\"t g\\nv 0\"}",
                "bad graph text",
            ),
            ("{\"op\":\"query\",\"graph\":\"\"}", "no graph in text"),
            ("{\"op\":\"ping\",\"id\":[1]}", "non-scalar id"),
        ] {
            assert!(e.parse_request(line).is_err(), "{what}");
        }
        let bad_opts = query_line(&e, ",\"options\":{\"bogus\":1}");
        assert!(e.parse_request(&bad_opts).is_err(), "unknown option");
        let bad_algo = query_line(&e, ",\"options\":{\"algo\":\"quantum\"}");
        assert!(e.parse_request(&bad_algo).is_err(), "unknown algo");
        let bad_deadline = query_line(&e, ",\"deadline_ms\":-5");
        assert!(e.parse_request(&bad_deadline).is_err(), "negative deadline");
    }

    #[test]
    fn per_request_options_override_the_base() {
        let e = engine();
        let plain = match e.parse_request(&query_line(&e, "")).unwrap() {
            Request::Query(q) => q,
            _ => unreachable!(),
        };
        assert!(!plain.options.prefilter);
        let tuned = match e
            .parse_request(&query_line(
                &e,
                ",\"options\":{\"prefilter\":true,\"approx\":true,\"algo\":\"sfs\"}",
            ))
            .unwrap()
        {
            Request::Query(q) => q,
            _ => unreachable!(),
        };
        assert!(tuned.options.prefilter);
        assert_eq!(tuned.options.solvers.ged, GedMode::Bipartite);
        assert_eq!(tuned.options.skyline_algorithm, Algorithm::Sfs);
        assert_ne!(
            plain.key.options, tuned.key.options,
            "different options, different cache slots"
        );
        assert_eq!(plain.key.query, tuned.key.query, "same graph");
    }

    #[test]
    fn evaluation_matches_direct_call_and_caches() {
        let e = engine();
        let job = match e.parse_request(&query_line(&e, "")).unwrap() {
            Request::Query(q) => q,
            _ => unreachable!(),
        };
        assert!(e.try_cache(&job).is_none(), "cold cache");
        let responses = e.evaluate_batch(std::slice::from_ref(&job));
        assert_eq!(responses.len(), 1);
        let v = Value::parse(responses[0].trim()).expect("response is JSON");
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(v.get("cached"), Some(&Value::Bool(false)));

        // The embedded result is byte-identical to a direct evaluation
        // (same pretty document, compacted by the same writer).
        let direct = gss_core::graph_similarity_skyline(
            e.db(),
            &job.graph,
            &QueryOptions {
                threads: 1,
                ..job.options.clone()
            },
        );
        let direct_compact = Value::parse(&gss_core::to_json(e.db(), &direct))
            .unwrap()
            .to_compact();
        let served = v.get("result").unwrap().to_compact();
        assert_eq!(served, direct_compact);

        // Second time around: a cache hit with the identical payload.
        let hit = e.try_cache(&job).expect("warm cache");
        let hv = Value::parse(hit.trim()).unwrap();
        assert_eq!(hv.get("cached"), Some(&Value::Bool(true)));
        assert_eq!(hv.get("result").unwrap().to_compact(), served);
    }

    #[test]
    fn batch_groups_by_options_and_preserves_order() {
        let e = engine();
        let mk = |extra: &str| match e.parse_request(&query_line(&e, extra)).unwrap() {
            Request::Query(q) => *q,
            _ => unreachable!(),
        };
        let jobs = vec![
            mk(",\"id\":\"a\""),
            mk(",\"id\":\"b\",\"options\":{\"prefilter\":true}"),
            mk(",\"id\":\"c\""),
        ];
        let responses = e.evaluate_batch(&jobs);
        assert_eq!(responses.len(), 3);
        for (resp, id) in responses.iter().zip(["a", "b", "c"]) {
            let v = Value::parse(resp.trim()).unwrap();
            assert_eq!(v.get("id").and_then(Value::as_str), Some(id));
            assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        }
        // The prefilter run carries pruning stats; the naive ones don't.
        let with_stats = Value::parse(responses[1].trim()).unwrap();
        assert!(with_stats.get("result").unwrap().get("pruning").is_some());
        let naive = Value::parse(responses[0].trim()).unwrap();
        assert!(naive.get("result").unwrap().get("pruning").is_none());
        // Engine totals absorbed both groups — jobs "a" and "c" are the
        // same query under the same options, so they share one scan.
        let totals = e.stats.totals();
        assert_eq!(totals.queries, 2);
        assert_eq!(totals.candidates, 2 * e.db().len());
    }

    #[test]
    fn identical_jobs_in_one_batch_evaluate_once() {
        let e = engine();
        let mk = |extra: &str| match e.parse_request(&query_line(&e, extra)).unwrap() {
            Request::Query(q) => *q,
            _ => unreachable!(),
        };
        // Three identical queries plus one distinct (prefilter) one.
        let jobs = vec![
            mk(",\"id\":1"),
            mk(",\"id\":2"),
            mk(",\"id\":3"),
            mk(",\"id\":4,\"options\":{\"prefilter\":true}"),
        ];
        let responses = e.evaluate_batch(&jobs);
        assert_eq!(responses.len(), 4);
        for (resp, id) in responses.iter().zip(1..) {
            let v = Value::parse(resp.trim()).unwrap();
            assert_eq!(v.get("id").and_then(Value::as_f64), Some(f64::from(id)));
            assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        }
        // The three duplicates share one result document…
        let result = |k: usize| {
            Value::parse(responses[k].trim())
                .unwrap()
                .get("result")
                .unwrap()
                .to_compact()
        };
        assert_eq!(result(0), result(1));
        assert_eq!(result(1), result(2));
        // …and only two scans ran (one per distinct key).
        let totals = e.stats.totals();
        assert_eq!(totals.queries, 2, "duplicates must not re-evaluate");
        assert_eq!(totals.candidates, 2 * e.db().len());
    }

    #[test]
    fn plan_option_parses_and_validates() {
        let e = engine();
        let tuned = match e
            .parse_request(&query_line(&e, ",\"options\":{\"plan\":\"prefilter\"}"))
            .unwrap()
        {
            Request::Query(q) => q,
            _ => unreachable!(),
        };
        assert_eq!(tuned.options.plan, Plan::Prefilter);
        let plain = match e.parse_request(&query_line(&e, "")).unwrap() {
            Request::Query(q) => q,
            _ => unreachable!(),
        };
        assert_eq!(plain.options.plan, Plan::Auto);
        assert_ne!(
            plain.key.options, tuned.key.options,
            "different plans, different cache slots"
        );
        let bad = query_line(&e, ",\"options\":{\"plan\":\"quantum\"}");
        assert!(e.parse_request(&bad).is_err(), "unknown plan");
        // This engine has no index, so the indexed plan must be refused at
        // parse time (not panic mid-evaluation).
        let indexed = query_line(&e, ",\"options\":{\"plan\":\"indexed\"}");
        let err = match e.parse_request(&indexed) {
            Err(err) => err,
            Ok(_) => panic!("indexed plan without an index must be rejected"),
        };
        assert!(err.message.contains("index"), "{}", err.message);
    }

    #[test]
    fn expired_deadline_cancels_mid_batch_and_counts() {
        let e = engine();
        // deadline_ms 0: already expired when evaluate_batch arms the
        // token, so the first wave checkpoint aborts the scan.
        let job = match e
            .parse_request(&query_line(&e, ",\"id\":\"late\",\"deadline_ms\":0"))
            .unwrap()
        {
            Request::Query(q) => q,
            _ => unreachable!(),
        };
        let responses = e.evaluate_batch(std::slice::from_ref(&job));
        let v = Value::parse(responses[0].trim()).expect("response is JSON");
        assert_eq!(v.get("ok"), Some(&Value::Bool(false)), "{v:?}");
        assert_eq!(
            v.get("error").and_then(Value::as_str),
            Some("deadline exceeded")
        );
        assert_eq!(
            e.stats.cancelled.load(std::sync::atomic::Ordering::Relaxed),
            1
        );
        // Nothing was cached and no engine totals were absorbed.
        assert!(e.try_cache(&job).is_none());
        assert_eq!(e.stats.totals().queries, 0);
    }

    #[test]
    fn envelopes_are_single_lines() {
        let id = Some(Value::String("x\ny".into()));
        for resp in [
            Engine::pong_response(&id),
            Engine::error_response(&id, "multi\nline\nmessage"),
            Engine::backpressure_response(&id, 50),
            Engine::expired_response(&None),
            Engine::shutdown_response(&None),
        ] {
            assert!(resp.ends_with('\n'));
            assert_eq!(resp.trim_end().matches('\n').count(), 0, "{resp:?}");
            assert!(Value::parse(resp.trim()).is_ok(), "{resp:?}");
        }
    }
}
