//! The TCP transport: front ends, the bounded admission queue, and the
//! micro-batching dispatcher.
//!
//! Two front ends share one back end. The default is the **reactor**
//! (`reactor_threads ≥ 1`, Linux): an epoll readiness loop that
//! multiplexes thousands of connections per thread — see the `reactor`
//! module. Setting `reactor_threads = 0` (or building on a
//! platform without epoll) selects the legacy **thread-per-connection**
//! front end, kept for byte-parity comparison and portability:
//!
//! ```text
//! reactor 0..R (or acceptor ──► connection threads)
//!                 │  parse · cache lookup · admission   [process_line]
//!                 ▼
//!          AdmissionQueue (bounded, Mutex + Condvar)
//!                 │  pop up to batch_max
//!                 ▼
//!          dispatcher ──► Engine::evaluate_batch ──► Responder
//! ```
//!
//! Both paths run the same `process_line` and serialize the same typed
//! [`gss_protocol::Response`] at the socket edge, so the wire bytes are
//! identical front end to front end.
//!
//! Admission control: a front end either answers from the cache, admits
//! the job (a `Responder` carries the completion back — a blocking
//! channel for connection threads, a completion queue for reactors), or —
//! when the queue is at capacity or the server is draining — immediately
//! writes the backpressure envelope with `retry_after_ms`. Nothing
//! admitted is ever dropped: graceful drain stops *admission* but the
//! dispatcher keeps popping until the queue is empty, so every admitted
//! job receives a response (possibly `deadline exceeded`) before the
//! dispatcher exits and sets `Shared::dispatcher_done` (the reactors'
//! signal that no more completions are owed).
//!
//! Deadlines are enforced twice: requests still queued past their
//! deadline are dropped here (`deadline_expired`), and requests whose
//! deadline passes *during* evaluation are aborted mid-scan by the
//! engine's per-query [`gss_core::CancelToken`] (`cancelled`) — see
//! [`Engine::evaluate_batch`].

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use gss_core::jsonio::Value;
use gss_core::{GraphDatabase, QueryOptions};
use gss_protocol::Response;
use gss_store::fault::points;
use gss_store::{FaultAction, FaultPlan, GraphStore, MutationBatch, StoreConfig};

use crate::engine::{Engine, QueryRequest, Request};
use crate::stats::ServerStats;

/// Configuration of one [`serve`] instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address. Port 0 picks a free port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads the dispatcher spreads each micro-batch across.
    pub workers: usize,
    /// Event-loop threads multiplexing connections (the default front
    /// end; 1 is enough for thousands of idle connections). `0` selects
    /// the legacy thread-per-connection front end, kept for byte-parity
    /// comparison; platforms without epoll always use it.
    pub reactor_threads: usize,
    /// Static candidate shards for evaluation. `> 1` rewrites the base
    /// options to [`gss_core::Plan::Sharded`] with this shard count so a
    /// single big query fans its verification across `workers`;
    /// per-request `"plan"` overrides still win. `0`/`1` leave the base
    /// plan untouched.
    pub shards: usize,
    /// Admission queue capacity; a full queue rejects with backpressure.
    pub queue_capacity: usize,
    /// Total result-cache entries (0 disables caching).
    pub cache_capacity: usize,
    /// Cache shard count (lock granularity).
    pub cache_shards: usize,
    /// Most queries one micro-batch evaluates together.
    pub batch_max: usize,
    /// Deadline applied to requests that do not carry `deadline_ms`.
    pub default_deadline_ms: u64,
    /// The `retry_after_ms` hint sent with backpressure rejections.
    pub retry_after_ms: u64,
    /// Deterministic fault plan for connection-level chaos testing
    /// (injection point `conn.write`). Empty in production; see
    /// [`gss_store::FaultPlan`].
    pub faults: Arc<FaultPlan>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            reactor_threads: 1,
            shards: 1,
            queue_capacity: 64,
            cache_capacity: 256,
            cache_shards: 8,
            batch_max: 8,
            default_deadline_ms: 30_000,
            retry_after_ms: 50,
            faults: Arc::new(FaultPlan::none()),
        }
    }
}

/// How a completed evaluation travels back to its connection. Created at
/// admission time by the front end that owns the connection; consumed
/// exactly once by the dispatcher. Serialization to wire bytes happens
/// here — the connection edge — so the cache and engine stay typed.
pub(crate) enum Responder {
    /// Thread-per-connection: the blocked connection thread waits on the
    /// paired receiver.
    Channel(mpsc::Sender<String>),
    /// Reactor: the response joins the owning reactor's completion queue
    /// under the connection's slab token and request sequence number.
    #[cfg(target_os = "linux")]
    Reactor {
        reactor: Arc<crate::reactor::ReactorShared>,
        token: usize,
        seq: u64,
    },
}

impl Responder {
    pub(crate) fn send(self, response: Response) {
        let line = response.to_line();
        match self {
            // The receiver hanging up just means the client left early.
            Responder::Channel(tx) => drop(tx.send(line)),
            #[cfg(target_os = "linux")]
            Responder::Reactor {
                reactor,
                token,
                seq,
            } => reactor.complete(token, seq, line),
        }
    }
}

/// One admitted query waiting for the dispatcher.
pub(crate) struct Job {
    pub(crate) request: QueryRequest,
    pub(crate) enqueued: Instant,
    pub(crate) respond: Responder,
}

#[derive(Default)]
struct QueueState {
    jobs: std::collections::VecDeque<Job>,
    draining: bool,
}

/// The bounded admission queue.
pub(crate) struct AdmissionQueue {
    state: Mutex<QueueState>,
    cond: Condvar,
    capacity: usize,
}

impl AdmissionQueue {
    fn new(capacity: usize) -> AdmissionQueue {
        AdmissionQueue {
            state: Mutex::new(QueueState::default()),
            cond: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Admits a job unless the queue is full or draining (the job is
    /// boxed so rejection hands it back without a large copy).
    fn push(&self, job: Box<Job>) -> Result<(), Box<Job>> {
        // Poison recovery: a panicked worker must not take the whole
        // queue down with it; the state it guards stays structurally
        // valid (push_back / drain are not interruptible mid-update).
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if state.draining || state.jobs.len() >= self.capacity {
            return Err(job);
        }
        state.jobs.push_back(*job);
        self.cond.notify_one();
        Ok(())
    }

    /// Blocks for the next batch (up to `max` jobs); `None` once the queue
    /// is draining *and* empty.
    fn pop_batch(&self, max: usize) -> Option<Vec<Job>> {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if !state.jobs.is_empty() {
                let take = max.max(1).min(state.jobs.len());
                return Some(state.jobs.drain(..take).collect());
            }
            if state.draining {
                return None;
            }
            state = self.cond.wait(state).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Stops admission and wakes the dispatcher so it can drain and exit.
    fn drain(&self) {
        self.state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .draining = true;
        self.cond.notify_all();
    }
}

/// State shared by every front-end thread and the dispatcher.
pub(crate) struct Shared {
    pub(crate) engine: Engine,
    pub(crate) queue: AdmissionQueue,
    pub(crate) config: ServerConfig,
    /// Set once the dispatcher has exited: every admitted job has been
    /// answered, so reactors owe no more completions and may close their
    /// connections as soon as their buffers are flushed.
    pub(crate) dispatcher_done: AtomicBool,
}

impl Shared {
    pub(crate) fn begin_drain(&self) {
        self.engine.stats.draining.store(true, Ordering::Relaxed);
        self.queue.drain();
    }

    pub(crate) fn draining(&self) -> bool {
        self.engine.stats.draining.load(Ordering::Relaxed)
    }
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`ServerHandle::shutdown`] (or send the `shutdown` verb) and then
/// [`ServerHandle::join`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    /// Present only with the thread-per-connection front end.
    acceptor: Option<std::thread::JoinHandle<()>>,
    /// Present only with the reactor front end.
    reactors: Vec<std::thread::JoinHandle<()>>,
    dispatcher: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared observability counters.
    pub fn stats(&self) -> &ServerStats {
        &self.shared.engine.stats
    }

    /// The current `stats` verb payload (a one-line JSON object).
    pub fn stats_json(&self) -> String {
        self.shared
            .engine
            .stats
            .to_value(self.shared.engine.cache.len())
            .to_compact()
    }

    /// Begins graceful drain, exactly like receiving the `shutdown` verb.
    pub fn shutdown(&self) {
        self.shared.begin_drain();
    }

    /// Waits for the drain to complete (front end and dispatcher exited,
    /// every admitted job answered) and returns the final stats payload.
    pub fn join(self) -> String {
        if let Some(acceptor) = self.acceptor {
            let _ = acceptor.join();
        }
        let _ = self.dispatcher.join();
        for reactor in self.reactors {
            let _ = reactor.join();
        }
        self.shared
            .engine
            .stats
            .to_value(self.shared.engine.cache.len())
            .to_compact()
    }
}

/// Starts serving `db` (with `base` as the default query options) and
/// returns once the listener is bound. The database is wrapped in an
/// index-less [`GraphStore`], so the mutation verbs work out of the box;
/// use [`serve_store`] to serve a store with a maintained pivot index or
/// a tuned staleness budget.
pub fn serve(
    db: Arc<GraphDatabase>,
    base: QueryOptions,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    serve_store(
        Arc::new(GraphStore::new(db, StoreConfig::default())),
        base,
        config,
    )
}

/// Starts serving a live [`GraphStore`] (with `base` as the default query
/// options) and returns once the listener is bound.
pub fn serve_store(
    store: Arc<GraphStore>,
    base: QueryOptions,
    config: ServerConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let shared = Arc::new(Shared {
        engine: Engine::with_store(store, base, &config),
        queue: AdmissionQueue::new(config.queue_capacity),
        config,
        dispatcher_done: AtomicBool::new(false),
    });

    let mut acceptor = None;
    #[allow(unused_mut)] // mutated only on Linux
    let mut reactors = Vec::new();
    if cfg!(target_os = "linux") && shared.config.reactor_threads > 0 {
        #[cfg(target_os = "linux")]
        {
            let (_handles, joins) =
                crate::reactor::spawn_reactors(&shared, listener, shared.config.reactor_threads)?;
            reactors = joins;
        }
    } else {
        let shared = Arc::clone(&shared);
        acceptor = Some(std::thread::spawn(move || accept_loop(listener, shared)));
    }
    let dispatcher = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || dispatch_loop(shared))
    };

    Ok(ServerHandle {
        addr,
        shared,
        acceptor,
        reactors,
        dispatcher,
    })
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    while !shared.draining() {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(&shared);
                // Connection threads are detached: they exit on client
                // hangup or within one read-timeout of drain starting,
                // and every response they still owe is owed by the
                // dispatcher, which join() waits for.
                std::thread::spawn(move || connection_loop(stream, shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn dispatch_loop(shared: Arc<Shared>) {
    while let Some(batch) = shared.queue.pop_batch(shared.config.batch_max) {
        let now = Instant::now();
        let (live, expired): (Vec<Job>, Vec<Job>) = batch
            .into_iter()
            .partition(|job| job.request.deadline > now);
        for job in expired {
            ServerStats::bump(&shared.engine.stats.deadline_expired);
            let Job {
                request, respond, ..
            } = job;
            respond.send(Response::Expired { id: request.id });
        }
        if live.is_empty() {
            continue;
        }
        ServerStats::bump(&shared.engine.stats.batches);
        shared
            .engine
            .stats
            .batched_queries
            .fetch_add(live.len() as u64, Ordering::Relaxed);
        let mut requests = Vec::with_capacity(live.len());
        let mut responders = Vec::with_capacity(live.len());
        for job in live {
            requests.push(job.request);
            responders.push((job.enqueued, job.respond));
        }
        let responses = shared.engine.evaluate_batch(&requests);
        for ((enqueued, respond), response) in responders.into_iter().zip(responses) {
            shared
                .engine
                .stats
                .record_latency_us(enqueued.elapsed().as_micros() as u64);
            respond.send(response);
        }
    }
    // Every admitted job is answered; reactors poll this flag as their
    // license to finish draining.
    shared.dispatcher_done.store(true, Ordering::Relaxed);
}

/// The outcome of processing one request line.
pub(crate) enum Outcome {
    /// Answered inline (errors, ping/stats/shutdown, cache hits,
    /// backpressure): the front end writes the response itself.
    Immediate(Response),
    /// Admitted to the queue; the [`Responder`] made by the front end
    /// will deliver the response.
    Enqueued,
}

/// Parses and processes one request line — the single protocol path both
/// front ends share, so stats accounting and response bytes cannot
/// diverge between them. `responder` is invoked only if the request is
/// actually admitted to the queue.
pub(crate) fn process_line(
    line: &str,
    shared: &Arc<Shared>,
    responder: impl FnOnce() -> Responder,
) -> Outcome {
    let engine = &shared.engine;
    match engine.parse_request(line) {
        Err(e) => Outcome::Immediate(Response::Error {
            id: e.id,
            message: e.message,
        }),
        Ok(Request::Ping { id }) => Outcome::Immediate(Response::Pong { id }),
        Ok(Request::Stats { id }) => Outcome::Immediate(engine.stats_response(&id)),
        Ok(Request::Shutdown { id }) => {
            shared.begin_drain();
            Outcome::Immediate(Response::Draining { id })
        }
        Ok(Request::Insert {
            id,
            graphs,
            mutation_id,
        }) => Outcome::Immediate(mutate(
            shared,
            id,
            MutationBatch::default().insert(&graphs),
            mutation_id,
        )),
        Ok(Request::Remove {
            id,
            names,
            mutation_id,
        }) => {
            let batch = MutationBatch {
                removes: names,
                ..MutationBatch::default()
            };
            Outcome::Immediate(mutate(shared, id, batch, mutation_id))
        }
        Ok(Request::Update {
            id,
            name,
            graph,
            mutation_id,
        }) => Outcome::Immediate(mutate(
            shared,
            id,
            MutationBatch::default().update(&name, &graph),
            mutation_id,
        )),
        Ok(Request::Query(request)) => {
            ServerStats::bump(&engine.stats.queries);
            let started = Instant::now();
            if let Some(hit) = engine.try_cache(&request) {
                ServerStats::bump(&engine.stats.cache_hits);
                engine
                    .stats
                    .record_latency_us(started.elapsed().as_micros() as u64);
                return Outcome::Immediate(hit);
            }
            ServerStats::bump(&engine.stats.cache_misses);
            let job = Box::new(Job {
                request: *request,
                enqueued: started,
                respond: responder(),
            });
            match shared.queue.push(job) {
                Err(rejected) => {
                    ServerStats::bump(&engine.stats.rejected);
                    Outcome::Immediate(Response::Backpressure {
                        id: rejected.request.id,
                        retry_after_ms: shared.config.retry_after_ms,
                    })
                }
                Ok(()) => Outcome::Enqueued,
            }
        }
    }
}

/// Applies one mutation batch and builds its response envelope. Runs
/// inline on the front-end thread: batches validate before touching
/// anything, writers serialize on the store's writer lock, and readers
/// (queries) never block on it. A draining server refuses mutations the
/// same way it refuses new queries.
fn mutate(
    shared: &Arc<Shared>,
    id: Option<Value>,
    batch: MutationBatch,
    mutation_id: Option<String>,
) -> Response {
    if shared.draining() {
        return Response::Error {
            id,
            message: "server is draining".to_owned(),
        };
    }
    match shared
        .engine
        .apply_mutation_logged(&batch, mutation_id.as_deref())
    {
        Ok(receipt) => Response::Mutated {
            id,
            epoch: receipt.epoch,
            inserted: receipt.inserted as u64,
            removed: receipt.removed as u64,
            updated: receipt.updated as u64,
            replayed: receipt.replayed,
        },
        Err(e) => Response::Error {
            id,
            message: e.to_string(),
        },
    }
}

fn connection_loop(stream: TcpStream, shared: Arc<Shared>) {
    // The read timeout doubles as the drain poll interval: an idle
    // connection notices drain within 100 ms.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {
                // A timeout can split one line across reads; only process
                // complete lines.
                if !line.ends_with('\n') {
                    continue;
                }
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    let response = handle_line(trimmed, &shared);
                    match shared.config.faults.fire(points::CONN_WRITE) {
                        // A reset (or crash) drops the connection before
                        // the response bytes leave — the client observes
                        // a hung-up socket and must retry.
                        Some(FaultAction::Reset) | Some(FaultAction::Crash) => {
                            let _ = writer.shutdown(std::net::Shutdown::Both);
                            return;
                        }
                        // Transient kinds (interrupted, short write,
                        // would-block) are exactly what the blocking
                        // `write_all` below absorbs by retrying; skipping
                        // the write instead would corrupt the line
                        // protocol, so fall through.
                        _ => {}
                    }
                    if writer.write_all(response.as_bytes()).is_err() || writer.flush().is_err() {
                        return;
                    }
                    ServerStats::bump(&shared.engine.stats.served);
                }
                line.clear();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.draining() {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn handle_line(line: &str, shared: &Arc<Shared>) -> String {
    let (tx, rx) = mpsc::channel();
    match process_line(line, shared, move || Responder::Channel(tx)) {
        Outcome::Immediate(response) => response.to_line(),
        Outcome::Enqueued => rx.recv().unwrap_or_else(|_| {
            Response::Error {
                id: None,
                message: "internal: dispatcher gone".to_owned(),
            }
            .to_line()
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_core::jsonio::Value;
    use std::time::Duration;

    fn job(n: u64) -> Box<Job> {
        let (tx, _rx) = mpsc::channel();
        Box::new(Job {
            request: QueryRequest {
                id: Some(Value::Number(n as f64)),
                db: Arc::new(GraphDatabase::new()),
                graph: gss_graph::Graph::new("q"),
                options: QueryOptions::default(),
                key: gss_core::QueryKey {
                    database: 0,
                    query: n,
                    options: 0,
                },
                deadline: Instant::now() + Duration::from_secs(5),
            },
            enqueued: Instant::now(),
            respond: Responder::Channel(tx),
        })
    }

    #[test]
    fn queue_rejects_when_full_and_when_draining() {
        let q = AdmissionQueue::new(2);
        assert!(q.push(job(1)).is_ok());
        assert!(q.push(job(2)).is_ok());
        assert!(q.push(job(3)).is_err(), "capacity 2 rejects the third");
        let batch = q.pop_batch(10).expect("two queued");
        assert_eq!(batch.len(), 2);
        assert!(q.push(job(4)).is_ok(), "space again after pop");
        q.drain();
        assert!(q.push(job(5)).is_err(), "draining rejects admission");
        assert_eq!(
            q.pop_batch(10).expect("drain pops the backlog").len(),
            1,
            "jobs admitted before drain still come out"
        );
        assert!(q.pop_batch(10).is_none(), "empty + draining ends the loop");
    }

    #[test]
    fn pop_batch_respects_batch_max() {
        let q = AdmissionQueue::new(16);
        for n in 0..5 {
            assert!(q.push(job(n)).is_ok());
        }
        assert_eq!(q.pop_batch(3).unwrap().len(), 3);
        assert_eq!(q.pop_batch(3).unwrap().len(), 2);
    }

    #[test]
    fn pop_batch_blocks_until_work_arrives() {
        let q = Arc::new(AdmissionQueue::new(4));
        let qc = Arc::clone(&q);
        let t = std::thread::spawn(move || qc.pop_batch(4).map(|b| b.len()));
        std::thread::sleep(Duration::from_millis(30));
        assert!(q.push(job(1)).is_ok());
        assert_eq!(t.join().unwrap(), Some(1));
    }
}
