//! Server-wide observability counters and the latency reservoir.
//!
//! Everything the protocol's `stats` verb reports lives here: request
//! counters (lock-free atomics), the aggregated engine totals
//! ([`BatchStats`] — verified/pruned/evaluated candidate counts summed
//! over every batch the server ran), and a bounded reservoir of
//! end-to-end query latencies from which p50/p99 are computed on demand.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use gss_core::jsonio::Value;
use gss_core::BatchStats;

/// How many latency samples the reservoir keeps. Once full, new samples
/// overwrite the oldest slots round-robin, so percentiles track a recent
/// window instead of the full history.
const RESERVOIR_CAP: usize = 65_536;

/// Nearest-rank percentile over an ascending-sorted slice of microsecond
/// samples (0 for an empty slice). The one percentile definition shared
/// by the stats reservoir, the `gss client --bench` report and the S8
/// serving benchmark.
pub fn percentile_us(sorted: &[u64], p: usize) -> f64 {
    if sorted.is_empty() {
        0.0
    } else {
        sorted[(sorted.len() - 1) * p / 100] as f64
    }
}

/// Percentile snapshot of the latency reservoir.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct LatencySnapshot {
    /// Samples currently in the reservoir.
    pub count: usize,
    /// Median end-to-end latency, µs.
    pub p50_us: f64,
    /// 99th-percentile latency, µs.
    pub p99_us: f64,
    /// Maximum latency in the window, µs.
    pub max_us: f64,
}

#[derive(Default)]
struct Reservoir {
    samples: Vec<u64>,
    /// Total samples ever recorded (drives round-robin overwrite).
    recorded: u64,
}

/// Counters shared by every connection thread and the dispatcher.
#[derive(Default)]
pub struct ServerStats {
    /// Responses written, all verbs (including errors and rejections).
    pub served: AtomicU64,
    /// `query` requests received.
    pub queries: AtomicU64,
    /// Queries answered from the result cache.
    pub cache_hits: AtomicU64,
    /// Queries that missed the cache (admitted or rejected).
    pub cache_misses: AtomicU64,
    /// Queries rejected because the admission queue was full or draining.
    pub rejected: AtomicU64,
    /// Admitted queries dropped because their deadline passed in-queue
    /// (evaluation never started).
    pub deadline_expired: AtomicU64,
    /// Admitted queries aborted **mid-evaluation**: their deadline fired a
    /// [`gss_core::CancelToken`] checkpoint inside the scan. Distinct from
    /// [`ServerStats::deadline_expired`], which only counts in-queue drops.
    pub cancelled: AtomicU64,
    /// Micro-batches the dispatcher executed.
    pub batches: AtomicU64,
    /// Queries evaluated inside those batches.
    pub batched_queries: AtomicU64,
    /// Mutation batches applied to the live store (each bumped the
    /// database epoch).
    pub mutated: AtomicU64,
    /// True once graceful drain began (no new work admitted).
    pub draining: AtomicBool,
    totals: Mutex<BatchStats>,
    latencies: Mutex<Reservoir>,
}

impl ServerStats {
    /// Bumps a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds one end-to-end query latency sample.
    pub fn record_latency_us(&self, us: u64) {
        let mut r = self.latencies.lock().expect("latency reservoir poisoned");
        if r.samples.len() < RESERVOIR_CAP {
            r.samples.push(us);
        } else {
            let slot = (r.recorded % RESERVOIR_CAP as u64) as usize;
            r.samples[slot] = us;
        }
        r.recorded += 1;
    }

    /// Merges one batch's aggregated engine counters into the totals.
    pub fn absorb_batch(&self, batch: &BatchStats) {
        self.totals
            .lock()
            .expect("batch totals poisoned")
            .merge(batch);
    }

    /// The engine totals so far.
    pub fn totals(&self) -> BatchStats {
        *self.totals.lock().expect("batch totals poisoned")
    }

    /// Cache hit rate over all queries seen, in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        let hits = self.cache_hits.load(Ordering::Relaxed) as f64;
        let misses = self.cache_misses.load(Ordering::Relaxed) as f64;
        if hits + misses == 0.0 {
            0.0
        } else {
            hits / (hits + misses)
        }
    }

    /// Computes p50/p99/max over the current latency window.
    pub fn latency_snapshot(&self) -> LatencySnapshot {
        let sorted = {
            let r = self.latencies.lock().expect("latency reservoir poisoned");
            let mut s = r.samples.clone();
            s.sort_unstable();
            s
        };
        if sorted.is_empty() {
            return LatencySnapshot::default();
        }
        LatencySnapshot {
            count: sorted.len(),
            p50_us: percentile_us(&sorted, 50),
            p99_us: percentile_us(&sorted, 99),
            max_us: *sorted.last().expect("nonempty") as f64,
        }
    }

    /// The `stats` verb payload as a JSON object value.
    pub fn to_value(&self, cache_entries: usize) -> Value {
        let load = |c: &AtomicU64| Value::Number(c.load(Ordering::Relaxed) as f64);
        let totals = self.totals();
        let lat = self.latency_snapshot();
        Value::Object(vec![
            ("served".into(), load(&self.served)),
            ("queries".into(), load(&self.queries)),
            ("cache_hits".into(), load(&self.cache_hits)),
            ("cache_misses".into(), load(&self.cache_misses)),
            (
                "cache_hit_rate".into(),
                Value::Number((self.cache_hit_rate() * 1e4).round() / 1e4),
            ),
            ("cache_entries".into(), Value::Number(cache_entries as f64)),
            ("rejected".into(), load(&self.rejected)),
            ("deadline_expired".into(), load(&self.deadline_expired)),
            ("cancelled".into(), load(&self.cancelled)),
            ("batches".into(), load(&self.batches)),
            ("batched_queries".into(), load(&self.batched_queries)),
            ("mutated".into(), load(&self.mutated)),
            (
                "draining".into(),
                Value::Bool(self.draining.load(Ordering::Relaxed)),
            ),
            (
                "latency".into(),
                Value::Object(vec![
                    ("count".into(), Value::Number(lat.count as f64)),
                    ("p50_us".into(), Value::Number(lat.p50_us)),
                    ("p99_us".into(), Value::Number(lat.p99_us)),
                    ("max_us".into(), Value::Number(lat.max_us)),
                ]),
            ),
            (
                "totals".into(),
                Value::parse(&gss_core::batch_stats_to_json(&totals))
                    .expect("batch stats serialize to valid JSON"),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_percentiles() {
        let stats = ServerStats::default();
        assert_eq!(stats.latency_snapshot(), LatencySnapshot::default());
        for us in 1..=100u64 {
            stats.record_latency_us(us);
        }
        let lat = stats.latency_snapshot();
        assert_eq!(lat.count, 100);
        assert!((lat.p50_us - 50.0).abs() <= 1.0, "{lat:?}");
        assert!((lat.p99_us - 99.0).abs() <= 1.0, "{lat:?}");
        assert_eq!(lat.max_us, 100.0);
    }

    #[test]
    fn hit_rate() {
        let stats = ServerStats::default();
        assert_eq!(stats.cache_hit_rate(), 0.0);
        stats.cache_hits.store(3, Ordering::Relaxed);
        stats.cache_misses.store(1, Ordering::Relaxed);
        assert!((stats.cache_hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn stats_value_is_wellformed() {
        let stats = ServerStats::default();
        stats.record_latency_us(10);
        ServerStats::bump(&stats.queries);
        let batch = BatchStats {
            queries: 1,
            candidates: 10,
            verified: 4,
            pruned: 6,
            ..BatchStats::default()
        };
        stats.absorb_batch(&batch);
        let v = stats.to_value(2);
        let compact = v.to_compact();
        let parsed = Value::parse(&compact).expect("round-trips");
        assert_eq!(parsed.get("queries").and_then(Value::as_f64), Some(1.0));
        assert_eq!(
            parsed.get("cache_entries").and_then(Value::as_f64),
            Some(2.0)
        );
        assert_eq!(
            parsed
                .get("totals")
                .and_then(|t| t.get("pruned"))
                .and_then(Value::as_f64),
            Some(6.0)
        );
        assert_eq!(
            parsed
                .get("latency")
                .and_then(|l| l.get("count"))
                .and_then(Value::as_f64),
            Some(1.0)
        );
    }

    #[test]
    fn reservoir_wraps_at_capacity() {
        let stats = ServerStats::default();
        for i in 0..(RESERVOIR_CAP as u64 + 10) {
            stats.record_latency_us(i);
        }
        let lat = stats.latency_snapshot();
        assert_eq!(lat.count, RESERVOIR_CAP);
        // The 10 oldest samples (0..10) were overwritten by the newest.
        assert_eq!(lat.max_us, (RESERVOIR_CAP + 9) as f64);
    }
}
