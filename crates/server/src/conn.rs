//! Per-connection buffering for the event-driven front end: newline
//! framing over a byte stream plus **in-order response slots**.
//!
//! The protocol answers requests in order per connection, which the
//! thread-per-connection path gets for free by blocking. Under the
//! reactor a connection can have several queries in flight with the
//! dispatcher while later pings were answered instantly, so each parsed
//! request takes a sequence-numbered slot here and only the *completed
//! in-order prefix* ever reaches the write buffer.
//!
//! Everything in this module is transport-free (plain buffers, no
//! sockets), so the framing and ordering invariants are unit-testable
//! without a reactor.

use std::collections::VecDeque;

/// Buffered state of one reactor connection.
#[derive(Default)]
pub struct Conn {
    /// Bytes received but not yet forming a complete line.
    read_buf: Vec<u8>,
    /// Serialized responses waiting for the socket.
    write_buf: Vec<u8>,
    /// Prefix of `write_buf` already written to the socket.
    write_pos: usize,
    /// Sequence number the next request will take.
    next_seq: u64,
    /// Outstanding responses in request order; `None` = still evaluating.
    pending: VecDeque<(u64, Option<String>)>,
}

impl Conn {
    /// A fresh connection with empty buffers.
    pub fn new() -> Conn {
        Conn::default()
    }

    /// Appends freshly read bytes and returns every *complete* line they
    /// finish (without the trailing newline). Partial trailing data stays
    /// buffered for the next read.
    pub fn push_bytes(&mut self, data: &[u8]) -> Vec<String> {
        self.read_buf.extend_from_slice(data);
        let mut lines = Vec::new();
        while let Some(pos) = self.read_buf.iter().position(|&b| b == b'\n') {
            let rest = self.read_buf.split_off(pos + 1);
            let mut line = std::mem::replace(&mut self.read_buf, rest);
            line.pop(); // the newline
                        // Invalid UTF-8 still yields a line; the protocol parser will
                        // answer it with an error envelope like any other bad input.
            lines.push(String::from_utf8_lossy(&line).into_owned());
        }
        lines
    }

    /// Allocates the response slot for the next request; responses are
    /// released strictly in allocation order.
    pub fn begin_request(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pending.push_back((seq, None));
        seq
    }

    /// Fills the slot for `seq` with its serialized response. Unknown
    /// sequence numbers are ignored (a slot can only be unknown if the
    /// response was already released, which cannot happen for `None`
    /// slots — this keeps a late duplicate harmless).
    pub fn complete(&mut self, seq: u64, line: String) {
        if let Some(slot) = self.pending.iter_mut().find(|(s, _)| *s == seq) {
            if slot.1.is_none() {
                slot.1 = Some(line);
            }
        }
    }

    /// Moves the completed in-order prefix of the pending slots into the
    /// write buffer; returns how many responses were released.
    pub fn flush_ready(&mut self) -> usize {
        let mut released = 0;
        while matches!(self.pending.front(), Some((_, Some(_)))) {
            if let Some((_, Some(line))) = self.pending.pop_front() {
                self.write_buf.extend_from_slice(line.as_bytes());
                released += 1;
            }
        }
        if self.write_pos > 0 && self.write_pos == self.write_buf.len() {
            self.write_buf.clear();
            self.write_pos = 0;
        }
        released
    }

    /// Requests admitted but not yet released to the write buffer.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// The bytes still owed to the socket.
    pub fn unwritten(&self) -> &[u8] {
        self.write_buf.get(self.write_pos..).unwrap_or(&[])
    }

    /// Records `n` bytes as written to the socket.
    pub fn advance_written(&mut self, n: usize) {
        self.write_pos = (self.write_pos + n).min(self.write_buf.len());
        if self.write_pos == self.write_buf.len() {
            self.write_buf.clear();
            self.write_pos = 0;
        }
    }

    /// True when nothing is owed: no outstanding slots, no unwritten
    /// bytes. Idle connections can be closed at drain.
    pub fn idle(&self) -> bool {
        self.pending.is_empty() && self.unwritten().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framing_reassembles_split_lines() {
        let mut c = Conn::new();
        assert!(c.push_bytes(b"{\"op\":\"pi").is_empty(), "no newline yet");
        assert_eq!(c.push_bytes(b"ng\"}\n"), vec!["{\"op\":\"ping\"}"]);
        assert_eq!(
            c.push_bytes(b"a\nb\nc"),
            vec!["a".to_owned(), "b".to_owned()]
        );
        assert_eq!(c.push_bytes(b"\n"), vec!["c"]);
    }

    #[test]
    fn responses_release_in_request_order() {
        let mut c = Conn::new();
        let s0 = c.begin_request();
        let s1 = c.begin_request();
        let s2 = c.begin_request();
        // The second response lands first: nothing can be released while
        // the first slot is open.
        c.complete(s1, "one\n".into());
        assert_eq!(c.flush_ready(), 0);
        assert!(c.unwritten().is_empty());
        c.complete(s0, "zero\n".into());
        assert_eq!(c.flush_ready(), 2, "prefix zero+one releases together");
        assert_eq!(c.unwritten(), b"zero\none\n");
        c.complete(s2, "two\n".into());
        assert_eq!(c.flush_ready(), 1);
        assert_eq!(c.unwritten(), b"zero\none\ntwo\n");
        assert_eq!(c.outstanding(), 0);
    }

    #[test]
    fn partial_writes_advance_and_reset() {
        let mut c = Conn::new();
        let s = c.begin_request();
        c.complete(s, "abcdef\n".into());
        c.flush_ready();
        c.advance_written(3);
        assert_eq!(c.unwritten(), b"def\n");
        assert!(!c.idle());
        c.advance_written(4);
        assert!(c.unwritten().is_empty());
        assert!(c.idle());
    }

    #[test]
    fn duplicate_and_unknown_completions_are_harmless() {
        let mut c = Conn::new();
        let s = c.begin_request();
        c.complete(s, "first\n".into());
        c.complete(s, "second\n".into());
        c.complete(999, "ghost\n".into());
        assert_eq!(c.flush_ready(), 1);
        assert_eq!(c.unwritten(), b"first\n");
    }
}
