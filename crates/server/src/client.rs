//! A minimal blocking protocol client.
//!
//! One [`Client`] wraps one TCP connection and exchanges one-line JSON
//! requests/responses (see the crate docs for the wire format). Used by
//! the `gss client` CLI subcommand, the loopback tests and the S8
//! serving benchmark — anything that wants to talk to a `gss-server`
//! without hand-rolling framing.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use gss_core::jsonio::{escape, Value};

/// A blocking connection to a `gss-server`.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a server address.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            writer: stream.try_clone()?,
            reader: BufReader::new(stream),
        })
    }

    /// Sends one raw request line (newline appended) and returns the raw
    /// response line (trailing newline trimmed).
    pub fn send_line(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(response.trim_end().to_owned())
    }

    /// Sends one request line and parses the response envelope.
    pub fn send(&mut self, line: &str) -> std::io::Result<Value> {
        let response = self.send_line(line)?;
        Value::parse(&response).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad response {response:?}: {e}"),
            )
        })
    }

    /// Issues a `query` for a graph already in `t/v/e` text form.
    /// `options_json` is spliced in verbatim when non-empty (e.g.
    /// `{"prefilter":true}`).
    pub fn query_text(&mut self, graph_text: &str, options_json: &str) -> std::io::Result<Value> {
        let mut line = format!("{{\"op\":\"query\",\"graph\":\"{}\"", escape(graph_text));
        if !options_json.is_empty() {
            line.push_str(",\"options\":");
            line.push_str(options_json);
        }
        line.push('}');
        self.send(&line)
    }

    /// Issues a `ping`.
    pub fn ping(&mut self) -> std::io::Result<Value> {
        self.send("{\"op\":\"ping\"}")
    }

    /// Fetches the server counters (the `"stats"` object of the
    /// response).
    pub fn stats(&mut self) -> std::io::Result<Value> {
        let v = self.send("{\"op\":\"stats\"}")?;
        v.get("stats").cloned().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "response without stats")
        })
    }

    /// Requests graceful drain.
    pub fn shutdown(&mut self) -> std::io::Result<Value> {
        self.send("{\"op\":\"shutdown\"}")
    }
}
