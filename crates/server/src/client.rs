//! A minimal blocking protocol client speaking typed
//! [`gss_protocol`] envelopes.
//!
//! One [`Client`] wraps one TCP connection and exchanges one-line JSON
//! requests/responses (see the [`gss_protocol`] crate docs for the wire
//! format). Per-query options travel with the client: configure them
//! once on the [`ClientBuilder`] and every [`Client::query`] carries
//! them, so call sites deal in graphs and typed [`Response`]s instead of
//! hand-assembled JSON fragments:
//!
//! ```no_run
//! use gss_server::Client;
//!
//! let mut client = Client::builder()
//!     .deadline_ms(2_000)
//!     .plan(gss_core::Plan::Prefilter)
//!     .connect("127.0.0.1:7878")?;
//! let response = client.query("t q\nv 0 C\n")?;
//! assert!(response.is_ok());
//! # std::io::Result::Ok(())
//! ```
//!
//! Used by the `gss client` CLI subcommand, the loopback tests and the
//! serving benchmarks — anything that wants to talk to a `gss-server`
//! without hand-rolling framing.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use gss_core::jsonio::Value;
use gss_core::Plan;
use gss_protocol::{QueryEnvelope, QueryOverrides, Request, Response};
use gss_skyline::Algorithm;

/// Configures the per-query options a [`Client`] attaches to every
/// [`Client::query`]. Unset knobs are simply omitted from the wire
/// envelope, so the server's base options apply.
#[derive(Clone, Debug, Default)]
pub struct ClientBuilder {
    overrides: QueryOverrides,
    deadline_ms: Option<u64>,
}

impl ClientBuilder {
    /// Overrides the server's prefilter setting for this client's queries.
    pub fn prefilter(mut self, on: bool) -> ClientBuilder {
        self.overrides.prefilter = Some(on);
        self
    }

    /// Requests approximate solvers (bipartite GED + greedy MCS).
    pub fn approx(mut self, on: bool) -> ClientBuilder {
        self.overrides.approx = Some(on);
        self
    }

    /// Selects the server-side skyline algorithm.
    pub fn algo(mut self, algo: Algorithm) -> ClientBuilder {
        self.overrides.algo = Some(algo);
        self
    }

    /// Selects the evaluation plan.
    pub fn plan(mut self, plan: Plan) -> ClientBuilder {
        self.overrides.plan = Some(plan);
        self
    }

    /// Attaches an evaluation deadline (milliseconds) to every query.
    pub fn deadline_ms(mut self, ms: u64) -> ClientBuilder {
        self.deadline_ms = Some(ms);
        self
    }

    /// Opens the TCP connection and returns the configured client.
    pub fn connect<A: ToSocketAddrs>(self, addr: A) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            writer: stream.try_clone()?,
            reader: BufReader::new(stream),
            overrides: self.overrides,
            deadline_ms: self.deadline_ms,
        })
    }
}

/// A blocking connection to a `gss-server`.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    overrides: QueryOverrides,
    deadline_ms: Option<u64>,
}

impl Client {
    /// Starts configuring a client (see [`ClientBuilder`]).
    pub fn builder() -> ClientBuilder {
        ClientBuilder::default()
    }

    /// Connects with default options (no overrides, server deadline).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        Client::builder().connect(addr)
    }

    /// Sends one raw request line (newline appended) and returns the raw
    /// response line (trailing newline trimmed). The escape hatch for
    /// malformed-input tests; typed traffic goes through
    /// [`Client::request`].
    pub fn send_line(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(response.trim_end().to_owned())
    }

    /// Sends one typed request and classifies the response envelope.
    pub fn request(&mut self, request: &Request) -> std::io::Result<Response> {
        let line = request.to_line(); // includes the trailing newline
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Response::from_line(response.trim_end()).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("bad response {response:?}: {}", e.message),
            )
        })
    }

    /// Issues a `query` for a graph already in `t/v/e` text form,
    /// carrying this client's configured overrides and deadline.
    pub fn query(&mut self, graph_text: &str) -> std::io::Result<Response> {
        let envelope = QueryEnvelope {
            id: None,
            graph: graph_text.to_owned(),
            overrides: self.overrides.clone(),
            deadline_ms: self.deadline_ms,
        };
        self.request(&Request::Query(Box::new(envelope)))
    }

    /// Issues a `ping`.
    pub fn ping(&mut self) -> std::io::Result<Response> {
        self.request(&Request::Ping { id: None })
    }

    /// Fetches the server counters (the `"stats"` object of the
    /// response, parsed).
    pub fn stats(&mut self) -> std::io::Result<Value> {
        match self.request(&Request::Stats { id: None })? {
            Response::Stats { stats, .. } => Value::parse(&stats).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad stats payload: {e}"),
                )
            }),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "unexpected response to stats: {}",
                    other.to_line().trim_end()
                ),
            )),
        }
    }

    /// Inserts one or more graphs (a `t/v/e` document) into the server's
    /// live store as one atomic batch.
    pub fn insert(&mut self, graphs_text: &str) -> std::io::Result<Response> {
        self.request(&Request::Insert {
            id: None,
            graphs: graphs_text.to_owned(),
        })
    }

    /// Removes the named graphs from the server's live store as one
    /// atomic batch.
    pub fn remove(&mut self, names: &[String]) -> std::io::Result<Response> {
        self.request(&Request::Remove {
            id: None,
            names: names.to_vec(),
        })
    }

    /// Replaces one named graph in place with the single graph parsed
    /// from `graph_text`.
    pub fn update(&mut self, name: &str, graph_text: &str) -> std::io::Result<Response> {
        self.request(&Request::Update {
            id: None,
            name: name.to_owned(),
            graph: graph_text.to_owned(),
        })
    }

    /// Requests graceful drain.
    pub fn shutdown(&mut self) -> std::io::Result<Response> {
        self.request(&Request::Shutdown { id: None })
    }
}
