//! A minimal blocking protocol client speaking typed
//! [`gss_protocol`] envelopes.
//!
//! One [`Client`] wraps one TCP connection and exchanges one-line JSON
//! requests/responses (see the [`gss_protocol`] crate docs for the wire
//! format). Per-query options travel with the client: configure them
//! once on the [`ClientBuilder`] and every [`Client::query`] carries
//! them, so call sites deal in graphs and typed [`Response`]s instead of
//! hand-assembled JSON fragments:
//!
//! ```no_run
//! use gss_server::Client;
//!
//! let mut client = Client::builder()
//!     .deadline_ms(2_000)
//!     .plan(gss_core::Plan::Prefilter)
//!     .connect("127.0.0.1:7878")?;
//! let response = client.query("t q\nv 0 C\n")?;
//! assert!(response.is_ok());
//! # std::io::Result::Ok(())
//! ```
//!
//! # Retries
//!
//! A [`RetryPolicy`] (attached via [`ClientBuilder::retry`]) makes the
//! client resilient to connection resets, server restarts and
//! backpressure: transient I/O failures reconnect and resend with
//! exponential backoff plus deterministic jitter, and
//! [`Response::Backpressure`] sleeps out the server's `retry_after_ms`
//! hint before resending. Idempotent verbs (`query` / `ping` / `stats`)
//! retry as-is. Mutations are retried **safely**: with a policy active
//! every [`Client::insert`] / [`Client::remove`] / [`Client::update`]
//! carries a unique `mutation_id`, which a durable server deduplicates —
//! a resend whose first attempt actually landed replays the original
//! receipt (`replayed: true` on the wire) instead of double-applying.
//! [`Client::retries`] exposes how many resends the client performed.
//!
//! Used by the `gss client` CLI subcommand, the loopback tests and the
//! serving benchmarks — anything that wants to talk to a `gss-server`
//! without hand-rolling framing.

use std::collections::hash_map::RandomState;
use std::hash::{BuildHasher, Hasher};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use gss_core::jsonio::Value;
use gss_core::Plan;
use gss_protocol::{QueryEnvelope, QueryOverrides, Request, Response};
use gss_skyline::Algorithm;

/// How a [`Client`] handles transient failures. The default policy
/// performs no retries (one attempt, exactly the pre-retry behavior);
/// [`RetryPolicy::default`] is a sensible resilient configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Most resends after the initial attempt (0 disables retrying).
    pub max_retries: u32,
    /// First backoff delay; doubles per retry up to `max_delay_ms`.
    pub base_delay_ms: u64,
    /// Backoff ceiling.
    pub max_delay_ms: u64,
    /// Seed for the deterministic jitter stream (each delay lands
    /// uniformly in `[delay/2, delay]`), so chaos tests replay exactly.
    pub jitter_seed: u64,
    /// Per-attempt socket read/write timeout. A timed-out attempt counts
    /// as transient and is retried. `None` blocks indefinitely.
    pub timeout_ms: Option<u64>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_delay_ms: 10,
            max_delay_ms: 500,
            jitter_seed: 0x9e37_79b9_7f4a_7c15,
            timeout_ms: None,
        }
    }
}

impl RetryPolicy {
    /// No retries: one attempt, fail on the first transient error.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        }
    }

    /// [`RetryPolicy::default`] with a different retry budget.
    pub fn retries(n: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries: n,
            ..RetryPolicy::default()
        }
    }
}

/// Configures the per-query options a [`Client`] attaches to every
/// [`Client::query`]. Unset knobs are simply omitted from the wire
/// envelope, so the server's base options apply.
#[derive(Clone, Debug, Default)]
pub struct ClientBuilder {
    overrides: QueryOverrides,
    deadline_ms: Option<u64>,
    retry: Option<RetryPolicy>,
}

impl ClientBuilder {
    /// Overrides the server's prefilter setting for this client's queries.
    pub fn prefilter(mut self, on: bool) -> ClientBuilder {
        self.overrides.prefilter = Some(on);
        self
    }

    /// Requests approximate solvers (bipartite GED + greedy MCS).
    pub fn approx(mut self, on: bool) -> ClientBuilder {
        self.overrides.approx = Some(on);
        self
    }

    /// Selects the server-side skyline algorithm.
    pub fn algo(mut self, algo: Algorithm) -> ClientBuilder {
        self.overrides.algo = Some(algo);
        self
    }

    /// Selects the evaluation plan.
    pub fn plan(mut self, plan: Plan) -> ClientBuilder {
        self.overrides.plan = Some(plan);
        self
    }

    /// Attaches an evaluation deadline (milliseconds) to every query.
    pub fn deadline_ms(mut self, ms: u64) -> ClientBuilder {
        self.deadline_ms = Some(ms);
        self
    }

    /// Attaches a retry policy (see the crate-level *Retries* section).
    pub fn retry(mut self, policy: RetryPolicy) -> ClientBuilder {
        self.retry = Some(policy);
        self
    }

    /// Opens the TCP connection and returns the configured client.
    pub fn connect<A: ToSocketAddrs>(self, addr: A) -> std::io::Result<Client> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
        let policy = self.retry.unwrap_or_else(RetryPolicy::none);
        let mut client = Client {
            conn: None,
            addrs,
            overrides: self.overrides,
            deadline_ms: self.deadline_ms,
            // Seed jitter with 0 forbidden (xorshift fixpoint).
            rng: policy.jitter_seed | 1,
            policy,
            retries: 0,
            // A per-client nonce keyed off the process RNG keeps
            // auto-generated mutation ids unique across clients and
            // across restarts of the same binary.
            nonce: RandomState::new().build_hasher().finish(),
            mutation_seq: 0,
        };
        client.ensure_conn()?;
        Ok(client)
    }
}

/// One live TCP connection (write half + buffered read half).
struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

/// A blocking connection to a `gss-server`.
pub struct Client {
    conn: Option<Conn>,
    addrs: Vec<SocketAddr>,
    overrides: QueryOverrides,
    deadline_ms: Option<u64>,
    policy: RetryPolicy,
    rng: u64,
    retries: u64,
    nonce: u64,
    mutation_seq: u64,
}

impl Client {
    /// Starts configuring a client (see [`ClientBuilder`]).
    pub fn builder() -> ClientBuilder {
        ClientBuilder::default()
    }

    /// Connects with default options (no overrides, server deadline, no
    /// retries).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Client> {
        Client::builder().connect(addr)
    }

    /// How many resends (reconnect-and-resend or backpressure waits)
    /// this client has performed so far.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Opens (or reuses) the connection, applying the policy timeout.
    fn ensure_conn(&mut self) -> std::io::Result<&mut Conn> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(self.addrs.as_slice())?;
            stream.set_nodelay(true)?;
            let timeout = self.policy.timeout_ms.map(Duration::from_millis);
            stream.set_read_timeout(timeout)?;
            stream.set_write_timeout(timeout)?;
            self.conn = Some(Conn {
                writer: stream.try_clone()?,
                reader: BufReader::new(stream),
            });
        }
        match self.conn.as_mut() {
            Some(conn) => Ok(conn),
            None => Err(std::io::Error::other("internal: connection vanished")),
        }
    }

    /// One attempt: write the line, read one response line. Any I/O error
    /// leaves `self.conn` cleared so the next attempt reconnects.
    fn exchange(&mut self, line: &str) -> std::io::Result<String> {
        let conn = self.ensure_conn()?;
        let attempt = (|| {
            conn.writer.write_all(line.as_bytes())?;
            conn.writer.flush()?;
            let mut response = String::new();
            let n = conn.reader.read_line(&mut response)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ));
            }
            Ok(response)
        })();
        if attempt.is_err() {
            self.conn = None;
        }
        attempt
    }

    /// Whether an I/O failure is worth a reconnect-and-resend.
    fn transient(e: &std::io::Error) -> bool {
        use std::io::ErrorKind::*;
        matches!(
            e.kind(),
            UnexpectedEof
                | ConnectionReset
                | ConnectionAborted
                | ConnectionRefused
                | BrokenPipe
                | NotConnected
                | WouldBlock
                | TimedOut
                | Interrupted
        )
    }

    /// The next backoff delay: exponential in the retry number, capped,
    /// jittered deterministically into `[delay/2, delay]`.
    fn backoff_ms(&mut self, retry: u32) -> u64 {
        let exp = retry.saturating_sub(1).min(16);
        let delay = self
            .policy
            .base_delay_ms
            .saturating_mul(1u64 << exp)
            .min(self.policy.max_delay_ms);
        if delay <= 1 {
            return delay;
        }
        // xorshift64: cheap, seedable, good enough to decorrelate
        // clients hammering a restarting server.
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        delay / 2 + self.rng % (delay / 2 + 1)
    }

    /// Sends one raw request line (newline appended) and returns the raw
    /// response line (trailing newline trimmed). The escape hatch for
    /// malformed-input tests; typed traffic goes through
    /// [`Client::request`]. Never retried.
    pub fn send_line(&mut self, line: &str) -> std::io::Result<String> {
        let framed = format!("{line}\n");
        self.exchange(&framed).map(|r| r.trim_end().to_owned())
    }

    /// Sends one typed request and classifies the response envelope.
    ///
    /// With a [`RetryPolicy`] active, transient failures reconnect and
    /// resend (for idempotent verbs and mutations carrying a
    /// `mutation_id`) and backpressure rejections sleep out the server's
    /// hint and resend; everything else surfaces immediately.
    pub fn request(&mut self, request: &Request) -> std::io::Result<Response> {
        let line = request.to_line(); // includes the trailing newline
        let retryable = match request {
            Request::Ping { .. } | Request::Stats { .. } | Request::Query(_) => true,
            Request::Shutdown { .. } => false,
            // A mutation is only safe to resend when the server can
            // deduplicate it.
            _ => request.mutation_id().is_some(),
        };
        let mut retry: u32 = 0;
        loop {
            let outcome = self.exchange(&line).and_then(|raw| {
                Response::from_line(raw.trim_end()).map_err(|e| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("bad response {raw:?}: {}", e.message),
                    )
                })
            });
            let can_retry = retryable && retry < self.policy.max_retries;
            match outcome {
                Ok(Response::Backpressure { retry_after_ms, .. }) if can_retry => {
                    retry += 1;
                    self.retries += 1;
                    let wait = retry_after_ms.max(self.backoff_ms(retry));
                    std::thread::sleep(Duration::from_millis(wait));
                }
                Ok(response) => return Ok(response),
                Err(e) if can_retry && Client::transient(&e) => {
                    retry += 1;
                    self.retries += 1;
                    let wait = self.backoff_ms(retry);
                    std::thread::sleep(Duration::from_millis(wait));
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Issues a `query` for a graph already in `t/v/e` text form,
    /// carrying this client's configured overrides and deadline.
    pub fn query(&mut self, graph_text: &str) -> std::io::Result<Response> {
        let envelope = QueryEnvelope {
            id: None,
            graph: graph_text.to_owned(),
            overrides: self.overrides.clone(),
            deadline_ms: self.deadline_ms,
        };
        self.request(&Request::Query(Box::new(envelope)))
    }

    /// Issues a `ping`.
    pub fn ping(&mut self) -> std::io::Result<Response> {
        self.request(&Request::Ping { id: None })
    }

    /// Fetches the server counters (the `"stats"` object of the
    /// response, parsed).
    pub fn stats(&mut self) -> std::io::Result<Value> {
        match self.request(&Request::Stats { id: None })? {
            Response::Stats { stats, .. } => Value::parse(&stats).map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad stats payload: {e}"),
                )
            }),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "unexpected response to stats: {}",
                    other.to_line().trim_end()
                ),
            )),
        }
    }

    /// The idempotency key for the next mutation: attached only when a
    /// retry policy is active (without one, resends never happen and the
    /// key would be dead weight on the wire).
    fn next_mutation_id(&mut self) -> Option<String> {
        if self.policy.max_retries == 0 {
            return None;
        }
        self.mutation_seq += 1;
        Some(format!("c{:016x}:{}", self.nonce, self.mutation_seq))
    }

    /// Inserts one or more graphs (a `t/v/e` document) into the server's
    /// live store as one atomic batch.
    pub fn insert(&mut self, graphs_text: &str) -> std::io::Result<Response> {
        let mutation_id = self.next_mutation_id();
        self.request(&Request::Insert {
            id: None,
            graphs: graphs_text.to_owned(),
            mutation_id,
        })
    }

    /// Removes the named graphs from the server's live store as one
    /// atomic batch.
    pub fn remove(&mut self, names: &[String]) -> std::io::Result<Response> {
        let mutation_id = self.next_mutation_id();
        self.request(&Request::Remove {
            id: None,
            names: names.to_vec(),
            mutation_id,
        })
    }

    /// Replaces one named graph in place with the single graph parsed
    /// from `graph_text`.
    pub fn update(&mut self, name: &str, graph_text: &str) -> std::io::Result<Response> {
        let mutation_id = self.next_mutation_id();
        self.request(&Request::Update {
            id: None,
            name: name.to_owned(),
            graph: graph_text.to_owned(),
            mutation_id,
        })
    }

    /// Requests graceful drain. Never retried.
    pub fn shutdown(&mut self) -> std::io::Result<Response> {
        self.request(&Request::Shutdown { id: None })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_jittered_and_deterministic() {
        let policy = RetryPolicy {
            max_retries: 8,
            base_delay_ms: 10,
            max_delay_ms: 200,
            jitter_seed: 42,
            timeout_ms: None,
        };
        let delays = |seed: u64| -> Vec<u64> {
            let mut c = Client {
                conn: None,
                addrs: Vec::new(),
                overrides: QueryOverrides::default(),
                deadline_ms: None,
                policy: policy.clone(),
                rng: seed | 1,
                retries: 0,
                nonce: 1,
                mutation_seq: 0,
            };
            (1..=8).map(|r| c.backoff_ms(r)).collect()
        };
        let a = delays(42);
        for (retry, &d) in a.iter().enumerate() {
            let full = (10u64 << retry.min(16)).min(200);
            assert!(d >= full / 2 && d <= full, "retry {retry}: {d} vs {full}");
        }
        assert_eq!(a, delays(42), "same seed, same jitter stream");
        assert_ne!(a, delays(101), "different seed decorrelates");
    }

    #[test]
    fn mutation_ids_attach_only_under_a_retry_policy() {
        let mut with = Client {
            conn: None,
            addrs: Vec::new(),
            overrides: QueryOverrides::default(),
            deadline_ms: None,
            policy: RetryPolicy::default(),
            rng: 1,
            retries: 0,
            nonce: 0xabcd,
            mutation_seq: 0,
        };
        let a = with.next_mutation_id().expect("policy active");
        let b = with.next_mutation_id().expect("policy active");
        assert_ne!(a, b, "each mutation gets a fresh id");
        assert!(a.starts_with("c000000000000abcd:"));

        let mut without = Client {
            policy: RetryPolicy::none(),
            ..with
        };
        assert_eq!(without.next_mutation_id(), None);
    }
}
