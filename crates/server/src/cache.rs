//! The sharded LRU result cache.
//!
//! Keys are [`QueryKey`]s (database fingerprint × query-graph fingerprint
//! × normalized options fingerprint — see `gss_core::cachekey`); values
//! are the **exact serialized result document** the server would produce
//! by evaluating the query fresh, so a cache hit is byte-identical to a
//! recomputation by construction. The cache never stores request
//! envelopes (which carry per-request `id` / `cached` fields), only the
//! result payload.
//!
//! Sharding bounds lock contention: a key is pinned to one shard by hash,
//! each shard is an independent `Mutex<HashMap>` with its own LRU clock,
//! and the total capacity is split evenly across shards. Eviction is
//! least-recently-used per shard, implemented as a min-scan over the
//! shard's (small) entry set — capacity per shard is
//! `total / shards`, so the scan stays cheap.

use std::collections::HashMap;
use std::sync::Mutex;

use gss_core::QueryKey;

/// One shard: an LRU map with a monotonic use-clock.
#[derive(Default)]
struct Shard {
    map: HashMap<QueryKey, Entry>,
    tick: u64,
}

struct Entry {
    value: String,
    last_used: u64,
}

/// A sharded LRU cache of serialized query results.
pub struct ShardedCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
}

impl ShardedCache {
    /// Creates a cache holding up to `capacity` entries split across
    /// `shards` shards (both clamped to at least 1 shard; a `capacity` of
    /// 0 disables caching).
    pub fn new(capacity: usize, shards: usize) -> ShardedCache {
        let shards = shards.max(1).min(capacity.max(1));
        ShardedCache {
            per_shard_capacity: capacity / shards,
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
        }
    }

    fn shard(&self, key: &QueryKey) -> &Mutex<Shard> {
        // FNV-1a over the three fingerprints; they are already
        // well-mixed, this just folds them into a shard pick.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for part in [key.database, key.query, key.options] {
            for b in part.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        // gss-lint: allow(no-panic-in-request-path[index]) — h % len is in bounds by construction
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Looks up a key, refreshing its recency on hit.
    pub fn get(&self, key: &QueryKey) -> Option<String> {
        // Poison recovery throughout: the map/tick pair the shard lock
        // guards never straddles a panic point mid-update, so a
        // poisoned shard is still a valid cache (worst case: a stale
        // LRU tick). Dropping the whole cache over one panicked thread
        // would be the larger failure.
        let mut shard = self.shard(key).lock().unwrap_or_else(|p| p.into_inner());
        shard.tick += 1;
        let tick = shard.tick;
        shard.map.get_mut(key).map(|e| {
            e.last_used = tick;
            e.value.clone()
        })
    }

    /// Inserts (or refreshes) an entry, evicting the shard's
    /// least-recently-used entry when the shard is full.
    pub fn insert(&self, key: QueryKey, value: String) {
        if self.per_shard_capacity == 0 {
            return;
        }
        let mut shard = self.shard(&key).lock().unwrap_or_else(|p| p.into_inner());
        shard.tick += 1;
        let tick = shard.tick;
        if !shard.map.contains_key(&key) && shard.map.len() >= self.per_shard_capacity {
            if let Some(&oldest) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                shard.map.remove(&oldest);
            }
        }
        shard.map.insert(
            key,
            Entry {
                value,
                last_used: tick,
            },
        );
    }

    /// Drops every entry whose database fingerprint is not `live` and
    /// returns how many were evicted. Called after a mutation bumps the
    /// epoch: the epoch is folded into the fingerprint, so stale entries
    /// can never be hit again — eviction just reclaims their memory
    /// eagerly instead of waiting for LRU churn.
    pub fn evict_stale(&self, live: u64) -> usize {
        let mut evicted = 0;
        for shard in &self.shards {
            let mut shard = shard.lock().unwrap_or_else(|p| p.into_inner());
            let before = shard.map.len();
            shard.map.retain(|key, _| key.database == live);
            evicted += before - shard.map.len();
        }
        evicted
    }

    /// Total entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).map.len())
            .sum()
    }

    /// True when no shard holds an entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(a: u64, b: u64, c: u64) -> QueryKey {
        QueryKey {
            database: a,
            query: b,
            options: c,
        }
    }

    #[test]
    fn get_insert_round_trip() {
        let cache = ShardedCache::new(8, 2);
        assert!(cache.is_empty());
        assert_eq!(cache.get(&key(1, 2, 3)), None);
        cache.insert(key(1, 2, 3), "payload".to_owned());
        assert_eq!(cache.get(&key(1, 2, 3)).as_deref(), Some("payload"));
        assert_eq!(
            cache.get(&key(1, 2, 4)),
            None,
            "options are part of the key"
        );
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used_per_shard() {
        // One shard so the LRU order is global and deterministic.
        let cache = ShardedCache::new(2, 1);
        cache.insert(key(0, 0, 1), "a".into());
        cache.insert(key(0, 0, 2), "b".into());
        // Touch "a" so "b" becomes the eviction victim.
        assert!(cache.get(&key(0, 0, 1)).is_some());
        cache.insert(key(0, 0, 3), "c".into());
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(0, 0, 1)).is_some(), "recently used survives");
        assert!(cache.get(&key(0, 0, 2)).is_none(), "LRU entry evicted");
        assert!(cache.get(&key(0, 0, 3)).is_some());
    }

    #[test]
    fn reinsert_refreshes_not_grows() {
        let cache = ShardedCache::new(2, 1);
        cache.insert(key(0, 0, 1), "a".into());
        cache.insert(key(0, 0, 1), "a2".into());
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&key(0, 0, 1)).as_deref(), Some("a2"));
    }

    #[test]
    fn evict_stale_keeps_only_the_live_fingerprint() {
        let cache = ShardedCache::new(16, 4);
        cache.insert(key(1, 10, 0), "old".into());
        cache.insert(key(1, 11, 0), "old".into());
        cache.insert(key(2, 10, 0), "live".into());
        assert_eq!(cache.evict_stale(2), 2);
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&key(2, 10, 0)).is_some());
        assert!(cache.get(&key(1, 10, 0)).is_none());
        assert_eq!(cache.evict_stale(2), 0, "idempotent");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ShardedCache::new(0, 4);
        cache.insert(key(1, 1, 1), "x".into());
        assert_eq!(cache.get(&key(1, 1, 1)), None);
        assert!(cache.is_empty());
    }

    #[test]
    fn concurrent_access_is_safe() {
        use std::sync::Arc;
        let cache = Arc::new(ShardedCache::new(64, 8));
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..200u64 {
                        let k = key(t, i % 16, 0);
                        cache.insert(k, format!("{t}/{i}"));
                        let _ = cache.get(&k);
                    }
                });
            }
        });
        assert!(cache.len() <= 64);
    }
}
