//! S2 — GED solver scaling: exact branch-and-bound vs bipartite vs beam.
//!
//! Expected shape: exact cost explodes with graph size (it is exponential);
//! bipartite stays polynomial; beam sits between depending on width. The
//! warm-started exact solver should expand fewer nodes than the cold one.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gss_datasets::synth::{perturb, random_connected_graph, RandomGraphConfig};
use gss_ged::{beam::beam_ged, bipartite::bipartite_ged, exact_ged, CostModel, GedOptions};
use gss_graph::{Graph, Rng, Vocabulary};
use std::hint::black_box;

fn pair_of_size(n: usize, edits: usize, seed: u64) -> (Graph, Graph) {
    let mut vocab = Vocabulary::new();
    let mut rng = Rng::seed_from_u64(seed);
    let cfg = RandomGraphConfig {
        vertices: n,
        edges: n + n / 3,
        ..Default::default()
    };
    let g1 = random_connected_graph("g1", &cfg, &mut vocab, &mut rng);
    let g2 = perturb(&g1, edits, &mut vocab, &mut rng, "P");
    (g1, g2)
}

fn bench_ged(c: &mut Criterion) {
    let mut group = c.benchmark_group("S2-ged");
    group.sample_size(10);
    for &n in &[4usize, 6, 8, 10] {
        let (g1, g2) = pair_of_size(n, 3, 0xbe_ec5 + n as u64);
        group.bench_with_input(BenchmarkId::new("exact", n), &(&g1, &g2), |b, (g1, g2)| {
            b.iter(|| {
                let warm = bipartite_ged(g1, g2, &CostModel::uniform());
                black_box(
                    exact_ged(
                        g1,
                        g2,
                        &GedOptions {
                            warm_start: Some(warm.mapping),
                            ..Default::default()
                        },
                    )
                    .cost,
                )
            })
        });
        group.bench_with_input(
            BenchmarkId::new("bipartite", n),
            &(&g1, &g2),
            |b, (g1, g2)| b.iter(|| black_box(bipartite_ged(g1, g2, &CostModel::uniform()).cost)),
        );
        group.bench_with_input(BenchmarkId::new("beam16", n), &(&g1, &g2), |b, (g1, g2)| {
            b.iter(|| black_box(beam_ged(g1, g2, &CostModel::uniform(), 16).cost))
        });
    }
    group.finish();

    // Approximation quality at a fixed size (reported via the bench names;
    // criterion measures only time, the gap is printed once).
    let (g1, g2) = pair_of_size(9, 4, 77);
    let exact = exact_ged(&g1, &g2, &GedOptions::default()).cost;
    let bip = bipartite_ged(&g1, &g2, &CostModel::uniform()).cost;
    let beam = beam_ged(&g1, &g2, &CostModel::uniform(), 16).cost;
    eprintln!("S2 quality @ n=9: exact {exact}, bipartite {bip}, beam16 {beam}");
}

criterion_group!(benches, bench_ged);
criterion_main!(benches);
