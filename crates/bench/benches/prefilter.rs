//! S6 — filter-and-verify pruning vs the naive GSS scan.
//!
//! Expected shape: the prefilter's advantage grows with database size and
//! with the fraction of decoys (graphs far from the query), because decoys
//! are exactly what lower-bound domination prunes. On a workload of
//! near-duplicates the two pipelines converge (everything must verify).
//!
//! The pruning rate itself is printed once per configuration — criterion
//! only measures time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gss_core::{graph_similarity_skyline, GraphDatabase, Plan, QueryOptions};
use gss_datasets::workload::{Workload, WorkloadConfig, WorkloadKind};
use std::hint::black_box;

fn bench_prefilter(c: &mut Criterion) {
    let mut group = c.benchmark_group("S6-prefilter");
    group.sample_size(10);
    for &n in &[20usize, 60, 120] {
        let w = Workload::generate(&WorkloadConfig {
            kind: WorkloadKind::Molecule,
            database_size: n,
            graph_vertices: 7,
            related_fraction: 0.3,
            seed: 0x56,
            ..Default::default()
        });
        let db = GraphDatabase::from_parts(w.vocab, w.graphs);
        let q = w.query;

        let pruned_opts = QueryOptions {
            prefilter: true,
            ..QueryOptions::default()
        };
        let r = graph_similarity_skyline(&db, &q, &pruned_opts);
        let stats = r.pruning.expect("prefilter stats");
        println!(
            "n={n}: pruning rate {:.0}% ({} pruned, {} short-circuited, {} verified)",
            stats.pruning_rate() * 100.0,
            stats.pruned,
            stats.short_circuited,
            stats.verified
        );

        group.bench_with_input(BenchmarkId::new("naive", n), &(&db, &q), |b, (db, q)| {
            // Pin the naive plan: Plan::Auto (the default) would resolve to
            // the prefilter pipeline at these database sizes, turning the
            // baseline into a prefilter-vs-prefilter comparison.
            let opts = QueryOptions {
                plan: Plan::Naive,
                ..QueryOptions::default()
            };
            b.iter(|| black_box(graph_similarity_skyline(db, q, &opts).skyline.len()))
        });
        group.bench_with_input(
            BenchmarkId::new("prefilter", n),
            &(&db, &q),
            |b, (db, q)| {
                let opts = QueryOptions {
                    prefilter: true,
                    ..QueryOptions::default()
                };
                b.iter(|| black_box(graph_similarity_skyline(db, q, &opts).skyline.len()))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("prefilter-4threads", n),
            &(&db, &q),
            |b, (db, q)| {
                let opts = QueryOptions {
                    prefilter: true,
                    threads: 4,
                    ..QueryOptions::default()
                };
                b.iter(|| black_box(graph_similarity_skyline(db, q, &opts).skyline.len()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_prefilter);
criterion_main!(benches);
