//! S5 — diversity refinement: exact rank-sum enumeration vs greedy max-min.
//!
//! Expected shape: exact cost is `C(n, k)`-shaped (combinatorial cliff as
//! the skyline grows); greedy is polynomial and close in quality for small
//! k. Also measures the dense-ranking building block on its own.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gss_diversity::{dense_ranks_desc, refine_exact, refine_greedy};
use gss_graph::Rng;
use std::hint::black_box;

#[allow(clippy::needless_range_loop)] // symmetric matrix fill reads clearest indexed
fn random_matrices(n: usize, dims: usize, seed: u64) -> Vec<Vec<Vec<f64>>> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..dims)
        .map(|_| {
            let mut m = vec![vec![0.0f64; n]; n];
            for i in 0..n {
                for j in i + 1..n {
                    let v = rng.gen_f64();
                    m[i][j] = v;
                    m[j][i] = v;
                }
            }
            m
        })
        .collect()
}

fn bench_diversity(c: &mut Criterion) {
    let mut group = c.benchmark_group("S5-diversity");
    group.sample_size(10);
    for &n in &[8usize, 12, 16, 20] {
        let m = random_matrices(n, 3, n as u64);
        for &k in &[2usize, 3] {
            group.bench_with_input(BenchmarkId::new(format!("exact-k{k}"), n), &m, |b, m| {
                b.iter(|| black_box(refine_exact(m, k, u128::MAX).unwrap().best))
            });
            group.bench_with_input(BenchmarkId::new(format!("greedy-k{k}"), n), &m, |b, m| {
                b.iter(|| black_box(refine_greedy(m, k)))
            });
        }
    }
    group.finish();

    let mut group = c.benchmark_group("S5-ranking");
    group.sample_size(20);
    for &n in &[1_000usize, 10_000] {
        let mut rng = Rng::seed_from_u64(3);
        let values: Vec<f64> = (0..n).map(|_| rng.gen_f64()).collect();
        group.bench_with_input(BenchmarkId::new("dense_ranks", n), &values, |b, v| {
            b.iter(|| black_box(dense_ranks_desc(v, 1e-9)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_diversity);
criterion_main!(benches);
