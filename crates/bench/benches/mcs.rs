//! S3 — MCS solver scaling: exact branch-and-bound vs greedy multi-start.
//!
//! Expected shape: exact grows super-polynomially with edge count (worst on
//! sparse label alphabets where many mappings are feasible); greedy stays
//! polynomial and reaches the optimum on subgraph-ish pairs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gss_datasets::synth::{perturb, random_connected_graph, RandomGraphConfig};
use gss_graph::{Graph, Rng, Vocabulary};
use gss_mcs::{greedy::greedy_mcs, mcs_edge_size};
use std::hint::black_box;

fn pair(n: usize, labels: usize, seed: u64) -> (Graph, Graph) {
    let mut vocab = Vocabulary::new();
    let mut rng = Rng::seed_from_u64(seed);
    let alphabet: Vec<String> = (0..labels).map(|i| format!("L{i}")).collect();
    let cfg = RandomGraphConfig {
        vertices: n,
        edges: n + n / 2,
        vertex_alphabet: alphabet,
        ..Default::default()
    };
    let g1 = random_connected_graph("g1", &cfg, &mut vocab, &mut rng);
    let g2 = perturb(&g1, 3, &mut vocab, &mut rng, "P");
    (g1, g2)
}

fn bench_mcs(c: &mut Criterion) {
    let mut group = c.benchmark_group("S3-mcs");
    group.sample_size(10);
    for &n in &[5usize, 7, 9, 11] {
        // Rich alphabet: labels prune hard, exact is fast.
        let (g1, g2) = pair(n, 6, 0x3c5 + n as u64);
        group.bench_with_input(
            BenchmarkId::new("exact-rich", n),
            &(&g1, &g2),
            |b, (g1, g2)| b.iter(|| black_box(mcs_edge_size(g1, g2))),
        );
        group.bench_with_input(
            BenchmarkId::new("greedy-rich", n),
            &(&g1, &g2),
            |b, (g1, g2)| b.iter(|| black_box(greedy_mcs(g1, g2, usize::MAX).edges())),
        );
        // Poor alphabet (2 labels): many feasible mappings, exact suffers.
        let (h1, h2) = pair(n, 2, 0xabc + n as u64);
        group.bench_with_input(
            BenchmarkId::new("exact-poor", n),
            &(&h1, &h2),
            |b, (g1, g2)| b.iter(|| black_box(mcs_edge_size(g1, g2))),
        );
        group.bench_with_input(
            BenchmarkId::new("greedy-poor", n),
            &(&h1, &h2),
            |b, (g1, g2)| b.iter(|| black_box(greedy_mcs(g1, g2, usize::MAX).edges())),
        );
    }
    group.finish();

    let (g1, g2) = pair(9, 2, 99);
    let exact = mcs_edge_size(&g1, &g2);
    let greedy = greedy_mcs(&g1, &g2, usize::MAX).edges();
    eprintln!("S3 quality @ n=9 poor-alphabet: exact {exact}, greedy {greedy}");
}

criterion_group!(benches, bench_mcs);
criterion_main!(benches);
