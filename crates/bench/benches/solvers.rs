//! Solver-kernel microbenchmarks: the rewritten word-parallel kernels
//! against the retained reference implementations, on paper-scale molecule
//! pairs.
//!
//! Covers the four exact hot paths the skyline scans bottom out in:
//! branch-and-bound GED (incremental bound vs rescanning reference),
//! bipartite GED (shared workspace vs per-call allocation), connected MCS
//! (bitset candidate masks vs per-node `Vec`s), the product-graph max
//! clique (Tomita colouring vs Bron–Kerbosch) and VF2 isomorphism.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gss_datasets::synth::{perturb, random_connected_graph, RandomGraphConfig};
use gss_ged::bipartite::{bipartite_ged, bipartite_ged_with};
use gss_ged::reference::reference_exact_ged;
use gss_ged::{exact_ged, CostModel, GedOptions};
use gss_graph::{Graph, Rng, Vocabulary};
use gss_mcs::reference::{max_clique_reference, maximum_common_subgraph_reference};
use gss_mcs::{max_clique_expanded, maximum_common_subgraph_expanded, Objective};
use std::hint::black_box;

fn molecule_pair(n: usize, seed: u64) -> (Graph, Graph) {
    let mut vocab = Vocabulary::new();
    let mut rng = Rng::seed_from_u64(seed);
    let cfg = RandomGraphConfig {
        vertices: n,
        edges: n + n / 3,
        ..Default::default()
    };
    let g1 = random_connected_graph("g1", &cfg, &mut vocab, &mut rng);
    let g2 = perturb(&g1, 3, &mut vocab, &mut rng, "P");
    (g1, g2)
}

fn bench_ged_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvers-ged-exact");
    group.sample_size(10);
    for &n in &[6usize, 8, 10] {
        let (g1, g2) = molecule_pair(n, 0x9e0 + n as u64);
        let cost = CostModel::uniform();
        let warm = bipartite_ged(&g1, &g2, &cost).mapping;
        let opts = GedOptions {
            warm_start: Some(warm),
            ..GedOptions::default()
        };
        group.bench_with_input(BenchmarkId::new("bitset", n), &(&g1, &g2), |b, (g1, g2)| {
            b.iter(|| black_box(exact_ged(g1, g2, &opts).cost))
        });
        group.bench_with_input(
            BenchmarkId::new("reference", n),
            &(&g1, &g2),
            |b, (g1, g2)| b.iter(|| black_box(reference_exact_ged(g1, g2, &opts).cost)),
        );
    }
    group.finish();
}

fn bench_ged_bipartite(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvers-ged-bipartite");
    for &n in &[8usize, 12, 16] {
        let (g1, g2) = molecule_pair(n, 0xb1 + n as u64);
        let cost = CostModel::uniform();
        let mut ws = gss_ged::Workspace::new();
        group.bench_with_input(
            BenchmarkId::new("workspace", n),
            &(&g1, &g2),
            |b, (g1, g2)| b.iter(|| black_box(bipartite_ged_with(g1, g2, &cost, &mut ws).cost)),
        );
        group.bench_with_input(
            BenchmarkId::new("fresh-alloc", n),
            &(&g1, &g2),
            |b, (g1, g2)| b.iter(|| black_box(bipartite_ged(g1, g2, &cost).cost)),
        );
    }
    group.finish();
}

fn bench_mcs_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvers-mcs-exact");
    group.sample_size(10);
    for &n in &[7usize, 9, 11] {
        let (g1, g2) = molecule_pair(n, 0x3c5 + n as u64);
        group.bench_with_input(BenchmarkId::new("bitset", n), &(&g1, &g2), |b, (g1, g2)| {
            b.iter(|| {
                black_box(
                    maximum_common_subgraph_expanded(g1, g2, Objective::Edges)
                        .0
                        .edges(),
                )
            })
        });
        group.bench_with_input(
            BenchmarkId::new("reference", n),
            &(&g1, &g2),
            |b, (g1, g2)| {
                b.iter(|| {
                    black_box(
                        maximum_common_subgraph_reference(g1, g2, Objective::Edges)
                            .0
                            .edges(),
                    )
                })
            },
        );
    }
    group.finish();
}

fn product_adjacency(g1: &Graph, g2: &Graph) -> Vec<Vec<bool>> {
    let mut pairs = Vec::new();
    for u in g1.vertices() {
        for v in g2.vertices() {
            if g1.vertex_label(u) == g2.vertex_label(v) {
                pairs.push((u, v));
            }
        }
    }
    let n = pairs.len();
    let mut adj = vec![vec![false; n]; n];
    for i in 0..n {
        for j in i + 1..n {
            let (u1, v1) = pairs[i];
            let (u2, v2) = pairs[j];
            if u1 == u2 || v1 == v2 {
                continue;
            }
            let consistent = match (g1.edge_between(u1, u2), g2.edge_between(v1, v2)) {
                (Some(a), Some(b)) => g1.edge_label(a) == g2.edge_label(b),
                (None, None) => true,
                _ => false,
            };
            if consistent {
                adj[i][j] = true;
                adj[j][i] = true;
            }
        }
    }
    adj
}

fn bench_max_clique(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvers-max-clique");
    group.sample_size(10);
    for &n in &[6usize, 8] {
        let (g1, g2) = molecule_pair(n, 0xc1 + n as u64);
        let adj = product_adjacency(&g1, &g2);
        group.bench_with_input(BenchmarkId::new("tomita", adj.len()), &adj, |b, adj| {
            b.iter(|| black_box(max_clique_expanded(adj).0.len()))
        });
        group.bench_with_input(
            BenchmarkId::new("bron-kerbosch", adj.len()),
            &adj,
            |b, adj| b.iter(|| black_box(max_clique_reference(adj).0.len())),
        );
    }
    group.finish();
}

fn bench_vf2(c: &mut Criterion) {
    let mut group = c.benchmark_group("solvers-vf2");
    for &n in &[8usize, 12] {
        let (g1, g2) = molecule_pair(n, 0xf2 + n as u64);
        // Isomorphic pair: the expensive positive case.
        group.bench_with_input(
            BenchmarkId::new("iso-self", n),
            &(&g1, &g1),
            |b, (g1, g2)| b.iter(|| black_box(gss_iso::are_isomorphic(g1, g2))),
        );
        // Near-miss pair: the common negative case of the short-circuit.
        group.bench_with_input(
            BenchmarkId::new("iso-perturbed", n),
            &(&g1, &g2),
            |b, (g1, g2)| b.iter(|| black_box(gss_iso::are_isomorphic(g1, g2))),
        );
        group.bench_with_input(
            BenchmarkId::new("subgraph", n),
            &(&g1, &g2),
            |b, (g1, g2)| b.iter(|| black_box(gss_iso::is_subgraph_isomorphic(g1, g2))),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_ged_exact,
    bench_ged_bipartite,
    bench_mcs_exact,
    bench_max_clique,
    bench_vf2
);
criterion_main!(benches);
