//! S4 — end-to-end graph-similarity-skyline query scaling.
//!
//! Sweeps database size and solver configuration. Expected shape: cost is
//! linear in |D| (one GCS evaluation per graph) with the constant dominated
//! by the exact GED; approximate solvers trade a small accuracy loss (see
//! ablation A2 in the `tables` binary) for a large constant-factor win, and
//! threads give near-linear speedup on the embarrassingly parallel scan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gss_core::{
    graph_similarity_skyline, GedMode, GraphDatabase, McsMode, Plan, QueryOptions, SolverConfig,
};
use gss_datasets::workload::{Workload, WorkloadConfig, WorkloadKind};
use std::hint::black_box;

fn workload(n: usize) -> (GraphDatabase, gss_graph::Graph) {
    let cfg = WorkloadConfig {
        kind: WorkloadKind::Molecule,
        database_size: n,
        graph_vertices: 7,
        related_fraction: 0.5,
        max_edits: 4,
        seed: 0x5_4_e_e_d,
    };
    let w = Workload::generate(&cfg);
    (GraphDatabase::from_parts(w.vocab, w.graphs), w.query)
}

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("S4-query");
    group.sample_size(10);
    for &n in &[10usize, 40, 120] {
        let (db, q) = workload(n);
        // Every series pins Plan::Naive: this bench measures the raw scan
        // under each solver/thread configuration, and Plan::Auto (the
        // default) would switch the larger sizes to the prefilter pipeline.
        group.bench_with_input(BenchmarkId::new("exact", n), &(&db, &q), |b, (db, q)| {
            let opts = QueryOptions {
                plan: Plan::Naive,
                ..QueryOptions::default()
            };
            b.iter(|| black_box(graph_similarity_skyline(db, q, &opts).skyline.len()))
        });
        group.bench_with_input(BenchmarkId::new("approx", n), &(&db, &q), |b, (db, q)| {
            let opts = QueryOptions {
                plan: Plan::Naive,
                solvers: SolverConfig {
                    ged: GedMode::Bipartite,
                    mcs: McsMode::Greedy,
                },
                ..Default::default()
            };
            b.iter(|| black_box(graph_similarity_skyline(db, q, &opts).skyline.len()))
        });
        group.bench_with_input(
            BenchmarkId::new("exact-4threads", n),
            &(&db, &q),
            |b, (db, q)| {
                let opts = QueryOptions {
                    plan: Plan::Naive,
                    threads: 4,
                    ..Default::default()
                };
                b.iter(|| black_box(graph_similarity_skyline(db, q, &opts).skyline.len()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
