//! S1 — skyline algorithm scaling (naive vs BNL vs SFS vs 2-d sweep).
//!
//! Expected shape: naive `O(n²)` falls behind quickly; SFS ≤ BNL on
//! anti-correlated data; the 2-d sweep wins its special case.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gss_graph::Rng;
use gss_skyline::{bnl_skyline, dc2_skyline, naive_skyline, sfs_skyline};
use std::hint::black_box;

fn correlated(n: usize, d: usize, rng: &mut Rng) -> Vec<Vec<f64>> {
    (0..n)
        .map(|_| {
            let base = rng.gen_f64();
            (0..d).map(|_| base + 0.1 * rng.gen_f64()).collect()
        })
        .collect()
}

fn anti_correlated(n: usize, d: usize, rng: &mut Rng) -> Vec<Vec<f64>> {
    (0..n)
        .map(|_| {
            let mut p: Vec<f64> = (0..d).map(|_| rng.gen_f64()).collect();
            let sum: f64 = p.iter().sum();
            // Push points toward the anti-correlated simplex: large skylines.
            for x in &mut p {
                *x = *x / sum + 0.05 * rng.gen_f64();
            }
            p
        })
        .collect()
}

fn bench_skyline(c: &mut Criterion) {
    let mut group = c.benchmark_group("S1-skyline");
    group.sample_size(20);
    for &n in &[100usize, 1_000, 5_000] {
        for (dist_name, maker) in [
            (
                "correlated",
                correlated as fn(usize, usize, &mut Rng) -> Vec<Vec<f64>>,
            ),
            (
                "anti",
                anti_correlated as fn(usize, usize, &mut Rng) -> Vec<Vec<f64>>,
            ),
        ] {
            let mut rng = Rng::seed_from_u64(42);
            let pts = maker(n, 3, &mut rng);
            group.bench_with_input(
                BenchmarkId::new(format!("naive-{dist_name}"), n),
                &pts,
                |b, p| b.iter(|| black_box(naive_skyline(p))),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("bnl-{dist_name}"), n),
                &pts,
                |b, p| b.iter(|| black_box(bnl_skyline(p))),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("sfs-{dist_name}"), n),
                &pts,
                |b, p| b.iter(|| black_box(sfs_skyline(p))),
            );
        }
    }
    group.finish();

    let mut group = c.benchmark_group("S1-skyline-2d");
    group.sample_size(20);
    for &n in &[1_000usize, 10_000] {
        let mut rng = Rng::seed_from_u64(7);
        let pts = anti_correlated(n, 2, &mut rng);
        group.bench_with_input(BenchmarkId::new("bnl", n), &pts, |b, p| {
            b.iter(|| black_box(bnl_skyline(p)))
        });
        group.bench_with_input(BenchmarkId::new("dc2", n), &pts, |b, p| {
            b.iter(|| black_box(dc2_skyline(p)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_skyline);
criterion_main!(benches);
