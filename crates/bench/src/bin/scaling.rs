//! Quick scaling-shape report (S1–S11) using plain wall-clock medians —
//! a fast complement to the rigorous criterion benches, for smoke-checking
//! the expected shapes (see DESIGN.md §4) in seconds instead of minutes.
//!
//! Usage: `cargo run --release -p gss-bench --bin scaling [-- FLAGS]`
//!
//! * `--smoke` — run only S7 + S8 + S9 + S10 + S11 (the committed CI
//!   smoke workload, [`WorkloadConfig::bench_smoke`]); seconds, not
//!   minutes.
//! * `--json PATH` — additionally write the S7 measurements as a JSON
//!   report (the CI `BENCH_2.json` artifact).
//! * `--serve-json PATH` — write the S8 serving measurements
//!   (queries/sec, latency percentiles, cache hit rate, response
//!   mismatches vs. direct evaluation) as a JSON report (the CI
//!   `BENCH_3.json` artifact).
//! * `--solver-json PATH` — write the S9 solver-kernel measurements
//!   (per-solver wall time for the bitset kernels and the retained
//!   reference implementations, expanded-node counters) as a JSON report
//!   (the CI `BENCH_4.json` artifact).
//! * `--plan-json PATH` — write the S10 planner measurements (Auto vs
//!   each manual plan for the skyline scan, plus the pruned skyband) as a
//!   JSON report (the CI `BENCH_5.json` artifact).
//! * `--reactor-json PATH` — write the S11 reactor measurements (1k+
//!   concurrent connections on ≤ 2 reactor threads: ping/query latency
//!   percentiles, response mismatches vs. direct evaluation) as a JSON
//!   report (the CI `BENCH_6.json` artifact).
//! * `--churn-json PATH` — write the S12 live-store churn measurements
//!   (queries/sec while mutation batches bump epochs, partial index
//!   rebuilds under a tiny staleness budget, epoch-keyed cache hit rate)
//!   as a JSON report (the CI `BENCH_7.json` artifact).
//! * `--crash-json PATH` — write the S13 crash-churn measurements (a
//!   deterministic fault plan kills the WAL mid-churn, restart recovers
//!   the acked prefix from the data directory, a retrying client resumes
//!   through injected connection resets with server-side mutation
//!   dedup) as a JSON report (the CI `BENCH_8.json` artifact).
//! * `--coldstart-json PATH` — write the S14 cold-start measurements
//!   (compact-arena bytes per graph vs. the pointer-rich estimate,
//!   zero-parse binary load time vs. text parse time, answer parity of
//!   the arena representation against the pointer-rich oracle across
//!   every plan × thread count × solver config) as a JSON report (the CI
//!   `BENCH_9.json` artifact).
//! * `--gate` — exit nonzero unless the indexed scan (a) needs no more
//!   exact solver calls than the prefilter-only scan and (b) skips ≥ 30%
//!   of candidates at the partition level, the S8 serving replay
//!   (c) sees a cache hit rate > 0 on its repeated queries with (d) zero
//!   response mismatches against direct evaluation, the S9 solver
//!   sweep (e) ran (the artifact carries it), (f) expanded no more GED /
//!   MCS search nodes than the recorded baselines, and (g) kept the
//!   expanded-node contract against the retained reference solvers —
//!   exact equality for MCS (search order preserved), `≤` for GED (its
//!   cross-edge bound prunes harder) — and the S10 planner scenario
//!   (h) shows `Plan::Auto` performing no more exact solver calls than
//!   the best manual plan and (i) shows skyband pruning active (> 0
//!   candidates excluded by lower bounds alone), and the S11 reactor
//!   scenario (j) holds ≥ 1000 connections on ≤ 2 reactor threads with
//!   (k) zero response mismatches and (l) a query p99 within the
//!   recorded budget, and the S12 churn scenario (m) applies every
//!   mutation batch successfully (one epoch per batch, zero refusals),
//!   (n) keeps a cache hit rate > 0 across epochs, (o) trips ≥ 1 partial
//!   index rebuild under its tiny staleness budget, and (p) sustains
//!   nonzero query throughput while mutating, and the S13 crash-churn
//!   scenario (q) recovers exactly the acked prefix after an injected
//!   WAL crash (epoch and fingerprint equal to a never-crashed oracle),
//!   (r) resumes with every unique mutation applied exactly once, and
//!   (s) shows the injected connection resets forcing client resends
//!   that the server deduplicates by `mutation_id`, and the S14
//!   cold-start scenario (t) fits the compact arena in ≤ 0.6× the
//!   pointer-rich bytes, (u) adopts the saved binary image without
//!   re-parsing inside the load budget, and (v) answers every plan ×
//!   thread × solver combo byte-identically from both representations.
//!   This is the CI perf-regression gate.

use std::time::Instant;

use gss_bench::TextTable;
use gss_core::{
    graph_similarity_skyband, graph_similarity_skyline, GedMode, GraphDatabase, McsMode, Plan,
    PruneStats, QueryOptions, SolverConfig,
};
use gss_datasets::synth::{perturb, random_connected_graph, RandomGraphConfig};
use gss_datasets::workload::{Workload, WorkloadConfig, WorkloadKind};
use gss_diversity::{refine_exact, refine_greedy};
use gss_ged::{beam::beam_ged, bipartite::bipartite_ged, exact_ged, CostModel, GedOptions};
use gss_graph::{Graph, Rng, Vocabulary};
use gss_index::{PivotIndex, PivotIndexConfig};
use gss_mcs::{greedy::greedy_mcs, mcs_edge_size};
use gss_skyline::{bnl_skyline, naive_skyline, sfs_skyline};

/// Median wall time of `runs` executions, in microseconds.
fn time_us<F: FnMut()>(runs: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..runs.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn fmt_us(us: f64) -> String {
    if us >= 1e6 {
        format!("{:.2} s", us / 1e6)
    } else if us >= 1e3 {
        format!("{:.1} ms", us / 1e3)
    } else {
        format!("{us:.0} µs")
    }
}

fn main() {
    let mut json_path: Option<String> = None;
    let mut serve_json_path: Option<String> = None;
    let mut solver_json_path: Option<String> = None;
    let mut plan_json_path: Option<String> = None;
    let mut reactor_json_path: Option<String> = None;
    let mut churn_json_path: Option<String> = None;
    let mut crash_json_path: Option<String> = None;
    let mut coldstart_json_path: Option<String> = None;
    let mut smoke = false;
    let mut gate = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--gate" => gate = true,
            "--json" => match args.next() {
                Some(path) => json_path = Some(path),
                None => {
                    eprintln!("--json needs a file path");
                    std::process::exit(2);
                }
            },
            "--serve-json" => match args.next() {
                Some(path) => serve_json_path = Some(path),
                None => {
                    eprintln!("--serve-json needs a file path");
                    std::process::exit(2);
                }
            },
            "--solver-json" => match args.next() {
                Some(path) => solver_json_path = Some(path),
                None => {
                    eprintln!("--solver-json needs a file path");
                    std::process::exit(2);
                }
            },
            "--plan-json" => match args.next() {
                Some(path) => plan_json_path = Some(path),
                None => {
                    eprintln!("--plan-json needs a file path");
                    std::process::exit(2);
                }
            },
            "--reactor-json" => match args.next() {
                Some(path) => reactor_json_path = Some(path),
                None => {
                    eprintln!("--reactor-json needs a file path");
                    std::process::exit(2);
                }
            },
            "--churn-json" => match args.next() {
                Some(path) => churn_json_path = Some(path),
                None => {
                    eprintln!("--churn-json needs a file path");
                    std::process::exit(2);
                }
            },
            "--crash-json" => match args.next() {
                Some(path) => crash_json_path = Some(path),
                None => {
                    eprintln!("--crash-json needs a file path");
                    std::process::exit(2);
                }
            },
            "--coldstart-json" => match args.next() {
                Some(path) => coldstart_json_path = Some(path),
                None => {
                    eprintln!("--coldstart-json needs a file path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!(
                    "unknown flag {other:?} (expected --smoke, --gate, --json PATH, \
                     --serve-json PATH, --solver-json PATH, --plan-json PATH, \
                     --reactor-json PATH, --churn-json PATH, --crash-json PATH, \
                     --coldstart-json PATH)"
                );
                std::process::exit(2);
            }
        }
    }

    if !smoke {
        s1_skyline();
        s2_ged();
        s3_mcs();
        s4_query();
        s5_diversity();
        s6_prefilter();
    }
    let report = s7_index();
    if let Some(path) = &json_path {
        std::fs::write(path, report.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("wrote {path}");
    }
    let serve_report = s8_serve();
    if let Some(path) = &serve_json_path {
        std::fs::write(path, serve_report.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("wrote {path}");
    }
    let solver_report = s9_solvers();
    if let Some(path) = &solver_json_path {
        std::fs::write(path, solver_report.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("wrote {path}");
    }
    let plan_report = s10_plans();
    if let Some(path) = &plan_json_path {
        std::fs::write(path, plan_report.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("wrote {path}");
    }
    let reactor_report = s11_reactor();
    if let Some(path) = &reactor_json_path {
        std::fs::write(path, reactor_report.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("wrote {path}");
    }
    let churn_report = s12_churn();
    if let Some(path) = &churn_json_path {
        std::fs::write(path, churn_report.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("wrote {path}");
    }
    let crash_report = s13_crash_churn();
    if let Some(path) = &crash_json_path {
        std::fs::write(path, crash_report.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("wrote {path}");
    }
    let coldstart_report = s14_coldstart();
    if let Some(path) = &coldstart_json_path {
        std::fs::write(path, coldstart_report.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("wrote {path}");
    }
    if gate {
        let mut failed = false;
        if !report.gate_solver_calls() {
            eprintln!(
                "GATE FAILED: indexed scan verified {} candidates, prefilter-only verified {} \
                 — the index must not cost extra exact solver calls",
                report.indexed.0.verified, report.prefilter.0.verified
            );
            failed = true;
        }
        if !report.gate_skip_rate() {
            eprintln!(
                "GATE FAILED: index skipped {:.1}% of candidates at the partition level \
                 (required: ≥ 30%)",
                report.indexed.0.index_skip_rate() * 100.0
            );
            failed = true;
        }
        if !serve_report.gate_cache_hits() {
            eprintln!(
                "GATE FAILED: serving replay saw cache hit rate {:.3} — repeated queries \
                 must hit the result cache",
                serve_report.cache_hit_rate
            );
            failed = true;
        }
        if !serve_report.gate_no_mismatches() {
            eprintln!(
                "GATE FAILED: {} of {} served responses differ from direct evaluation",
                serve_report.mismatches, serve_report.requests
            );
            failed = true;
        }
        if !solver_report.gate_present() {
            eprintln!("GATE FAILED: S9 solver sweep measured no pairs — artifact incomplete");
            failed = true;
        }
        if !solver_report.gate_expanded_baseline() {
            eprintln!(
                "GATE FAILED: solver kernels expanded more nodes than the recorded baseline \
                 (GED {} vs ≤ {}, MCS {} vs ≤ {})",
                solver_report.ged_expanded,
                S9_GED_EXPANDED_BASELINE,
                solver_report.mcs_expanded,
                S9_MCS_EXPANDED_BASELINE
            );
            failed = true;
        }
        if !solver_report.gate_parity() {
            eprintln!(
                "GATE FAILED: kernel/reference expanded-node contract broken \
                 (GED {} vs {}, must be ≤; MCS {} vs {}, must be equal)",
                solver_report.ged_expanded,
                solver_report.ged_ref_expanded,
                solver_report.mcs_expanded,
                solver_report.mcs_ref_expanded
            );
            failed = true;
        }
        if !plan_report.gate_auto_economical() {
            eprintln!(
                "GATE FAILED: Plan::Auto ({}) ran {} exact solver calls, the best manual plan \
                 ran {} — Auto must never cost extra solver calls",
                plan_report.auto_resolved,
                plan_report.auto.0.verified,
                plan_report.best_manual_verified()
            );
            failed = true;
        }
        if !plan_report.gate_skyband_pruning() {
            eprintln!(
                "GATE FAILED: the pruned skyband excluded 0 candidates by lower bounds \
                 (verified {} of {}) — skyband pruning must be active on the smoke workload",
                plan_report.skyband.0.verified, plan_report.skyband.0.candidates
            );
            failed = true;
        }
        if !reactor_report.gate_scale() {
            eprintln!(
                "GATE FAILED: the reactor scenario held {} connections on {} reactor threads \
                 — the contract is ≥ 1000 connections on ≤ 2 threads",
                reactor_report.connections, reactor_report.reactor_threads
            );
            failed = true;
        }
        if !reactor_report.gate_no_mismatches() {
            eprintln!(
                "GATE FAILED: {} of {} reactor-served responses differ from direct evaluation \
                 (or an idle connection stopped answering)",
                reactor_report.mismatches, reactor_report.requests
            );
            failed = true;
        }
        if !reactor_report.gate_latency() {
            eprintln!(
                "GATE FAILED: reactor query p99 was {:.0} µs under a {}-connection wall \
                 (budget: {:.0} µs) — the readiness layer is stalling",
                reactor_report.p99_us, reactor_report.connections, S11_P99_BUDGET_US
            );
            failed = true;
        }
        if !churn_report.gate_mutations() {
            eprintln!(
                "GATE FAILED: churn applied {} batches with {} failures over {} epochs \
                 — every batch must land and bump exactly one epoch",
                churn_report.mutation_batches, churn_report.mutation_failures, churn_report.epochs
            );
            failed = true;
        }
        if !churn_report.gate_cache_hits() {
            eprintln!(
                "GATE FAILED: churn replay saw cache hit rate {:.3} — the epoch-keyed cache \
                 must still serve hits once mutation stops",
                churn_report.cache_hit_rate
            );
            failed = true;
        }
        if !churn_report.gate_partial_rebuilds() {
            eprintln!(
                "GATE FAILED: churn ran {} partial index rebuilds with a staleness budget of {} \
                 over {} batches — the budget must trip incremental maintenance into rebuilds",
                churn_report.partial_rebuilds,
                churn_report.staleness_budget,
                churn_report.mutation_batches
            );
            failed = true;
        }
        if !churn_report.gate_throughput() {
            eprintln!(
                "GATE FAILED: churn served {} queries at {:.1} q/s — queries must keep flowing \
                 while the store mutates",
                churn_report.requests, churn_report.qps
            );
            failed = true;
        }
        if !crash_report.gate_recovery() {
            eprintln!(
                "GATE FAILED: crash-churn acked {} batches but recovery reached epoch {} \
                 (fingerprint match: {}) — restart must recover exactly the acked prefix",
                crash_report.acked_before_crash,
                crash_report.recovered_epoch,
                crash_report.fingerprint_match
            );
            failed = true;
        }
        if !crash_report.gate_continuity() {
            eprintln!(
                "GATE FAILED: crash-churn resumed {} mutations from epoch {} but ended at \
                 epoch {} — every unique mutation must apply exactly once",
                crash_report.resumed_mutations,
                crash_report.acked_before_crash,
                crash_report.final_epoch
            );
            failed = true;
        }
        if !crash_report.gate_retries() {
            eprintln!(
                "GATE FAILED: crash-churn saw {} client retries and {} deduped replays \
                 — the injected resets must force resends that dedup server-side",
                crash_report.client_retries, crash_report.deduped_replays
            );
            failed = true;
        }
        if !coldstart_report.gate_compaction() {
            eprintln!(
                "GATE FAILED: cold-start arena uses {} bytes vs {} pointer-rich \
                 ({:.2}x > {COMPACTION_CEILING}x ceiling) — compaction must pay for itself",
                coldstart_report.arena_bytes,
                coldstart_report.pointer_rich_bytes,
                coldstart_report.compaction_ratio(),
            );
            failed = true;
        }
        if !coldstart_report.gate_load() {
            eprintln!(
                "GATE FAILED: cold-start load took {:.2} ms (budget {COLD_START_BUDGET_MS} ms, \
                 adopted compact: {}) — the binary path must adopt the bytes, not re-parse",
                coldstart_report.load_ms, coldstart_report.adopted_compact,
            );
            failed = true;
        }
        if !coldstart_report.gate_parity() {
            eprintln!(
                "GATE FAILED: cold-start parity sweep saw {} mismatches over {} combos \
                 — arena-backed answers must be byte-identical to the pointer-rich oracle",
                coldstart_report.mismatches, coldstart_report.combos,
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "gate passed: indexed verified {} ≤ prefilter verified {}; index skipped {:.1}% ≥ 30%; \
             serving cache hit rate {:.2} > 0 with 0 mismatches over {} requests; \
             solver expanded nodes at baseline (GED {}, MCS {}) with {:.1}x kernel speedup; \
             Auto resolved to {} at {} solver calls ≤ best manual {}; skyband excluded {} of {} \
             candidates without solving",
            report.indexed.0.verified,
            report.prefilter.0.verified,
            report.indexed.0.index_skip_rate() * 100.0,
            serve_report.cache_hit_rate,
            serve_report.requests,
            solver_report.ged_expanded,
            solver_report.mcs_expanded,
            solver_report.combined_speedup(),
            plan_report.auto_resolved,
            plan_report.auto.0.verified,
            plan_report.best_manual_verified(),
            plan_report.skyband.0.candidates - plan_report.skyband.0.verified
                - plan_report.skyband.0.short_circuited,
            plan_report.skyband.0.candidates,
        );
        println!(
            "reactor gate passed: {} connections on {} reactor threads, query p99 {:.0} µs \
             ≤ {:.0} µs, 0 mismatches over {} requests",
            reactor_report.connections,
            reactor_report.reactor_threads,
            reactor_report.p99_us,
            S11_P99_BUDGET_US,
            reactor_report.requests,
        );
        println!(
            "churn gate passed: {} mutation batches → {} epochs with 0 failures, \
             {} partial rebuilds under budget {}, cache hit rate {:.2} > 0, \
             {:.0} q/s over {} queries while mutating",
            churn_report.mutation_batches,
            churn_report.epochs,
            churn_report.partial_rebuilds,
            churn_report.staleness_budget,
            churn_report.cache_hit_rate,
            churn_report.qps,
            churn_report.requests,
        );
        println!(
            "crash gate passed: {} acked batches recovered to epoch {} (fingerprint match), \
             {} resumed mutations reached epoch {} through {} retries with {} deduped replays \
             and 0 duplicate applications",
            crash_report.acked_before_crash,
            crash_report.recovered_epoch,
            crash_report.resumed_mutations,
            crash_report.final_epoch,
            crash_report.client_retries,
            crash_report.deduped_replays,
        );
        println!(
            "coldstart gate passed: {} bytes/graph ≤ {:.1}x of {} pointer-rich bytes/graph, \
             zero-parse load {:.2} ms ≤ {COLD_START_BUDGET_MS} ms (vs {:.2} ms text parse), \
             0 mismatches over {} plan/thread/solver combos",
            coldstart_report.arena_bytes_per_graph,
            COMPACTION_CEILING,
            coldstart_report.pointer_rich_bytes_per_graph,
            coldstart_report.load_ms,
            coldstart_report.parse_ms,
            coldstart_report.combos,
        );
    }
}

/// The S10 measurements: the unified planner on the committed smoke
/// workload — `Plan::Auto` against every manual plan for the skyline
/// scan, plus the pruned skyband — the `BENCH_5.json` artifact.
struct PlanReport {
    /// (stats, median wall µs) per plan. The naive scan has no
    /// `PruneStats`; its entry counts every candidate as verified, which
    /// is exactly what it executes.
    naive: (PruneStats, f64),
    prefilter: (PruneStats, f64),
    indexed: (PruneStats, f64),
    auto: (PruneStats, f64),
    /// What `Plan::Auto` resolved to (`"indexed"` with the index attached).
    auto_resolved: &'static str,
    /// (stats, median wall µs) of the pruned (Auto) k-skyband, plus its
    /// membership count and the k it ran with.
    skyband: (PruneStats, f64),
    skyband_k: usize,
    skyband_members: usize,
}

impl PlanReport {
    fn best_manual_verified(&self) -> usize {
        self.naive
            .0
            .verified
            .min(self.prefilter.0.verified)
            .min(self.indexed.0.verified)
    }

    fn gate_auto_economical(&self) -> bool {
        self.auto.0.verified <= self.best_manual_verified()
    }

    /// Skyband pruning is active when at least one candidate was excluded
    /// by lower bounds alone (pruned or skipped wholesale — anything not
    /// verified and not short-circuited).
    fn gate_skyband_pruning(&self) -> bool {
        self.skyband.0.candidates > self.skyband.0.verified + self.skyband.0.short_circuited
    }

    fn to_json(&self) -> String {
        let cfg = WorkloadConfig::bench_smoke();
        let stats = |s: &PruneStats, wall: f64| {
            format!(
                "{{\"candidates\": {}, \"verified\": {}, \"pruned\": {}, \
                 \"short_circuited\": {}, \"index_skipped\": {}, \"pruning_rate\": {:.4}, \
                 \"wall_us\": {:.1}}}",
                s.candidates,
                s.verified,
                s.pruned,
                s.short_circuited,
                s.index_skipped,
                s.pruning_rate(),
                wall
            )
        };
        format!(
            "{{\n  \"schema\": \"gss-bench-plans/1\",\n  \"workload\": {{\"kind\": \"molecule\", \
             \"database_size\": {}, \"graph_vertices\": {}, \"related_fraction\": {}, \
             \"seed\": {}}},\n  \"plans\": {{\n    \"naive\": {},\n    \"prefilter\": {},\n    \
             \"indexed\": {},\n    \"auto\": {}\n  }},\n  \"auto_resolved\": \"{}\",\n  \
             \"skyband\": {{\"k\": {}, \"members\": {}, \"stats\": {}}},\n  \
             \"gate\": {{\"auto_verified_le_best_manual\": {}, \"best_manual_verified\": {}, \
             \"skyband_pruning_active\": {}}}\n}}\n",
            cfg.database_size,
            cfg.graph_vertices,
            cfg.related_fraction,
            cfg.seed,
            stats(&self.naive.0, self.naive.1),
            stats(&self.prefilter.0, self.prefilter.1),
            stats(&self.indexed.0, self.indexed.1),
            stats(&self.auto.0, self.auto.1),
            self.auto_resolved,
            self.skyband_k,
            self.skyband_members,
            stats(&self.skyband.0, self.skyband.1),
            self.gate_auto_economical(),
            self.best_manual_verified(),
            self.gate_skyband_pruning(),
        )
    }
}

/// S10: the unified planner on the committed smoke workload — every plan
/// runs the same query (with the pivot index attached so `Indexed` and
/// `Auto` can use it) and must return the identical answer; the report
/// compares their exact-solver spend, and the pruned skyband rides along.
fn s10_plans() -> PlanReport {
    use gss_core::ResolvedPlan;

    println!("== S10: planner — Auto vs manual plans (committed smoke workload) ==");
    let w = Workload::generate(&WorkloadConfig::bench_smoke());
    let db = GraphDatabase::from_parts(w.vocab, w.graphs);
    let index = std::sync::Arc::new(PivotIndex::build(&db, &PivotIndexConfig::default()));

    let options = |plan: Plan| -> QueryOptions {
        QueryOptions {
            plan,
            ..QueryOptions::default()
        }
        .with_index(index.clone())
    };
    let measure = |plan: Plan| -> (PruneStats, f64, ResolvedPlan) {
        let opts = options(plan);
        let wall = time_us(3, || {
            graph_similarity_skyline(&db, &w.query, &opts);
        });
        let r = graph_similarity_skyline(&db, &w.query, &opts);
        let stats = r.pruning.unwrap_or(PruneStats {
            candidates: db.len(),
            verified: db.len(),
            ..PruneStats::default()
        });
        (stats, wall, r.plan)
    };

    let naive = measure(Plan::Naive);
    let prefilter = measure(Plan::Prefilter);
    let indexed = measure(Plan::Indexed);
    let auto = measure(Plan::Auto);

    // Answer parity across plans (the executor's core contract).
    let baseline = graph_similarity_skyline(&db, &w.query, &options(Plan::Naive));
    for plan in [Plan::Prefilter, Plan::Indexed, Plan::Auto] {
        let r = graph_similarity_skyline(&db, &w.query, &options(plan));
        assert_eq!(r.skyline, baseline.skyline, "{plan:?} changed the answer");
        assert_eq!(
            r.dominated, baseline.dominated,
            "{plan:?} changed witnesses"
        );
    }

    // The pruned skyband under Auto, checked against the naive skyband.
    const SKYBAND_K: usize = 2;
    let skyband_wall = time_us(3, || {
        graph_similarity_skyband(&db, &w.query, SKYBAND_K, &options(Plan::Auto));
    });
    let band = graph_similarity_skyband(&db, &w.query, SKYBAND_K, &options(Plan::Auto));
    let naive_band = graph_similarity_skyband(&db, &w.query, SKYBAND_K, &options(Plan::Naive));
    assert_eq!(
        band.members, naive_band.members,
        "pruned skyband changed membership"
    );
    let band_stats = band.pruning.expect("pruned skyband stats");

    let mut table = TextTable::new(vec![
        "plan", "wall", "verified", "pruned", "short", "skipped",
    ]);
    let row = |t: &mut TextTable, name: &str, s: &PruneStats, wall: f64| {
        t.row(vec![
            name.to_owned(),
            fmt_us(wall),
            format!("{}", s.verified),
            format!("{}", s.pruned),
            format!("{}", s.short_circuited),
            format!("{}", s.index_skipped),
        ]);
    };
    row(&mut table, "naive", &naive.0, naive.1);
    row(&mut table, "prefilter", &prefilter.0, prefilter.1);
    row(&mut table, "indexed", &indexed.0, indexed.1);
    row(
        &mut table,
        &format!("auto→{}", auto.2.name()),
        &auto.0,
        auto.1,
    );
    row(
        &mut table,
        &format!("skyband k={SKYBAND_K}"),
        &band_stats,
        skyband_wall,
    );
    println!("{}", table.render());
    println!(
        "all plans agree on {} skyline members and {} witnesses; skyband k={SKYBAND_K} has {} members",
        baseline.skyline.len(),
        baseline.dominated.len(),
        band.members.len()
    );
    println!();

    PlanReport {
        naive: (naive.0, naive.1),
        prefilter: (prefilter.0, prefilter.1),
        indexed: (indexed.0, indexed.1),
        auto: (auto.0, auto.1),
        auto_resolved: auto.2.name(),
        skyband: (band_stats, skyband_wall),
        skyband_k: SKYBAND_K,
        skyband_members: band.members.len(),
    }
}

/// Recorded S9 baselines on the committed smoke workload: total search
/// nodes the exact solvers expand over all 120 query/candidate pairs. The
/// kernels are deterministic, so any increase is a real search-order or
/// bound regression; re-record deliberately when the workload or the
/// candidate ordering changes.
const S9_GED_EXPANDED_BASELINE: u64 = 35_766;
const S9_MCS_EXPANDED_BASELINE: u64 = 1_536;

/// The S9 measurements: solver-kernel wall times (bitset kernels vs the
/// retained reference implementations) and expanded-node counters over the
/// committed smoke workload — the `BENCH_4.json` artifact.
struct SolverReport {
    pairs: usize,
    ged_wall_us: f64,
    ged_ref_wall_us: f64,
    ged_expanded: u64,
    ged_ref_expanded: u64,
    bipartite_wall_us: f64,
    bipartite_ref_wall_us: f64,
    mcs_wall_us: f64,
    mcs_ref_wall_us: f64,
    mcs_expanded: u64,
    mcs_ref_expanded: u64,
    vf2_wall_us: f64,
}

impl SolverReport {
    fn gate_present(&self) -> bool {
        self.pairs > 0
    }

    fn gate_expanded_baseline(&self) -> bool {
        self.ged_expanded <= S9_GED_EXPANDED_BASELINE
            && self.mcs_expanded <= S9_MCS_EXPANDED_BASELINE
    }

    /// GED may expand fewer nodes than the reference (its cross-edge bound
    /// is strictly stronger) but never more; the MCS rewrite preserves the
    /// search order exactly.
    fn gate_parity(&self) -> bool {
        self.ged_expanded <= self.ged_ref_expanded && self.mcs_expanded == self.mcs_ref_expanded
    }

    /// Headline solver-level speedup: total reference wall time over total
    /// kernel wall time, across the exact GED, bipartite and MCS sweeps.
    fn combined_speedup(&self) -> f64 {
        let new = self.ged_wall_us + self.bipartite_wall_us + self.mcs_wall_us;
        let reference = self.ged_ref_wall_us + self.bipartite_ref_wall_us + self.mcs_ref_wall_us;
        reference / new.max(1e-9)
    }

    fn to_json(&self) -> String {
        let cfg = WorkloadConfig::bench_smoke();
        format!(
            "{{\n  \"schema\": \"gss-bench-solvers/1\",\n  \"workload\": {{\"kind\": \"molecule\", \
             \"database_size\": {}, \"graph_vertices\": {}, \"related_fraction\": {}, \
             \"seed\": {}}},\n  \"pairs\": {},\n  \"ged_exact\": {{\"wall_us\": {:.1}, \
             \"ref_wall_us\": {:.1}, \"speedup\": {:.2}, \"expanded\": {}, \
             \"ref_expanded\": {}}},\n  \"ged_bipartite\": {{\"wall_us\": {:.1}, \
             \"ref_wall_us\": {:.1}, \"speedup\": {:.2}}},\n  \"mcs_exact\": {{\"wall_us\": {:.1}, \
             \"ref_wall_us\": {:.1}, \"speedup\": {:.2}, \"expanded\": {}, \
             \"ref_expanded\": {}}},\n  \"vf2\": {{\"wall_us\": {:.1}}},\n  \
             \"combined_speedup\": {:.2},\n  \"gate\": {{\"s9_present\": {}, \
             \"expanded_le_baseline\": {}, \"expanded_parity\": {}, \
             \"ged_expanded_baseline\": {}, \"mcs_expanded_baseline\": {}}}\n}}\n",
            cfg.database_size,
            cfg.graph_vertices,
            cfg.related_fraction,
            cfg.seed,
            self.pairs,
            self.ged_wall_us,
            self.ged_ref_wall_us,
            self.ged_ref_wall_us / self.ged_wall_us.max(1e-9),
            self.ged_expanded,
            self.ged_ref_expanded,
            self.bipartite_wall_us,
            self.bipartite_ref_wall_us,
            self.bipartite_ref_wall_us / self.bipartite_wall_us.max(1e-9),
            self.mcs_wall_us,
            self.mcs_ref_wall_us,
            self.mcs_ref_wall_us / self.mcs_wall_us.max(1e-9),
            self.mcs_expanded,
            self.mcs_ref_expanded,
            self.vf2_wall_us,
            self.combined_speedup(),
            self.gate_present(),
            self.gate_expanded_baseline(),
            self.gate_parity(),
            S9_GED_EXPANDED_BASELINE,
            S9_MCS_EXPANDED_BASELINE,
        )
    }
}

/// S9: the solver kernels the skyline scans bottom out in, swept over
/// every query/candidate pair of the committed smoke workload — bitset
/// kernels vs the retained reference implementations.
fn s9_solvers() -> SolverReport {
    use gss_ged::bipartite::{bipartite_ged, bipartite_ged_with};
    use gss_ged::reference::reference_exact_ged;
    use gss_ged::{exact_ged, CostModel, GedOptions, VertexMapping};
    use gss_mcs::reference::maximum_common_subgraph_reference;
    use gss_mcs::{maximum_common_subgraph_expanded, Objective};

    println!("== S9: solver kernels vs retained references (committed smoke workload) ==");
    let w = Workload::generate(&WorkloadConfig::bench_smoke());
    let db = GraphDatabase::from_parts(w.vocab, w.graphs);
    let query = &w.query;
    let cost = CostModel::uniform();

    // Warm starts once per pair (the scans warm-start the same way), so the
    // timed loops measure exactly one solver each.
    let mut ws = gss_ged::Workspace::new();
    let warms: Vec<VertexMapping> = db
        .iter()
        .map(|(_, g)| bipartite_ged_with(g, query, &cost, &mut ws).mapping)
        .collect();
    let opts = |warm: &VertexMapping| GedOptions {
        cost,
        warm_start: Some(warm.clone()),
        node_limit: None,
    };

    let mut ged_expanded = 0u64;
    let ged_wall = time_us(3, || {
        ged_expanded = 0;
        for ((_, g), warm) in db.iter().zip(&warms) {
            ged_expanded += exact_ged(g, query, &opts(warm)).expanded;
        }
    });
    let mut ged_ref_expanded = 0u64;
    let ged_ref_wall = time_us(3, || {
        ged_ref_expanded = 0;
        for ((_, g), warm) in db.iter().zip(&warms) {
            ged_ref_expanded += reference_exact_ged(g, query, &opts(warm)).expanded;
        }
    });

    let bip_wall = time_us(3, || {
        for (_, g) in db.iter() {
            std::hint::black_box(bipartite_ged_with(g, query, &cost, &mut ws).cost);
        }
    });
    let bip_ref_wall = time_us(3, || {
        for (_, g) in db.iter() {
            std::hint::black_box(bipartite_ged(g, query, &cost).cost);
        }
    });

    let mut mcs_expanded = 0u64;
    let mcs_wall = time_us(3, || {
        mcs_expanded = 0;
        for (_, g) in db.iter() {
            mcs_expanded += maximum_common_subgraph_expanded(g, query, Objective::Edges).1;
        }
    });
    let mut mcs_ref_expanded = 0u64;
    let mcs_ref_wall = time_us(3, || {
        mcs_ref_expanded = 0;
        for (_, g) in db.iter() {
            mcs_ref_expanded += maximum_common_subgraph_reference(g, query, Objective::Edges).1;
        }
    });

    let vf2_wall = time_us(3, || {
        for (_, g) in db.iter() {
            std::hint::black_box(gss_iso::are_isomorphic(g, query));
        }
    });

    let report = SolverReport {
        pairs: db.len(),
        ged_wall_us: ged_wall,
        ged_ref_wall_us: ged_ref_wall,
        ged_expanded,
        ged_ref_expanded,
        bipartite_wall_us: bip_wall,
        bipartite_ref_wall_us: bip_ref_wall,
        mcs_wall_us: mcs_wall,
        mcs_ref_wall_us: mcs_ref_wall,
        mcs_expanded,
        mcs_ref_expanded,
        vf2_wall_us: vf2_wall,
    };

    let mut table = TextTable::new(vec!["solver", "bitset", "reference", "speedup", "expanded"]);
    table.row(vec![
        "ged-exact".into(),
        fmt_us(report.ged_wall_us),
        fmt_us(report.ged_ref_wall_us),
        format!(
            "{:.2}x",
            report.ged_ref_wall_us / report.ged_wall_us.max(1e-9)
        ),
        format!("{}", report.ged_expanded),
    ]);
    table.row(vec![
        "ged-bipartite".into(),
        fmt_us(report.bipartite_wall_us),
        fmt_us(report.bipartite_ref_wall_us),
        format!(
            "{:.2}x",
            report.bipartite_ref_wall_us / report.bipartite_wall_us.max(1e-9)
        ),
        "-".into(),
    ]);
    table.row(vec![
        "mcs-exact".into(),
        fmt_us(report.mcs_wall_us),
        fmt_us(report.mcs_ref_wall_us),
        format!(
            "{:.2}x",
            report.mcs_ref_wall_us / report.mcs_wall_us.max(1e-9)
        ),
        format!("{}", report.mcs_expanded),
    ]);
    table.row(vec![
        "vf2-iso".into(),
        fmt_us(report.vf2_wall_us),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);
    println!("{}", table.render());
    println!(
        "{} pairs; combined exact-kernel speedup {:.2}x",
        report.pairs,
        report.combined_speedup()
    );
    println!();
    report
}

/// The S7 measurements that feed the report table, the JSON artifact and
/// the CI gate.
struct SmokeReport {
    pivots: usize,
    partitions: usize,
    build_us: f64,
    /// (stats, median wall µs) of the prefilter-only scan.
    prefilter: (PruneStats, f64),
    /// (stats, median wall µs) of the indexed scan.
    indexed: (PruneStats, f64),
}

impl SmokeReport {
    fn gate_solver_calls(&self) -> bool {
        self.indexed.0.verified <= self.prefilter.0.verified
    }

    fn gate_skip_rate(&self) -> bool {
        self.indexed.0.index_skip_rate() >= 0.30
    }

    fn to_json(&self) -> String {
        let cfg = WorkloadConfig::bench_smoke();
        let stats = |s: &PruneStats, wall: f64| {
            format!(
                "{{\"candidates\": {}, \"verified\": {}, \"pruned\": {}, \
                 \"short_circuited\": {}, \"index_skipped\": {}, \"pruning_rate\": {:.4}, \
                 \"index_skip_rate\": {:.4}, \"pivot_probes\": {}, \"wall_us\": {:.1}}}",
                s.candidates,
                s.verified,
                s.pruned,
                s.short_circuited,
                s.index_skipped,
                s.pruning_rate(),
                s.index_skip_rate(),
                s.pivot_probes,
                wall
            )
        };
        format!(
            "{{\n  \"schema\": \"gss-bench-smoke/2\",\n  \"workload\": {{\"kind\": \"molecule\", \
             \"database_size\": {}, \"graph_vertices\": {}, \"related_fraction\": {}, \
             \"seed\": {}}},\n  \"index\": {{\"pivots\": {}, \"partitions\": {}, \
             \"build_us\": {:.1}}},\n  \"prefilter\": {},\n  \"indexed\": {},\n  \
             \"gate\": {{\"indexed_verified_le_prefilter\": {}, \"index_skip_rate_ge_30pct\": {}}}\n}}\n",
            cfg.database_size,
            cfg.graph_vertices,
            cfg.related_fraction,
            cfg.seed,
            self.pivots,
            self.partitions,
            self.build_us,
            stats(&self.prefilter.0, self.prefilter.1),
            stats(&self.indexed.0, self.indexed.1),
            self.gate_solver_calls(),
            self.gate_skip_rate(),
        )
    }
}

fn s7_index() -> SmokeReport {
    println!("== S7: pivot index vs prefilter (committed smoke workload) ==");
    let w = Workload::generate(&WorkloadConfig::bench_smoke());
    let db = GraphDatabase::from_parts(w.vocab, w.graphs);

    let t = Instant::now();
    let index = std::sync::Arc::new(PivotIndex::build(&db, &PivotIndexConfig::default()));
    let build_us = t.elapsed().as_secs_f64() * 1e6;

    let prefilter_opts = QueryOptions {
        prefilter: true,
        ..QueryOptions::default()
    };
    let indexed_opts = QueryOptions::default().with_index(index.clone());

    let pre_wall = time_us(3, || {
        graph_similarity_skyline(&db, &w.query, &prefilter_opts);
    });
    let idx_wall = time_us(3, || {
        graph_similarity_skyline(&db, &w.query, &indexed_opts);
    });

    let pre = graph_similarity_skyline(&db, &w.query, &prefilter_opts);
    let idx = graph_similarity_skyline(&db, &w.query, &indexed_opts);
    let naive = graph_similarity_skyline(
        &db,
        &w.query,
        &QueryOptions {
            plan: Plan::Naive,
            ..QueryOptions::default()
        },
    );
    assert_eq!(
        idx.skyline, naive.skyline,
        "index must not change the answer"
    );
    assert_eq!(
        idx.dominated, naive.dominated,
        "index must not change witnesses"
    );
    assert_eq!(pre.skyline, naive.skyline);
    assert_eq!(pre.dominated, naive.dominated);

    let pre_stats = pre.pruning.expect("prefilter stats");
    let idx_stats = idx.pruning.expect("indexed stats");
    let mut table = TextTable::new(vec![
        "scan", "wall", "verified", "pruned", "short", "skipped", "skip %",
    ]);
    let row = |t: &mut TextTable, name: &str, s: &PruneStats, wall: f64| {
        t.row(vec![
            name.to_owned(),
            fmt_us(wall),
            format!("{}", s.verified),
            format!("{}", s.pruned),
            format!("{}", s.short_circuited),
            format!("{}", s.index_skipped),
            format!("{:.0}%", s.index_skip_rate() * 100.0),
        ]);
    };
    row(&mut table, "prefilter", &pre_stats, pre_wall);
    row(&mut table, "indexed", &idx_stats, idx_wall);
    println!("{}", table.render());
    println!(
        "index: {} pivots, {} partitions ({} skipped wholesale), built in {}",
        index.pivots().len(),
        index.partition_count(),
        idx_stats.index_partitions_skipped,
        fmt_us(build_us)
    );
    println!();

    SmokeReport {
        pivots: index.pivots().len(),
        partitions: index.partition_count(),
        build_us,
        prefilter: (pre_stats, pre_wall),
        indexed: (idx_stats, idx_wall),
    }
}

/// The S8 serving measurements: a loopback `gss-server` on the committed
/// smoke workload, replayed by concurrent clients. Feeds the report
/// table, the `BENCH_3.json` artifact and the serving half of the CI
/// gate.
struct ServeReport {
    distinct_queries: usize,
    passes: usize,
    connections: usize,
    requests: usize,
    wall_s: f64,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    max_us: f64,
    cache_hits: u64,
    cache_hit_rate: f64,
    batches: u64,
    batched_queries: u64,
    mismatches: usize,
}

impl ServeReport {
    fn gate_cache_hits(&self) -> bool {
        self.cache_hit_rate > 0.0
    }

    fn gate_no_mismatches(&self) -> bool {
        self.mismatches == 0
    }

    fn to_json(&self) -> String {
        let cfg = WorkloadConfig::bench_smoke();
        format!(
            "{{\n  \"schema\": \"gss-bench-serve/1\",\n  \"workload\": {{\"kind\": \"molecule\", \
             \"database_size\": {}, \"graph_vertices\": {}, \"related_fraction\": {}, \
             \"seed\": {}}},\n  \"replay\": {{\"distinct_queries\": {}, \"passes\": {}, \
             \"connections\": {}, \"requests\": {}}},\n  \"throughput\": {{\"wall_s\": {:.4}, \
             \"queries_per_sec\": {:.1}}},\n  \"latency\": {{\"p50_us\": {:.1}, \
             \"p99_us\": {:.1}, \"max_us\": {:.1}}},\n  \"server\": {{\"cache_hits\": {}, \
             \"cache_hit_rate\": {:.4}, \"batches\": {}, \"batched_queries\": {}}},\n  \
             \"gate\": {{\"cache_hit_rate_gt_0\": {}, \"zero_mismatches\": {}, \
             \"mismatches\": {}}}\n}}\n",
            cfg.database_size,
            cfg.graph_vertices,
            cfg.related_fraction,
            cfg.seed,
            self.distinct_queries,
            self.passes,
            self.connections,
            self.requests,
            self.wall_s,
            self.qps,
            self.p50_us,
            self.p99_us,
            self.max_us,
            self.cache_hits,
            self.cache_hit_rate,
            self.batches,
            self.batched_queries,
            self.gate_cache_hits(),
            self.gate_no_mismatches(),
            self.mismatches,
        )
    }
}

fn s8_serve() -> ServeReport {
    use gss_core::jsonio::Value;
    use gss_core::GraphId;
    use gss_server::{percentile_us, serve, Client, ServerConfig};
    use std::sync::Arc;

    println!("== S8: concurrent serving (loopback gss-server, committed smoke workload) ==");
    let w = Workload::generate(&WorkloadConfig::bench_smoke());
    let db = Arc::new(GraphDatabase::from_parts(w.vocab, w.graphs));

    // The replayed smoke queries: the workload's planted query plus every
    // 10th database graph (a mix of short-circuit-friendly members and
    // real scans).
    let mut queries: Vec<Graph> = vec![w.query.clone()];
    for i in (0..db.len()).step_by(10) {
        queries.push(db.get(GraphId(i)).clone());
    }
    let texts: Vec<String> = queries
        .iter()
        .map(|q| gss_graph::format::write_database(std::slice::from_ref(q), db.vocab()))
        .collect();

    // Direct-evaluation oracle for the mismatch gate: what a
    // single-threaded graph_similarity_skyline call serializes to.
    let base = QueryOptions {
        prefilter: true,
        ..QueryOptions::default()
    };
    let expected: Vec<String> = queries
        .iter()
        .map(|q| {
            let r = graph_similarity_skyline(&db, q, &base);
            Value::parse(&gss_core::to_json(&db, &r))
                .expect("explain output is valid JSON")
                .to_compact()
        })
        .collect();

    const CONNECTIONS: usize = 4;
    const PASSES: usize = 3;
    let handle = serve(
        Arc::clone(&db),
        base,
        ServerConfig {
            workers: 4,
            batch_max: 8,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback server");
    let addr = handle.addr();

    let t0 = Instant::now();
    let worker_results: Vec<(Vec<u64>, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CONNECTIONS)
            .map(|c| {
                let texts = &texts;
                let expected = &expected;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    let mut latencies = Vec::new();
                    let mut mismatches = 0usize;
                    for pass in 0..PASSES {
                        for k in 0..texts.len() {
                            // Stagger the order per connection and pass so
                            // micro-batches mix distinct queries.
                            let k = (k + c + pass) % texts.len();
                            let t = Instant::now();
                            let response = client.query(&texts[k]).expect("query");
                            latencies.push(t.elapsed().as_micros() as u64);
                            let served = match &response {
                                gss_server::Response::Result { result, .. } => result.clone(),
                                _ => String::new(),
                            };
                            if served != expected[k] {
                                mismatches += 1;
                            }
                        }
                    }
                    (latencies, mismatches)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("serve bench worker panicked"))
            .collect()
    });
    let wall_s = t0.elapsed().as_secs_f64();

    let stats = Value::parse(&handle.stats_json()).expect("stats JSON");
    handle.shutdown();
    handle.join();

    let mut latencies: Vec<u64> = Vec::new();
    let mut mismatches = 0usize;
    for (lat, mm) in worker_results {
        latencies.extend(lat);
        mismatches += mm;
    }
    latencies.sort_unstable();
    let counter = |k: &str| stats.get(k).and_then(Value::as_f64).unwrap_or_default() as u64;

    let requests = latencies.len();
    let report = ServeReport {
        distinct_queries: texts.len(),
        passes: PASSES,
        connections: CONNECTIONS,
        requests,
        wall_s,
        qps: requests as f64 / wall_s.max(1e-9),
        p50_us: percentile_us(&latencies, 50),
        p99_us: percentile_us(&latencies, 99),
        max_us: *latencies.last().expect("nonempty") as f64,
        cache_hits: counter("cache_hits"),
        cache_hit_rate: stats
            .get("cache_hit_rate")
            .and_then(Value::as_f64)
            .unwrap_or_default(),
        batches: counter("batches"),
        batched_queries: counter("batched_queries"),
        mismatches,
    };

    let mut table = TextTable::new(vec![
        "requests",
        "wall",
        "q/s",
        "p50",
        "p99",
        "hit %",
        "batches",
        "mismatches",
    ]);
    table.row(vec![
        format!("{}", report.requests),
        fmt_us(report.wall_s * 1e6),
        format!("{:.0}", report.qps),
        fmt_us(report.p50_us),
        fmt_us(report.p99_us),
        format!("{:.0}%", report.cache_hit_rate * 100.0),
        format!("{}", report.batches),
        format!("{}", report.mismatches),
    ]);
    println!("{}", table.render());
    println!(
        "{} distinct queries × {} passes over {} connections (prefilter on)",
        report.distinct_queries, report.passes, report.connections
    );
    println!();
    report
}

/// Recorded S11 latency budget: p99 over the active query replay while a
/// thousand idle connections sit on the reactor. Generous on purpose —
/// the gate exists to catch readiness-layer stalls (missed wakeups,
/// head-of-line blocking across connections), not to benchmark solver
/// throughput.
const S11_P99_BUDGET_US: f64 = 2_000_000.0;

/// The S11 measurements: the epoll reactor front end holding ≥ 1k
/// concurrent connections on ≤ 2 reactor threads — a mostly-idle wall
/// plus an active replay subset — the `BENCH_6.json` artifact.
struct ReactorReport {
    connections: usize,
    idle: usize,
    active: usize,
    reactor_threads: usize,
    requests: usize,
    wall_s: f64,
    qps: f64,
    ping_p50_us: f64,
    ping_p99_us: f64,
    p50_us: f64,
    p99_us: f64,
    max_us: f64,
    mismatches: usize,
}

impl ReactorReport {
    /// The scale contract from the scaling roadmap: ≥ 1k simultaneous
    /// connections multiplexed onto at most two reactor threads.
    fn gate_scale(&self) -> bool {
        self.connections >= 1_000 && self.reactor_threads <= 2
    }

    fn gate_no_mismatches(&self) -> bool {
        self.mismatches == 0
    }

    fn gate_latency(&self) -> bool {
        self.p99_us <= S11_P99_BUDGET_US
    }

    fn to_json(&self) -> String {
        format!(
            "{{\n  \"schema\": \"gss-bench-reactor/1\",\n  \"scale\": {{\"connections\": {}, \
             \"idle\": {}, \"active\": {}, \"reactor_threads\": {}}},\n  \
             \"throughput\": {{\"requests\": {}, \"wall_s\": {:.4}, \
             \"queries_per_sec\": {:.1}}},\n  \"latency\": {{\"ping_p50_us\": {:.1}, \
             \"ping_p99_us\": {:.1}, \"query_p50_us\": {:.1}, \"query_p99_us\": {:.1}, \
             \"query_max_us\": {:.1}}},\n  \"gate\": {{\"connections_ge_1k_on_le_2_reactors\": {}, \
             \"query_p99_budget_us\": {:.0}, \"query_p99_within_budget\": {}, \
             \"zero_mismatches\": {}, \"mismatches\": {}}}\n}}\n",
            self.connections,
            self.idle,
            self.active,
            self.reactor_threads,
            self.requests,
            self.wall_s,
            self.qps,
            self.ping_p50_us,
            self.ping_p99_us,
            self.p50_us,
            self.p99_us,
            self.max_us,
            self.gate_scale(),
            S11_P99_BUDGET_US,
            self.gate_latency(),
            self.gate_no_mismatches(),
            self.mismatches,
        )
    }
}

/// Reads one response line off a raw wire connection. Only safe with a
/// single in-flight request per connection, so a trailing `\n` means the
/// response is complete.
fn read_wire_line(stream: &mut std::net::TcpStream) -> String {
    use std::io::Read;
    let mut buf = Vec::new();
    let mut chunk = [0u8; 256];
    loop {
        let n = stream.read(&mut chunk).expect("read response");
        assert!(n > 0, "server closed the connection mid-response");
        buf.extend_from_slice(&chunk[..n]);
        if buf.last() == Some(&b'\n') {
            return String::from_utf8(buf).expect("response is UTF-8");
        }
    }
}

fn s11_reactor() -> ReactorReport {
    use gss_core::jsonio::Value;
    use gss_core::GraphId;
    use gss_server::{percentile_us, serve, Client, ServerConfig};
    use std::io::Write;
    use std::sync::Arc;

    const IDLE: usize = 1_000;
    const ACTIVE: usize = 16;
    const PASSES: usize = 2;
    const REACTOR_THREADS: usize = 2;

    println!(
        "== S11: reactor front end — {} connections on {} reactor threads ==",
        IDLE + ACTIVE,
        REACTOR_THREADS
    );
    let w = Workload::generate(&WorkloadConfig::bench_smoke());
    let db = Arc::new(GraphDatabase::from_parts(w.vocab, w.graphs));
    let mut queries: Vec<Graph> = vec![w.query.clone()];
    for i in (0..db.len()).step_by(10) {
        queries.push(db.get(GraphId(i)).clone());
    }
    let texts: Vec<String> = queries
        .iter()
        .map(|q| gss_graph::format::write_database(std::slice::from_ref(q), db.vocab()))
        .collect();
    let base = QueryOptions {
        prefilter: true,
        ..QueryOptions::default()
    };
    let expected: Vec<String> = queries
        .iter()
        .map(|q| {
            let r = graph_similarity_skyline(&db, q, &base);
            Value::parse(&gss_core::to_json(&db, &r))
                .expect("explain output is valid JSON")
                .to_compact()
        })
        .collect();

    let handle = serve(
        Arc::clone(&db),
        base,
        ServerConfig {
            workers: 4,
            batch_max: 8,
            reactor_threads: REACTOR_THREADS,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback server");
    let addr = handle.addr();

    // Phase 1 — the idle wall: a thousand raw connections, each proving
    // it is registered with a round-trip ping (timed individually; these
    // percentiles measure the readiness layer, no solver in the path).
    let mut idle_conns: Vec<std::net::TcpStream> = (0..IDLE)
        .map(|_| {
            let s = std::net::TcpStream::connect(addr).expect("connect idle");
            s.set_nodelay(true).expect("nodelay");
            s
        })
        .collect();
    let mut ping_latencies: Vec<u64> = Vec::with_capacity(IDLE);
    for s in &mut idle_conns {
        let t = Instant::now();
        s.write_all(b"{\"op\":\"ping\"}\n").expect("write ping");
        let line = read_wire_line(s);
        ping_latencies.push(t.elapsed().as_micros() as u64);
        assert!(line.contains("\"ok\":true"), "bad pong: {line}");
    }
    ping_latencies.sort_unstable();

    // Phase 2 — the active subset replays the smoke queries through the
    // typed client while the idle wall stays parked on the same reactors.
    let t0 = Instant::now();
    let worker_results: Vec<(Vec<u64>, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..ACTIVE)
            .map(|c| {
                let texts = &texts;
                let expected = &expected;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect active");
                    let mut latencies = Vec::new();
                    let mut mismatches = 0usize;
                    for pass in 0..PASSES {
                        for k in 0..texts.len() {
                            let k = (k + c + pass) % texts.len();
                            let t = Instant::now();
                            let response = client.query(&texts[k]).expect("query");
                            latencies.push(t.elapsed().as_micros() as u64);
                            let served = match &response {
                                gss_server::Response::Result { result, .. } => result.clone(),
                                _ => String::new(),
                            };
                            if served != expected[k] {
                                mismatches += 1;
                            }
                        }
                    }
                    (latencies, mismatches)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("reactor bench worker panicked"))
            .collect()
    });
    let wall_s = t0.elapsed().as_secs_f64();

    // Phase 3 — the storm is over; every idle connection must still be
    // answering (a flood this time: all writes first, then all reads, so
    // a thousand responses are in flight at once).
    let mut mismatches = 0usize;
    for s in &mut idle_conns {
        s.write_all(b"{\"op\":\"ping\"}\n").expect("write ping");
    }
    for s in &mut idle_conns {
        if !read_wire_line(s).contains("\"ok\":true") {
            mismatches += 1;
        }
    }

    drop(idle_conns);
    handle.shutdown();
    handle.join();

    let mut latencies: Vec<u64> = Vec::new();
    for (lat, mm) in worker_results {
        latencies.extend(lat);
        mismatches += mm;
    }
    latencies.sort_unstable();

    let requests = latencies.len();
    let report = ReactorReport {
        connections: IDLE + ACTIVE,
        idle: IDLE,
        active: ACTIVE,
        reactor_threads: REACTOR_THREADS,
        requests,
        wall_s,
        qps: requests as f64 / wall_s.max(1e-9),
        ping_p50_us: percentile_us(&ping_latencies, 50),
        ping_p99_us: percentile_us(&ping_latencies, 99),
        p50_us: percentile_us(&latencies, 50),
        p99_us: percentile_us(&latencies, 99),
        max_us: *latencies.last().expect("nonempty") as f64,
        mismatches,
    };

    let mut table = TextTable::new(vec![
        "conns",
        "reactors",
        "requests",
        "q/s",
        "ping p99",
        "query p50",
        "query p99",
        "mismatches",
    ]);
    table.row(vec![
        format!("{}", report.connections),
        format!("{}", report.reactor_threads),
        format!("{}", report.requests),
        format!("{:.0}", report.qps),
        fmt_us(report.ping_p99_us),
        fmt_us(report.p50_us),
        fmt_us(report.p99_us),
        format!("{}", report.mismatches),
    ]);
    println!("{}", table.render());
    println!(
        "{} idle + {} active connections; idle wall re-pinged after the replay",
        report.idle, report.active
    );
    println!();
    report
}

/// The S12 measurements: interleaved mutation + query churn on the live
/// store — writer batches bump epochs (with a tiny staleness budget so
/// partial index rebuilds happen mid-run) while reader connections keep
/// querying, then a quiescent replay collects epoch-keyed cache hits —
/// the `BENCH_7.json` artifact.
struct ChurnReport {
    distinct_queries: usize,
    churn_readers: usize,
    staleness_budget: u64,
    mutation_batches: u64,
    mutation_failures: usize,
    epochs: u64,
    inserted: u64,
    removed: u64,
    updated: u64,
    requests: usize,
    wall_s: f64,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    cache_hits: u64,
    cache_hit_rate: f64,
    partial_rebuilds: u64,
    full_rebuilds: u64,
    stale_ops: u64,
}

impl ChurnReport {
    fn gate_mutations(&self) -> bool {
        self.mutation_failures == 0
            && self.mutation_batches > 0
            && self.epochs == self.mutation_batches
    }

    fn gate_cache_hits(&self) -> bool {
        self.cache_hit_rate > 0.0
    }

    fn gate_partial_rebuilds(&self) -> bool {
        self.partial_rebuilds >= 1
    }

    fn gate_throughput(&self) -> bool {
        self.requests > 0 && self.qps > 0.0
    }

    fn to_json(&self) -> String {
        let cfg = WorkloadConfig::bench_smoke();
        format!(
            "{{\n  \"schema\": \"gss-bench-churn/1\",\n  \"workload\": {{\"kind\": \"molecule\", \
             \"database_size\": {}, \"graph_vertices\": {}, \"related_fraction\": {}, \
             \"seed\": {}}},\n  \"churn\": {{\"distinct_queries\": {}, \"readers\": {}, \
             \"staleness_budget\": {}, \"mutation_batches\": {}, \"mutation_failures\": {}, \
             \"epochs\": {}, \"inserted\": {}, \"removed\": {}, \"updated\": {}}},\n  \
             \"throughput\": {{\"requests\": {}, \"wall_s\": {:.4}, \
             \"queries_per_sec\": {:.1}}},\n  \"latency\": {{\"p50_us\": {:.1}, \
             \"p99_us\": {:.1}}},\n  \"server\": {{\"cache_hits\": {}, \
             \"cache_hit_rate\": {:.4}}},\n  \"index\": {{\"partial_rebuilds\": {}, \
             \"full_rebuilds\": {}, \"stale_ops\": {}}},\n  \"gate\": {{\
             \"zero_mutation_failures\": {}, \"cache_hit_rate_gt_0\": {}, \
             \"partial_rebuilds_ge_1\": {}, \"throughput_gt_0\": {}}}\n}}\n",
            cfg.database_size,
            cfg.graph_vertices,
            cfg.related_fraction,
            cfg.seed,
            self.distinct_queries,
            self.churn_readers,
            self.staleness_budget,
            self.mutation_batches,
            self.mutation_failures,
            self.epochs,
            self.inserted,
            self.removed,
            self.updated,
            self.requests,
            self.wall_s,
            self.qps,
            self.p50_us,
            self.p99_us,
            self.cache_hits,
            self.cache_hit_rate,
            self.partial_rebuilds,
            self.full_rebuilds,
            self.stale_ops,
            self.gate_mutations(),
            self.gate_cache_hits(),
            self.gate_partial_rebuilds(),
            self.gate_throughput(),
        )
    }
}

fn s12_churn() -> ChurnReport {
    use gss_core::jsonio::Value;
    use gss_core::GraphId;
    use gss_server::{
        percentile_us, serve_store, Client, GraphStore, Response, ServerConfig, StoreConfig,
    };
    use std::sync::Arc;

    const READERS: usize = 3;
    const PASSES: usize = 2;
    const BATCHES: usize = 40;
    const STALENESS_BUDGET: u64 = 4;

    println!(
        "== S12: live-store churn — {BATCHES} mutation batches under {READERS} query readers \
         (committed smoke workload) =="
    );
    let w = Workload::generate(&WorkloadConfig::bench_smoke());
    let db = Arc::new(GraphDatabase::from_parts(w.vocab, w.graphs));
    let store = Arc::new(GraphStore::new(
        Arc::clone(&db),
        StoreConfig {
            index: Some(PivotIndexConfig::default()),
            staleness_budget: STALENESS_BUDGET,
        },
    ));

    let mut queries: Vec<Graph> = vec![w.query.clone()];
    for i in (0..db.len()).step_by(20) {
        queries.push(db.get(GraphId(i)).clone());
    }
    let texts: Vec<String> = queries
        .iter()
        .map(|q| gss_graph::format::write_database(std::slice::from_ref(q), db.vocab()))
        .collect();
    // Writer traffic reuses database structure under fresh names, so the
    // vocabulary never grows and inserted graphs can never be pivots —
    // the churn stays on the incremental/partial maintenance path.
    let donor_text = |i: usize, name: &str| {
        let g = db.get(GraphId(i % db.len()));
        let text = gss_graph::format::write_database(std::slice::from_ref(g), db.vocab());
        let body = text.split_once('\n').map_or("", |(_, b)| b);
        format!("t {name}\n{body}")
    };

    let handle = serve_store(
        Arc::clone(&store),
        QueryOptions {
            prefilter: true,
            ..QueryOptions::default()
        },
        ServerConfig {
            workers: 4,
            batch_max: 8,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback server");
    let addr = handle.addr();

    // Phase 1 — churn: one writer streams mutation batches while the
    // readers replay the query set (each query pinning whatever epoch is
    // current when it is admitted).
    let t0 = Instant::now();
    let (mutation_failures, reader_latencies) = std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            let mut client = Client::connect(addr).expect("connect writer");
            let mut live: std::collections::VecDeque<String> = std::collections::VecDeque::new();
            let mut failures = 0usize;
            for i in 0..BATCHES {
                let response = match i % 8 {
                    5 if !live.is_empty() => {
                        let name = live.pop_front().expect("nonempty");
                        client.remove(&[name]).expect("remove")
                    }
                    7 if !live.is_empty() => {
                        let name = live.back().expect("nonempty").clone();
                        client
                            .update(&name, &donor_text(i * 7 + 3, &name))
                            .expect("update")
                    }
                    _ => {
                        let name = format!("churn{i}");
                        let ack = client
                            .insert(&donor_text(i * 3 + 1, &name))
                            .expect("insert");
                        live.push_back(name);
                        ack
                    }
                };
                if !matches!(response, Response::Mutated { .. }) {
                    failures += 1;
                }
            }
            failures
        });
        let readers: Vec<_> = (0..READERS)
            .map(|c| {
                let texts = &texts;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect reader");
                    let mut latencies = Vec::new();
                    for pass in 0..PASSES {
                        for k in 0..texts.len() {
                            let k = (k + c + pass) % texts.len();
                            let t = Instant::now();
                            let response = client.query(&texts[k]).expect("query");
                            latencies.push(t.elapsed().as_micros() as u64);
                            assert!(response.is_ok(), "churn query refused");
                        }
                    }
                    latencies
                })
            })
            .collect();
        let failures = writer.join().expect("churn writer panicked");
        let latencies: Vec<u64> = readers
            .into_iter()
            .flat_map(|h| h.join().expect("churn reader panicked"))
            .collect();
        (failures, latencies)
    });

    // Phase 2 — quiescent replay: mutations stopped, so replaying the set
    // twice on one connection must produce epoch-keyed cache hits.
    let mut latencies = reader_latencies;
    {
        let mut client = Client::connect(addr).expect("connect replay");
        for _ in 0..2 {
            for text in &texts {
                let t = Instant::now();
                let response = client.query(text).expect("replay query");
                latencies.push(t.elapsed().as_micros() as u64);
                assert!(response.is_ok(), "quiescent replay refused");
            }
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();

    let stats = Value::parse(&handle.stats_json()).expect("stats JSON");
    handle.shutdown();
    handle.join();
    let store_stats = store.stats();
    latencies.sort_unstable();

    let counter = |k: &str| stats.get(k).and_then(Value::as_f64).unwrap_or_default() as u64;
    let requests = latencies.len();
    let report = ChurnReport {
        distinct_queries: texts.len(),
        churn_readers: READERS,
        staleness_budget: STALENESS_BUDGET,
        mutation_batches: store_stats.batches,
        mutation_failures,
        epochs: store_stats.epoch,
        inserted: store_stats.inserted,
        removed: store_stats.removed,
        updated: store_stats.updated,
        requests,
        wall_s,
        qps: requests as f64 / wall_s.max(1e-9),
        p50_us: percentile_us(&latencies, 50),
        p99_us: percentile_us(&latencies, 99),
        cache_hits: counter("cache_hits"),
        cache_hit_rate: stats
            .get("cache_hit_rate")
            .and_then(Value::as_f64)
            .unwrap_or_default(),
        partial_rebuilds: store_stats.index_partial_rebuilds.unwrap_or_default(),
        full_rebuilds: store_stats.index_rebuilds,
        stale_ops: store_stats.index_stale_ops.unwrap_or_default(),
    };

    let mut table = TextTable::new(vec![
        "queries", "q/s", "p50", "p99", "hit %", "epochs", "partials", "failures",
    ]);
    table.row(vec![
        format!("{}", report.requests),
        format!("{:.0}", report.qps),
        fmt_us(report.p50_us),
        fmt_us(report.p99_us),
        format!("{:.0}%", report.cache_hit_rate * 100.0),
        format!("{}", report.epochs),
        format!("{}", report.partial_rebuilds),
        format!("{}", report.mutation_failures),
    ]);
    println!("{}", table.render());
    println!(
        "{} mutation batches (+{} -{} ~{}), staleness budget {}, {} partial / {} full \
         index rebuilds",
        report.mutation_batches,
        report.inserted,
        report.removed,
        report.updated,
        report.staleness_budget,
        report.partial_rebuilds,
        report.full_rebuilds,
    );
    println!();
    report
}

/// The S13 measurements: crash-churn on the durable store — a deterministic
/// fault plan kills the WAL mid-churn, the store restarts from its data
/// directory, and a retrying client resumes through injected connection
/// resets — the `BENCH_8.json` artifact.
struct CrashReport {
    crash_point: &'static str,
    crash_hit: u64,
    acked_before_crash: u64,
    recovered_epoch: u64,
    recovery_replayed: u64,
    recovery_truncated_tail: bool,
    fingerprint_match: bool,
    checkpoints: u64,
    resumed_mutations: u64,
    final_epoch: u64,
    client_retries: u64,
    deduped_replays: u64,
    wall_s: f64,
}

impl CrashReport {
    /// (q) restart recovers exactly the acked prefix: the recovered epoch
    /// equals the acked count and the fingerprint matches a never-crashed
    /// oracle.
    fn gate_recovery(&self) -> bool {
        self.acked_before_crash > 0
            && self.recovered_epoch == self.acked_before_crash
            && self.fingerprint_match
    }

    /// (r) resumed churn through injected resets applies every unique
    /// mutation exactly once: no gaps, no duplicates.
    fn gate_continuity(&self) -> bool {
        self.resumed_mutations > 0
            && self.final_epoch == self.acked_before_crash + self.resumed_mutations
    }

    /// (s) the resets actually bit and dedup answered: the client resent
    /// at least once and at least one resend was replayed server-side.
    fn gate_retries(&self) -> bool {
        self.client_retries >= 1 && self.deduped_replays >= 1
    }

    fn to_json(&self) -> String {
        let cfg = WorkloadConfig::bench_smoke();
        format!(
            "{{\n  \"schema\": \"gss-bench-crash/1\",\n  \"workload\": {{\"kind\": \"molecule\", \
             \"database_size\": {}, \"graph_vertices\": {}, \"related_fraction\": {}, \
             \"seed\": {}}},\n  \"crash\": {{\"point\": \"{}\", \"hit\": {}, \
             \"acked_before_crash\": {}}},\n  \"recovery\": {{\"epoch\": {}, \"replayed\": {}, \
             \"truncated_tail\": {}, \"fingerprint_match\": {}, \"checkpoints\": {}}},\n  \
             \"resume\": {{\"mutations\": {}, \"final_epoch\": {}, \"client_retries\": {}, \
             \"deduped_replays\": {}, \"wall_s\": {:.4}}},\n  \"gate\": {{\
             \"recovery_acked_prefix\": {}, \"epoch_continuity\": {}, \
             \"retries_deduped\": {}}}\n}}\n",
            cfg.database_size,
            cfg.graph_vertices,
            cfg.related_fraction,
            cfg.seed,
            self.crash_point,
            self.crash_hit,
            self.acked_before_crash,
            self.recovered_epoch,
            self.recovery_replayed,
            self.recovery_truncated_tail,
            self.fingerprint_match,
            self.checkpoints,
            self.resumed_mutations,
            self.final_epoch,
            self.client_retries,
            self.deduped_replays,
            self.wall_s,
            self.gate_recovery(),
            self.gate_continuity(),
            self.gate_retries(),
        )
    }
}

fn s13_crash_churn() -> CrashReport {
    use gss_server::{
        serve_store, Client, FaultPlan, GraphStore, Response, RetryPolicy, ServerConfig,
        StoreConfig, WalConfig,
    };
    use std::sync::Arc;

    const BATCHES: usize = 32;
    const CRASH_HIT: u64 = 20;
    const CHECKPOINT_EVERY: u64 = 8;
    const RESUMED: usize = 12;

    println!(
        "== S13: crash-churn — WAL killed at append #{CRASH_HIT} of {BATCHES}, restart from \
         the data directory, resume through injected connection resets =="
    );
    let w = Workload::generate(&WorkloadConfig::bench_smoke());
    let db = Arc::new(GraphDatabase::from_parts(w.vocab, w.graphs));
    let dir = std::env::temp_dir().join(format!("gss-bench-crash-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    // Writer traffic reuses database structure under fresh names (same
    // trick as S12) so every batch is valid regardless of where the crash
    // lands.
    let donor_text = |i: usize, name: &str| {
        let g = db.get(gss_core::GraphId(i % db.len()));
        let text = gss_graph::format::write_database(std::slice::from_ref(g), db.vocab());
        let body = text.split_once('\n').map_or("", |(_, b)| b);
        format!("t {name}\n{body}")
    };
    let batch = |i: usize| {
        gss_server::MutationBatch::default().insert(&donor_text(i * 3 + 1, &format!("crash{i}")))
    };

    let t0 = Instant::now();

    // Phase 1 — churn into a deterministic crash: the fault plan kills the
    // WAL on its CRASH_HIT-th append, so exactly CRASH_HIT - 1 batches are
    // acked and everything after is refused.
    let mut wal_config = WalConfig::new(&dir);
    wal_config.checkpoint_every = CHECKPOINT_EVERY;
    wal_config.faults =
        Arc::new(FaultPlan::parse(&format!("wal.append@{CRASH_HIT}=crash")).expect("fault plan"));
    let store = GraphStore::open_durable(Arc::clone(&db), StoreConfig::default(), wal_config)
        .expect("open durable store");
    let mut acked = 0u64;
    for i in 0..BATCHES {
        match store.apply(&batch(i)) {
            Ok(_) => acked += 1,
            Err(_) => break,
        }
    }
    drop(store);

    // Phase 2 — restart: recovery loads the latest checkpoint and replays
    // the WAL tail; the result must equal a never-crashed oracle that saw
    // exactly the acked prefix.
    let recovered = GraphStore::open_durable(
        Arc::clone(&db),
        StoreConfig::default(),
        WalConfig::new(&dir),
    )
    .expect("recover from data directory");
    let oracle = GraphStore::new(Arc::clone(&db), StoreConfig::default());
    for i in 0..acked as usize {
        oracle.apply(&batch(i)).expect("oracle batch");
    }
    let recovered_epoch = recovered.snapshot().epoch();
    let fingerprint_match = recovered.snapshot().fingerprint() == oracle.snapshot().fingerprint();
    let recovered_stats = recovered.stats();
    let wal_stats = recovered_stats.wal.unwrap_or_default();

    // Phase 3 — resume behind the server with injected connection resets:
    // a retrying client streams fresh mutations; resent batches must be
    // deduplicated by their mutation_id, never double-applied.
    let recovered = Arc::new(recovered);
    let handle = serve_store(
        Arc::clone(&recovered),
        QueryOptions::default(),
        ServerConfig {
            workers: 2,
            faults: Arc::new(
                FaultPlan::parse("conn.write@2=reset;conn.write@7=reset").expect("fault plan"),
            ),
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback server");
    let mut client = Client::builder()
        .retry(RetryPolicy {
            max_retries: 6,
            base_delay_ms: 1,
            max_delay_ms: 20,
            jitter_seed: 13,
            timeout_ms: Some(10_000),
        })
        .connect(handle.addr())
        .expect("connect retrying client");
    let mut deduped_replays = 0u64;
    for i in 0..RESUMED {
        let name = format!("resume{i}");
        match client
            .insert(&donor_text(i * 5 + 2, &name))
            .expect("resumed insert")
        {
            Response::Mutated { replayed, .. } => {
                if replayed {
                    deduped_replays += 1;
                }
            }
            other => panic!("unexpected response: {}", other.to_line().trim_end()),
        }
    }
    let client_retries = client.retries();
    handle.shutdown();
    handle.join();
    let final_epoch = recovered.snapshot().epoch();
    let wall_s = t0.elapsed().as_secs_f64();
    std::fs::remove_dir_all(&dir).ok();

    let report = CrashReport {
        crash_point: "wal.append",
        crash_hit: CRASH_HIT,
        acked_before_crash: acked,
        recovered_epoch,
        recovery_replayed: wal_stats.recovery.replayed,
        recovery_truncated_tail: wal_stats.recovery.truncated_tail,
        fingerprint_match,
        checkpoints: wal_stats.checkpoints,
        resumed_mutations: RESUMED as u64,
        final_epoch,
        client_retries,
        deduped_replays,
        wall_s,
    };

    let mut table = TextTable::new(vec![
        "acked",
        "recovered",
        "replayed",
        "fp match",
        "resumed",
        "final",
        "retries",
        "replays",
    ]);
    table.row(vec![
        format!("{}", report.acked_before_crash),
        format!("{}", report.recovered_epoch),
        format!("{}", report.recovery_replayed),
        format!("{}", report.fingerprint_match),
        format!("{}", report.resumed_mutations),
        format!("{}", report.final_epoch),
        format!("{}", report.client_retries),
        format!("{}", report.deduped_replays),
    ]);
    println!("{}", table.render());
    println!(
        "crash at {}#{}: {} acked → recovered epoch {} ({} WAL records replayed over \
         {} checkpoints); resumed {} mutations to epoch {} through {} retries / {} \
         deduped replays",
        report.crash_point,
        report.crash_hit,
        report.acked_before_crash,
        report.recovered_epoch,
        report.recovery_replayed,
        report.checkpoints,
        report.resumed_mutations,
        report.final_epoch,
        report.client_retries,
        report.deduped_replays,
    );
    println!();
    report
}

/// Wall-clock budget for adopting a saved compact database (S14). The
/// smoke database loads in well under a millisecond on any machine the
/// suite runs on — the generous ceiling only exists to catch a load path
/// that silently regresses to re-parsing text.
const COLD_START_BUDGET_MS: f64 = 250.0;

/// Ceiling on arena bytes relative to the pointer-rich estimate (S14):
/// the compact representation must use at most this fraction.
const COMPACTION_CEILING: f64 = 0.6;

struct ColdStartReport {
    database_size: usize,
    arena_bytes: usize,
    pointer_rich_bytes: usize,
    arena_bytes_per_graph: usize,
    pointer_rich_bytes_per_graph: usize,
    file_bytes: usize,
    pack_ms: f64,
    load_ms: f64,
    parse_ms: f64,
    adopted_compact: bool,
    combos: usize,
    mismatches: usize,
}

impl ColdStartReport {
    fn compaction_ratio(&self) -> f64 {
        self.arena_bytes as f64 / self.pointer_rich_bytes.max(1) as f64
    }

    fn gate_compaction(&self) -> bool {
        self.compaction_ratio() <= COMPACTION_CEILING
    }

    fn gate_load(&self) -> bool {
        self.adopted_compact && self.load_ms <= COLD_START_BUDGET_MS
    }

    fn gate_parity(&self) -> bool {
        self.combos > 0 && self.mismatches == 0
    }

    fn to_json(&self) -> String {
        let cfg = WorkloadConfig::bench_smoke();
        format!(
            "{{\n  \"schema\": \"gss-bench-coldstart/1\",\n  \"workload\": {{\"kind\": \
             \"molecule\", \"database_size\": {}, \"graph_vertices\": {}, \
             \"related_fraction\": {}, \"seed\": {}}},\n  \"memory\": {{\
             \"arena_bytes\": {}, \"pointer_rich_bytes\": {}, \
             \"arena_bytes_per_graph\": {}, \"pointer_rich_bytes_per_graph\": {}, \
             \"compaction_ratio\": {:.4}, \"file_bytes\": {}}},\n  \
             \"cold_start\": {{\"pack_ms\": {:.3}, \"load_ms\": {:.3}, \
             \"parse_ms\": {:.3}, \"adopted_compact\": {}, \"budget_ms\": {:.1}}},\n  \
             \"parity\": {{\"combos\": {}, \"mismatches\": {}}},\n  \"gate\": {{\
             \"arena_le_0_6x_pointer_rich\": {}, \"load_within_budget\": {}, \
             \"zero_answer_mismatches\": {}}}\n}}\n",
            self.database_size,
            cfg.graph_vertices,
            cfg.related_fraction,
            cfg.seed,
            self.arena_bytes,
            self.pointer_rich_bytes,
            self.arena_bytes_per_graph,
            self.pointer_rich_bytes_per_graph,
            self.compaction_ratio(),
            self.file_bytes,
            self.pack_ms,
            self.load_ms,
            self.parse_ms,
            self.adopted_compact,
            COLD_START_BUDGET_MS,
            self.combos,
            self.mismatches,
            self.gate_compaction(),
            self.gate_load(),
            self.gate_parity(),
        )
    }
}

/// S14: cold-start on the compact binary format — build the smoke
/// database, pack it (compact + save), adopt it back with the zero-parse
/// load path, and sweep every plan × thread count × solver config over
/// both representations demanding byte-identical `Debug` output. The
/// pointer-rich database stays in play as the parity oracle.
fn s14_coldstart() -> ColdStartReport {
    println!("== S14: cold start — compact pack / zero-parse load / answer parity ==");
    let w = Workload::generate(&WorkloadConfig::bench_smoke());
    let db = GraphDatabase::from_parts(w.vocab, w.graphs);
    let pointer_rich = db.memory_stats();

    // Pack: compact into the arena representation and save the framed
    // binary image to a scratch file.
    let path = std::env::temp_dir().join(format!("gss-bench-coldstart-{}.gsb", std::process::id()));
    let pack_t = Instant::now();
    let mut packed = db.clone();
    packed.compact();
    packed.save(&path).expect("save packed database");
    let pack_ms = pack_t.elapsed().as_secs_f64() * 1e3;
    let compact = packed.memory_stats();
    let file_bytes = std::fs::metadata(&path)
        .map(|m| m.len() as usize)
        .unwrap_or(0);

    // Cold start: the checksummed frame is validated and the bytes are
    // adopted as the in-memory layout — no per-graph parsing. The text
    // parse of the same database is the baseline it replaces.
    let load_ms = time_us(3, || {
        GraphDatabase::load(&path).expect("load packed database");
    }) / 1e3;
    let text = db.to_text();
    let parse_ms = time_us(3, || {
        GraphDatabase::from_text(&text).expect("parse text database");
    }) / 1e3;
    let loaded = GraphDatabase::load(&path).expect("load packed database");
    let _ = std::fs::remove_file(&path);
    let adopted_compact = loaded.is_compact();
    assert_eq!(
        loaded.fingerprint(),
        db.fingerprint(),
        "loaded database must fingerprint-match its source"
    );

    // One pivot index serves both representations: attachment is keyed on
    // the database fingerprint, which the round trip preserves.
    let index = std::sync::Arc::new(PivotIndex::build(&db, &PivotIndexConfig::default()));

    // Answer parity: every plan × thread count × solver config must
    // produce byte-identical skyline and skyband output from the
    // arena-backed database and the pointer-rich oracle.
    const SKYBAND_K: usize = 2;
    let mut combos = 0usize;
    let mut mismatches = 0usize;
    for plan in [Plan::Naive, Plan::Prefilter, Plan::Indexed, Plan::Sharded] {
        for threads in [1usize, 4] {
            for approx in [false, true] {
                let opts = QueryOptions {
                    plan,
                    threads,
                    shards: 4,
                    solvers: if approx {
                        SolverConfig {
                            ged: GedMode::Bipartite,
                            mcs: McsMode::Greedy,
                        }
                    } else {
                        SolverConfig::default()
                    },
                    ..QueryOptions::default()
                }
                .with_index(index.clone());
                let oracle = graph_similarity_skyline(&db, &w.query, &opts);
                let arena = graph_similarity_skyline(&loaded, &w.query, &opts);
                combos += 1;
                if format!("{oracle:?}") != format!("{arena:?}") {
                    mismatches += 1;
                    eprintln!("S14 skyline mismatch: {plan:?} threads={threads} approx={approx}");
                }
                let oracle_band = graph_similarity_skyband(&db, &w.query, SKYBAND_K, &opts);
                let arena_band = graph_similarity_skyband(&loaded, &w.query, SKYBAND_K, &opts);
                combos += 1;
                if format!("{oracle_band:?}") != format!("{arena_band:?}") {
                    mismatches += 1;
                    eprintln!("S14 skyband mismatch: {plan:?} threads={threads} approx={approx}");
                }
            }
        }
    }

    let report = ColdStartReport {
        database_size: db.len(),
        arena_bytes: compact.arena_bytes,
        pointer_rich_bytes: pointer_rich.pointer_rich_bytes,
        arena_bytes_per_graph: compact.arena_bytes_per_graph() as usize,
        pointer_rich_bytes_per_graph: pointer_rich.pointer_rich_bytes_per_graph() as usize,
        file_bytes,
        pack_ms,
        load_ms,
        parse_ms,
        adopted_compact,
        combos,
        mismatches,
    };

    let mut table = TextTable::new(vec![
        "graphs",
        "B/graph",
        "ptr B/graph",
        "ratio",
        "pack",
        "load",
        "parse",
        "combos",
        "miss",
    ]);
    table.row(vec![
        format!("{}", report.database_size),
        format!("{}", report.arena_bytes_per_graph),
        format!("{}", report.pointer_rich_bytes_per_graph),
        format!("{:.2}", report.compaction_ratio()),
        fmt_us(report.pack_ms * 1e3),
        fmt_us(report.load_ms * 1e3),
        fmt_us(report.parse_ms * 1e3),
        format!("{}", report.combos),
        format!("{}", report.mismatches),
    ]);
    println!("{}", table.render());
    println!(
        "packed {} graphs into {} bytes ({:.2}x pointer-rich); zero-parse load {:.2} ms \
         vs text parse {:.2} ms; {} plan/thread/solver combos, {} mismatches",
        report.database_size,
        report.file_bytes,
        report.compaction_ratio(),
        report.load_ms,
        report.parse_ms,
        report.combos,
        report.mismatches,
    );
    println!();
    report
}

fn s1_skyline() {
    println!("== S1: skyline algorithms (3-d anti-correlated points) ==");
    let mut t = TextTable::new(vec!["n", "naive", "bnl", "sfs"]);
    for &n in &[200usize, 1_000, 5_000] {
        let mut rng = Rng::seed_from_u64(1);
        let pts: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                let mut p: Vec<f64> = (0..3).map(|_| rng.gen_f64()).collect();
                let s: f64 = p.iter().sum();
                p.iter_mut()
                    .for_each(|x| *x = *x / s + 0.05 * rng.gen_f64());
                p
            })
            .collect();
        t.row(vec![
            format!("{n}"),
            fmt_us(time_us(5, || {
                naive_skyline(&pts);
            })),
            fmt_us(time_us(5, || {
                bnl_skyline(&pts);
            })),
            fmt_us(time_us(5, || {
                sfs_skyline(&pts);
            })),
        ]);
    }
    println!("{}", t.render());
}

fn pair(n: usize, seed: u64) -> (Graph, Graph) {
    let mut vocab = Vocabulary::new();
    let mut rng = Rng::seed_from_u64(seed);
    let cfg = RandomGraphConfig {
        vertices: n,
        edges: n + n / 3,
        ..Default::default()
    };
    let g1 = random_connected_graph("g1", &cfg, &mut vocab, &mut rng);
    let g2 = perturb(&g1, 3, &mut vocab, &mut rng, "P");
    (g1, g2)
}

fn s2_ged() {
    println!("== S2: GED solvers (perturbed random graph pairs) ==");
    let mut t = TextTable::new(vec![
        "|V|",
        "exact",
        "bipartite",
        "beam(16)",
        "values e/b/m",
    ]);
    for &n in &[4usize, 6, 8, 10] {
        let (g1, g2) = pair(n, 0x52 + n as u64);
        let cost = CostModel::uniform();
        let mut exact_val = 0.0;
        let e = time_us(3, || {
            let warm = bipartite_ged(&g1, &g2, &cost);
            exact_val = exact_ged(
                &g1,
                &g2,
                &GedOptions {
                    warm_start: Some(warm.mapping),
                    ..Default::default()
                },
            )
            .cost;
        });
        let mut bip_val = 0.0;
        let b = time_us(3, || {
            bip_val = bipartite_ged(&g1, &g2, &cost).cost;
        });
        let mut beam_val = 0.0;
        let m = time_us(3, || {
            beam_val = beam_ged(&g1, &g2, &cost, 16).cost;
        });
        t.row(vec![
            format!("{n}"),
            fmt_us(e),
            fmt_us(b),
            fmt_us(m),
            format!("{exact_val}/{bip_val}/{beam_val}"),
        ]);
    }
    println!("{}", t.render());
}

fn s3_mcs() {
    println!("== S3: MCS solvers ==");
    let mut t = TextTable::new(vec!["|V|", "exact", "greedy", "sizes e/g"]);
    for &n in &[5usize, 7, 9, 11] {
        let (g1, g2) = pair(n, 0x53 + n as u64);
        let mut exact_val = 0usize;
        let e = time_us(3, || {
            exact_val = mcs_edge_size(&g1, &g2);
        });
        let mut greedy_val = 0usize;
        let g = time_us(3, || {
            greedy_val = greedy_mcs(&g1, &g2, usize::MAX).edges();
        });
        t.row(vec![
            format!("{n}"),
            fmt_us(e),
            fmt_us(g),
            format!("{exact_val}/{greedy_val}"),
        ]);
    }
    println!("{}", t.render());
}

fn s4_query() {
    println!("== S4: end-to-end GSS query (molecule workloads) ==");
    let mut t = TextTable::new(vec!["|D|", "exact 1 thread", "exact 4 threads", "approx"]);
    for &n in &[10usize, 40, 120] {
        let w = Workload::generate(&WorkloadConfig {
            kind: WorkloadKind::Molecule,
            database_size: n,
            graph_vertices: 7,
            seed: 0x54,
            ..Default::default()
        });
        let db = GraphDatabase::from_parts(w.vocab, w.graphs);
        let exact1 = time_us(2, || {
            graph_similarity_skyline(
                &db,
                &w.query,
                &QueryOptions {
                    plan: Plan::Naive,
                    ..Default::default()
                },
            );
        });
        let exact4 = time_us(2, || {
            graph_similarity_skyline(
                &db,
                &w.query,
                &QueryOptions {
                    plan: Plan::Naive,
                    threads: 4,
                    ..Default::default()
                },
            );
        });
        let approx = time_us(2, || {
            graph_similarity_skyline(
                &db,
                &w.query,
                &QueryOptions {
                    plan: Plan::Naive,
                    solvers: SolverConfig {
                        ged: GedMode::Bipartite,
                        mcs: McsMode::Greedy,
                    },
                    ..Default::default()
                },
            );
        });
        t.row(vec![
            format!("{n}"),
            fmt_us(exact1),
            fmt_us(exact4),
            fmt_us(approx),
        ]);
    }
    println!("{}", t.render());
}

fn s6_prefilter() {
    println!("== S6: filter-and-verify pruning (molecule workloads, 1 thread) ==");
    let mut t = TextTable::new(vec![
        "|D|",
        "naive",
        "prefilter",
        "speedup",
        "pruned/short/verified",
    ]);
    for &n in &[20usize, 60, 120] {
        let w = Workload::generate(&WorkloadConfig {
            kind: WorkloadKind::Molecule,
            database_size: n,
            graph_vertices: 7,
            related_fraction: 0.3,
            seed: 0x56,
            ..Default::default()
        });
        let db = GraphDatabase::from_parts(w.vocab, w.graphs);
        let naive_opts = QueryOptions {
            plan: Plan::Naive,
            ..QueryOptions::default()
        };
        let pruned_opts = QueryOptions {
            prefilter: true,
            ..QueryOptions::default()
        };
        let naive = time_us(3, || {
            graph_similarity_skyline(&db, &w.query, &naive_opts);
        });
        let pruned = time_us(3, || {
            graph_similarity_skyline(&db, &w.query, &pruned_opts);
        });
        let r = graph_similarity_skyline(&db, &w.query, &pruned_opts);
        let base = graph_similarity_skyline(&db, &w.query, &naive_opts);
        assert_eq!(
            r.skyline, base.skyline,
            "pruning must not change the answer"
        );
        assert_eq!(
            r.dominated, base.dominated,
            "pruning must not change witnesses"
        );
        let stats = r.pruning.expect("prefilter stats");
        t.row(vec![
            format!("{n}"),
            fmt_us(naive),
            fmt_us(pruned),
            format!("{:.2}x", naive / pruned.max(1.0)),
            format!(
                "{}/{}/{}",
                stats.pruned, stats.short_circuited, stats.verified
            ),
        ]);
    }
    println!("{}", t.render());
}

#[allow(clippy::needless_range_loop)] // symmetric matrix fill reads clearest indexed
fn s5_diversity() {
    println!("== S5: diversity refinement ==");
    let mut t = TextTable::new(vec!["n", "exact k=3", "greedy k=3"]);
    for &n in &[8usize, 12, 16, 20] {
        let mut rng = Rng::seed_from_u64(n as u64);
        let ms: Vec<Vec<Vec<f64>>> = (0..3)
            .map(|_| {
                let mut m = vec![vec![0.0f64; n]; n];
                for i in 0..n {
                    for j in i + 1..n {
                        let v = rng.gen_f64();
                        m[i][j] = v;
                        m[j][i] = v;
                    }
                }
                m
            })
            .collect();
        let e = time_us(3, || {
            refine_exact(&ms, 3, u128::MAX).unwrap();
        });
        let g = time_us(3, || {
            refine_greedy(&ms, 3);
        });
        t.row(vec![format!("{n}"), fmt_us(e), fmt_us(g)]);
    }
    println!("{}", t.render());
}
