//! Quick scaling-shape report (S1–S7) using plain wall-clock medians —
//! a fast complement to the rigorous criterion benches, for smoke-checking
//! the expected shapes (see DESIGN.md §4) in seconds instead of minutes.
//!
//! Usage: `cargo run --release -p gss-bench --bin scaling [-- FLAGS]`
//!
//! * `--smoke` — run only S7 (the committed CI smoke workload,
//!   [`WorkloadConfig::bench_smoke`]); seconds, not minutes.
//! * `--json PATH` — additionally write the S7 measurements as a JSON
//!   report (the CI `BENCH_2.json` artifact).
//! * `--gate` — exit nonzero unless the indexed scan (a) needs no more
//!   exact solver calls than the prefilter-only scan and (b) skips ≥ 30%
//!   of candidates at the partition level. This is the CI perf-regression
//!   gate.

use std::time::Instant;

use gss_bench::TextTable;
use gss_core::{
    graph_similarity_skyline, GedMode, GraphDatabase, McsMode, PruneStats, QueryOptions,
    SolverConfig,
};
use gss_datasets::synth::{perturb, random_connected_graph, RandomGraphConfig};
use gss_datasets::workload::{Workload, WorkloadConfig, WorkloadKind};
use gss_diversity::{refine_exact, refine_greedy};
use gss_ged::{beam::beam_ged, bipartite::bipartite_ged, exact_ged, CostModel, GedOptions};
use gss_graph::{Graph, Rng, Vocabulary};
use gss_index::{PivotIndex, PivotIndexConfig};
use gss_mcs::{greedy::greedy_mcs, mcs_edge_size};
use gss_skyline::{bnl_skyline, naive_skyline, sfs_skyline};

/// Median wall time of `runs` executions, in microseconds.
fn time_us<F: FnMut()>(runs: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..runs.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn fmt_us(us: f64) -> String {
    if us >= 1e6 {
        format!("{:.2} s", us / 1e6)
    } else if us >= 1e3 {
        format!("{:.1} ms", us / 1e3)
    } else {
        format!("{us:.0} µs")
    }
}

fn main() {
    let mut json_path: Option<String> = None;
    let mut smoke = false;
    let mut gate = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--gate" => gate = true,
            "--json" => match args.next() {
                Some(path) => json_path = Some(path),
                None => {
                    eprintln!("--json needs a file path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown flag {other:?} (expected --smoke, --gate, --json PATH)");
                std::process::exit(2);
            }
        }
    }

    if !smoke {
        s1_skyline();
        s2_ged();
        s3_mcs();
        s4_query();
        s5_diversity();
        s6_prefilter();
    }
    let report = s7_index();
    if let Some(path) = &json_path {
        std::fs::write(path, report.to_json()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("wrote {path}");
    }
    if gate {
        let mut failed = false;
        if !report.gate_solver_calls() {
            eprintln!(
                "GATE FAILED: indexed scan verified {} candidates, prefilter-only verified {} \
                 — the index must not cost extra exact solver calls",
                report.indexed.0.verified, report.prefilter.0.verified
            );
            failed = true;
        }
        if !report.gate_skip_rate() {
            eprintln!(
                "GATE FAILED: index skipped {:.1}% of candidates at the partition level \
                 (required: ≥ 30%)",
                report.indexed.0.index_skip_rate() * 100.0
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "gate passed: indexed verified {} ≤ prefilter verified {}; index skipped {:.1}% ≥ 30%",
            report.indexed.0.verified,
            report.prefilter.0.verified,
            report.indexed.0.index_skip_rate() * 100.0
        );
    }
}

/// The S7 measurements that feed the report table, the JSON artifact and
/// the CI gate.
struct SmokeReport {
    pivots: usize,
    partitions: usize,
    build_us: f64,
    /// (stats, median wall µs) of the prefilter-only scan.
    prefilter: (PruneStats, f64),
    /// (stats, median wall µs) of the indexed scan.
    indexed: (PruneStats, f64),
}

impl SmokeReport {
    fn gate_solver_calls(&self) -> bool {
        self.indexed.0.verified <= self.prefilter.0.verified
    }

    fn gate_skip_rate(&self) -> bool {
        self.indexed.0.index_skip_rate() >= 0.30
    }

    fn to_json(&self) -> String {
        let cfg = WorkloadConfig::bench_smoke();
        let stats = |s: &PruneStats, wall: f64| {
            format!(
                "{{\"candidates\": {}, \"verified\": {}, \"pruned\": {}, \
                 \"short_circuited\": {}, \"index_skipped\": {}, \"pruning_rate\": {:.4}, \
                 \"index_skip_rate\": {:.4}, \"pivot_probes\": {}, \"wall_us\": {:.1}}}",
                s.candidates,
                s.verified,
                s.pruned,
                s.short_circuited,
                s.index_skipped,
                s.pruning_rate(),
                s.index_skip_rate(),
                s.pivot_probes,
                wall
            )
        };
        format!(
            "{{\n  \"schema\": \"gss-bench-smoke/2\",\n  \"workload\": {{\"kind\": \"molecule\", \
             \"database_size\": {}, \"graph_vertices\": {}, \"related_fraction\": {}, \
             \"seed\": {}}},\n  \"index\": {{\"pivots\": {}, \"partitions\": {}, \
             \"build_us\": {:.1}}},\n  \"prefilter\": {},\n  \"indexed\": {},\n  \
             \"gate\": {{\"indexed_verified_le_prefilter\": {}, \"index_skip_rate_ge_30pct\": {}}}\n}}\n",
            cfg.database_size,
            cfg.graph_vertices,
            cfg.related_fraction,
            cfg.seed,
            self.pivots,
            self.partitions,
            self.build_us,
            stats(&self.prefilter.0, self.prefilter.1),
            stats(&self.indexed.0, self.indexed.1),
            self.gate_solver_calls(),
            self.gate_skip_rate(),
        )
    }
}

fn s7_index() -> SmokeReport {
    println!("== S7: pivot index vs prefilter (committed smoke workload) ==");
    let w = Workload::generate(&WorkloadConfig::bench_smoke());
    let db = GraphDatabase::from_parts(w.vocab, w.graphs);

    let t = Instant::now();
    let index = std::sync::Arc::new(PivotIndex::build(&db, &PivotIndexConfig::default()));
    let build_us = t.elapsed().as_secs_f64() * 1e6;

    let prefilter_opts = QueryOptions {
        prefilter: true,
        ..QueryOptions::default()
    };
    let indexed_opts = QueryOptions::default().with_index(index.clone());

    let pre_wall = time_us(3, || {
        graph_similarity_skyline(&db, &w.query, &prefilter_opts);
    });
    let idx_wall = time_us(3, || {
        graph_similarity_skyline(&db, &w.query, &indexed_opts);
    });

    let pre = graph_similarity_skyline(&db, &w.query, &prefilter_opts);
    let idx = graph_similarity_skyline(&db, &w.query, &indexed_opts);
    let naive = graph_similarity_skyline(&db, &w.query, &QueryOptions::default());
    assert_eq!(
        idx.skyline, naive.skyline,
        "index must not change the answer"
    );
    assert_eq!(
        idx.dominated, naive.dominated,
        "index must not change witnesses"
    );
    assert_eq!(pre.skyline, naive.skyline);
    assert_eq!(pre.dominated, naive.dominated);

    let pre_stats = pre.pruning.expect("prefilter stats");
    let idx_stats = idx.pruning.expect("indexed stats");
    let mut table = TextTable::new(vec![
        "scan", "wall", "verified", "pruned", "short", "skipped", "skip %",
    ]);
    let row = |t: &mut TextTable, name: &str, s: &PruneStats, wall: f64| {
        t.row(vec![
            name.to_owned(),
            fmt_us(wall),
            format!("{}", s.verified),
            format!("{}", s.pruned),
            format!("{}", s.short_circuited),
            format!("{}", s.index_skipped),
            format!("{:.0}%", s.index_skip_rate() * 100.0),
        ]);
    };
    row(&mut table, "prefilter", &pre_stats, pre_wall);
    row(&mut table, "indexed", &idx_stats, idx_wall);
    println!("{}", table.render());
    println!(
        "index: {} pivots, {} partitions ({} skipped wholesale), built in {}",
        index.pivots().len(),
        index.partition_count(),
        idx_stats.index_partitions_skipped,
        fmt_us(build_us)
    );
    println!();

    SmokeReport {
        pivots: index.pivots().len(),
        partitions: index.partition_count(),
        build_us,
        prefilter: (pre_stats, pre_wall),
        indexed: (idx_stats, idx_wall),
    }
}

fn s1_skyline() {
    println!("== S1: skyline algorithms (3-d anti-correlated points) ==");
    let mut t = TextTable::new(vec!["n", "naive", "bnl", "sfs"]);
    for &n in &[200usize, 1_000, 5_000] {
        let mut rng = Rng::seed_from_u64(1);
        let pts: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                let mut p: Vec<f64> = (0..3).map(|_| rng.gen_f64()).collect();
                let s: f64 = p.iter().sum();
                p.iter_mut()
                    .for_each(|x| *x = *x / s + 0.05 * rng.gen_f64());
                p
            })
            .collect();
        t.row(vec![
            format!("{n}"),
            fmt_us(time_us(5, || {
                naive_skyline(&pts);
            })),
            fmt_us(time_us(5, || {
                bnl_skyline(&pts);
            })),
            fmt_us(time_us(5, || {
                sfs_skyline(&pts);
            })),
        ]);
    }
    println!("{}", t.render());
}

fn pair(n: usize, seed: u64) -> (Graph, Graph) {
    let mut vocab = Vocabulary::new();
    let mut rng = Rng::seed_from_u64(seed);
    let cfg = RandomGraphConfig {
        vertices: n,
        edges: n + n / 3,
        ..Default::default()
    };
    let g1 = random_connected_graph("g1", &cfg, &mut vocab, &mut rng);
    let g2 = perturb(&g1, 3, &mut vocab, &mut rng, "P");
    (g1, g2)
}

fn s2_ged() {
    println!("== S2: GED solvers (perturbed random graph pairs) ==");
    let mut t = TextTable::new(vec![
        "|V|",
        "exact",
        "bipartite",
        "beam(16)",
        "values e/b/m",
    ]);
    for &n in &[4usize, 6, 8, 10] {
        let (g1, g2) = pair(n, 0x52 + n as u64);
        let cost = CostModel::uniform();
        let mut exact_val = 0.0;
        let e = time_us(3, || {
            let warm = bipartite_ged(&g1, &g2, &cost);
            exact_val = exact_ged(
                &g1,
                &g2,
                &GedOptions {
                    warm_start: Some(warm.mapping),
                    ..Default::default()
                },
            )
            .cost;
        });
        let mut bip_val = 0.0;
        let b = time_us(3, || {
            bip_val = bipartite_ged(&g1, &g2, &cost).cost;
        });
        let mut beam_val = 0.0;
        let m = time_us(3, || {
            beam_val = beam_ged(&g1, &g2, &cost, 16).cost;
        });
        t.row(vec![
            format!("{n}"),
            fmt_us(e),
            fmt_us(b),
            fmt_us(m),
            format!("{exact_val}/{bip_val}/{beam_val}"),
        ]);
    }
    println!("{}", t.render());
}

fn s3_mcs() {
    println!("== S3: MCS solvers ==");
    let mut t = TextTable::new(vec!["|V|", "exact", "greedy", "sizes e/g"]);
    for &n in &[5usize, 7, 9, 11] {
        let (g1, g2) = pair(n, 0x53 + n as u64);
        let mut exact_val = 0usize;
        let e = time_us(3, || {
            exact_val = mcs_edge_size(&g1, &g2);
        });
        let mut greedy_val = 0usize;
        let g = time_us(3, || {
            greedy_val = greedy_mcs(&g1, &g2, usize::MAX).edges();
        });
        t.row(vec![
            format!("{n}"),
            fmt_us(e),
            fmt_us(g),
            format!("{exact_val}/{greedy_val}"),
        ]);
    }
    println!("{}", t.render());
}

fn s4_query() {
    println!("== S4: end-to-end GSS query (molecule workloads) ==");
    let mut t = TextTable::new(vec!["|D|", "exact 1 thread", "exact 4 threads", "approx"]);
    for &n in &[10usize, 40, 120] {
        let w = Workload::generate(&WorkloadConfig {
            kind: WorkloadKind::Molecule,
            database_size: n,
            graph_vertices: 7,
            seed: 0x54,
            ..Default::default()
        });
        let db = GraphDatabase::from_parts(w.vocab, w.graphs);
        let exact1 = time_us(2, || {
            graph_similarity_skyline(&db, &w.query, &QueryOptions::default());
        });
        let exact4 = time_us(2, || {
            graph_similarity_skyline(
                &db,
                &w.query,
                &QueryOptions {
                    threads: 4,
                    ..Default::default()
                },
            );
        });
        let approx = time_us(2, || {
            graph_similarity_skyline(
                &db,
                &w.query,
                &QueryOptions {
                    solvers: SolverConfig {
                        ged: GedMode::Bipartite,
                        mcs: McsMode::Greedy,
                    },
                    ..Default::default()
                },
            );
        });
        t.row(vec![
            format!("{n}"),
            fmt_us(exact1),
            fmt_us(exact4),
            fmt_us(approx),
        ]);
    }
    println!("{}", t.render());
}

fn s6_prefilter() {
    println!("== S6: filter-and-verify pruning (molecule workloads, 1 thread) ==");
    let mut t = TextTable::new(vec![
        "|D|",
        "naive",
        "prefilter",
        "speedup",
        "pruned/short/verified",
    ]);
    for &n in &[20usize, 60, 120] {
        let w = Workload::generate(&WorkloadConfig {
            kind: WorkloadKind::Molecule,
            database_size: n,
            graph_vertices: 7,
            related_fraction: 0.3,
            seed: 0x56,
            ..Default::default()
        });
        let db = GraphDatabase::from_parts(w.vocab, w.graphs);
        let naive_opts = QueryOptions::default();
        let pruned_opts = QueryOptions {
            prefilter: true,
            ..QueryOptions::default()
        };
        let naive = time_us(3, || {
            graph_similarity_skyline(&db, &w.query, &naive_opts);
        });
        let pruned = time_us(3, || {
            graph_similarity_skyline(&db, &w.query, &pruned_opts);
        });
        let r = graph_similarity_skyline(&db, &w.query, &pruned_opts);
        let base = graph_similarity_skyline(&db, &w.query, &naive_opts);
        assert_eq!(
            r.skyline, base.skyline,
            "pruning must not change the answer"
        );
        assert_eq!(
            r.dominated, base.dominated,
            "pruning must not change witnesses"
        );
        let stats = r.pruning.expect("prefilter stats");
        t.row(vec![
            format!("{n}"),
            fmt_us(naive),
            fmt_us(pruned),
            format!("{:.2}x", naive / pruned.max(1.0)),
            format!(
                "{}/{}/{}",
                stats.pruned, stats.short_circuited, stats.verified
            ),
        ]);
    }
    println!("{}", t.render());
}

#[allow(clippy::needless_range_loop)] // symmetric matrix fill reads clearest indexed
fn s5_diversity() {
    println!("== S5: diversity refinement ==");
    let mut t = TextTable::new(vec!["n", "exact k=3", "greedy k=3"]);
    for &n in &[8usize, 12, 16, 20] {
        let mut rng = Rng::seed_from_u64(n as u64);
        let ms: Vec<Vec<Vec<f64>>> = (0..3)
            .map(|_| {
                let mut m = vec![vec![0.0f64; n]; n];
                for i in 0..n {
                    for j in i + 1..n {
                        let v = rng.gen_f64();
                        m[i][j] = v;
                        m[j][i] = v;
                    }
                }
                m
            })
            .collect();
        let e = time_us(3, || {
            refine_exact(&ms, 3, u128::MAX).unwrap();
        });
        let g = time_us(3, || {
            refine_greedy(&ms, 3);
        });
        t.row(vec![format!("{n}"), fmt_us(e), fmt_us(g)]);
    }
    println!("{}", t.render());
}
