//! Regenerates every table and figure of the paper, printing the measured
//! value beside the published one, then runs the two ablations (A1 recall,
//! A2 exact-vs-approximate) described in `DESIGN.md`.
//!
//! Usage: `cargo run -p gss-bench --bin tables [--seed N]`

use gss_bench::{f2, verdict, TextTable};
use gss_core::{
    graph_similarity_skyline, refine_skyline, top_k_by_measure, GedMode, GraphDatabase, GraphId,
    McsMode, MeasureKind, QueryOptions, RefineOptions, SolverConfig,
};
use gss_datasets::paper::{expected, figure1_pair, figure3_database, hotels};
use gss_datasets::workload::{Workload, WorkloadConfig, WorkloadKind};
use gss_ged::{bipartite::bipartite_ged, edit_path_for_mapping, exact_ged, CostModel, GedOptions};
use gss_mcs::{maximum_common_subgraph, Objective};
use gss_skyline::{skyline, Algorithm};

fn main() {
    let seed = std::env::args()
        .skip_while(|a| a != "--seed")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xD15C0u64);

    table1();
    figures1_2();
    tables2_3();
    tables4_5();
    ablation_a1(seed);
    ablation_a2(seed);
    ablation_a3();
}

fn table1() {
    println!("================ Table I — hotel skyline ================");
    let (names, rows) = hotels();
    let sky = skyline(&rows, Algorithm::Bnl);
    let mut t = TextTable::new(vec!["hotel", "price", "distance", "skyline"]);
    for (i, n) in names.iter().enumerate() {
        t.row(vec![
            n.to_string(),
            format!("{}", rows[i][0]),
            format!("{}", rows[i][1]),
            if sky.contains(&i) {
                "yes".into()
            } else {
                String::new()
            },
        ]);
    }
    println!("{}", t.render());
    let got: Vec<&str> = sky.iter().map(|&i| names[i]).collect();
    let ok = got == ["H2", "H4", "H6"];
    println!(
        "measured skyline {got:?} vs paper [H2, H4, H6] {}",
        if ok { "✓" } else { "DIFFERS" }
    );
    println!();
}

fn figures1_2() {
    println!("================ Figs. 1–2 / Examples 2–4 ================");
    let pair = figure1_pair();
    let cost = CostModel::uniform();
    let warm = bipartite_ged(&pair.left, &pair.right, &cost);
    let ged = exact_ged(
        &pair.left,
        &pair.right,
        &GedOptions {
            cost,
            warm_start: Some(warm.mapping),
            node_limit: None,
        },
    );
    let mcs = maximum_common_subgraph(&pair.left, &pair.right, Objective::Edges);
    let m = mcs.edges() as f64;
    let dist_mcs = 1.0 - m / 6.0;
    let dist_gu = 1.0 - m / (12.0 - m);

    let mut t = TextTable::new(vec!["quantity", "measured", "paper", "verdict"]);
    t.row(vec![
        "DistEd".into(),
        format!("{}", ged.cost),
        "4".to_string(),
        verdict(ged.cost, 4.0, 0.0).into(),
    ]);
    t.row(vec![
        "|mcs|".into(),
        format!("{}", mcs.edges()),
        "4".to_string(),
        verdict(m, 4.0, 0.0).into(),
    ]);
    t.row(vec![
        "DistMcs".into(),
        f2(dist_mcs),
        "0.33".into(),
        verdict(dist_mcs, 0.33, 0.006).into(),
    ]);
    t.row(vec![
        "DistGu".into(),
        f2(dist_gu),
        "0.50".into(),
        verdict(dist_gu, 0.50, 0.006).into(),
    ]);
    println!("{}", t.render());

    println!("optimal edit script (paper lists: edge deletion, edge relabeling,");
    println!("vertex relabeling, edge insertion):");
    for op in edit_path_for_mapping(&pair.left, &pair.right, &ged.mapping) {
        println!("  - {}", op.kind());
    }
    println!();
}

fn tables2_3() {
    println!("================ Tables II & III — GCS matrix and GSS ================");
    let data = figure3_database();
    let db = GraphDatabase::from_parts(data.vocab, data.graphs);
    let r = graph_similarity_skyline(&db, &data.query, &QueryOptions::default());

    let mut t = TextTable::new(vec![
        "g",
        "|g|",
        "|mcs| meas/paper",
        "DistEd meas/paper",
        "DistMcs",
        "DistGu",
        "skyline",
    ]);
    for (i, gcs) in r.gcs.iter().enumerate() {
        let g = db.get(GraphId(i));
        let mcs_meas = gss_mcs::mcs_edge_size(g, &data.query);
        t.row(vec![
            format!("g{}", i + 1),
            format!("{}", g.size()),
            format!(
                "{} / {} {}",
                mcs_meas,
                expected::TABLE2_MCS[i],
                verdict(mcs_meas as f64, expected::TABLE2_MCS[i] as f64, 0.0)
            ),
            format!(
                "{} / {} {}",
                gcs.values[0],
                expected::TABLE3_ED[i],
                verdict(gcs.values[0], expected::TABLE3_ED[i], 0.0)
            ),
            f2(gcs.values[1]),
            f2(gcs.values[2]),
            if r.contains(GraphId(i)) {
                "yes".into()
            } else {
                String::new()
            },
        ]);
    }
    println!("{}", t.render());

    let sky: Vec<String> = r
        .skyline
        .iter()
        .map(|g| format!("g{}", g.index() + 1))
        .collect();
    let ok = r.skyline.iter().map(|g| g.index()).collect::<Vec<_>>() == expected::SKYLINE.to_vec();
    println!(
        "GSS(D, q) = {sky:?} vs paper [g1, g4, g5, g7] {}",
        if ok { "✓" } else { "DIFFERS" }
    );
    for w in &r.dominated {
        println!(
            "  g{} dominated by g{}",
            w.graph.index() + 1,
            w.dominator.index() + 1
        );
    }

    let top3 = top_k_by_measure(
        &db,
        &data.query,
        MeasureKind::EditDistance,
        3,
        &SolverConfig::default(),
        1,
    );
    let ids: Vec<String> = top3
        .iter()
        .map(|s| format!("g{}", s.id.index() + 1))
        .collect();
    println!("top-3 by DistEd alone: {ids:?} — contains g3, which the skyline rejects (g5 ≻ g3) ✓");
    println!();
}

fn tables4_5() {
    println!("================ Tables IV & V — diversity refinement ================");
    let data = figure3_database();
    let db = GraphDatabase::from_parts(data.vocab, data.graphs);
    let members: Vec<GraphId> = expected::SKYLINE.iter().map(|&i| GraphId(i)).collect();
    let refined = refine_skyline(&db, &members, 2, &RefineOptions::default()).unwrap();

    let mut t = TextTable::new(vec![
        "S",
        "members",
        "v1 meas/paper",
        "v2 meas/paper",
        "v3 meas/paper",
        "r1 r2 r3",
        "val",
    ]);
    for (idx, cand) in refined.evaluation.candidates.iter().enumerate() {
        let names: Vec<String> = cand
            .members
            .iter()
            .map(|&i| format!("g{}", members[i].index() + 1))
            .collect();
        let p = expected::TABLE4[idx];
        t.row(vec![
            format!("S{}", idx + 1),
            format!("{{{}}}", names.join(",")),
            format!(
                "{} / {} {}",
                f2(cand.diversity[0]),
                p[0],
                verdict(cand.diversity[0], p[0], 0.011)
            ),
            format!(
                "{} / {} {}",
                f2(cand.diversity[1]),
                p[1],
                verdict(cand.diversity[1], p[1], 0.006)
            ),
            format!(
                "{} / {} {}",
                f2(cand.diversity[2]),
                p[2],
                verdict(cand.diversity[2], p[2], 0.006)
            ),
            format!("{} {} {}", cand.ranks[0], cand.ranks[1], cand.ranks[2]),
            format!("{} (paper {})", cand.val, expected::TABLE5_VAL[idx]),
        ]);
    }
    println!("{}", t.render());

    let sel: Vec<String> = refined
        .selected
        .iter()
        .map(|g| format!("g{}", g.index() + 1))
        .collect();
    let ok = refined
        .selected
        .iter()
        .map(|g| g.index())
        .collect::<Vec<_>>()
        == expected::REFINED.to_vec();
    println!(
        "refined 𝕊 = {sel:?} vs paper [g1, g4] {}",
        if ok { "✓" } else { "DIFFERS" }
    );
    if refined.evaluation.tied.len() > 1 {
        let ties: Vec<String> = refined
            .evaluation
            .tied
            .iter()
            .map(|&i| format!("S{}", i + 1))
            .collect();
        println!("note: rank-sum tie between {ties:?}; lexicographic tiebreak applied.");
        println!("The two v1 deviations trace to Table IV GED cells that are unattainable");
        println!("under the paper's own Definition 8 — see EXPERIMENTS.md for the proof.");
    }
    println!();
}

/// A1: recall of planted near-matches, skyline vs single-measure top-k.
fn ablation_a1(seed: u64) {
    println!("================ A1 — recall ablation (skyline vs single measure) ================");
    let mut t = TextTable::new(vec![
        "workload seed",
        "method",
        "answers",
        "planted recalled",
        "precision",
    ]);
    for offset in 0..3u64 {
        let cfg = WorkloadConfig {
            kind: WorkloadKind::Molecule,
            database_size: 24,
            graph_vertices: 7,
            related_fraction: 0.5,
            max_edits: 5,
            seed: seed + offset,
        };
        let w = Workload::generate(&cfg);
        let db = GraphDatabase::from_parts(w.vocab, w.graphs);
        let planted: Vec<GraphId> = w.planted.iter().map(|&(i, _)| GraphId(i)).collect();
        let r = graph_similarity_skyline(
            &db,
            &w.query,
            &QueryOptions {
                threads: 4,
                ..Default::default()
            },
        );
        let k = r.skyline.len();
        let hits = planted.iter().filter(|p| r.contains(**p)).count();
        t.row(vec![
            format!("{}", seed + offset),
            "skyline".into(),
            format!("{k}"),
            format!("{hits}/{}", planted.len()),
            format!("{hits}/{k}"),
        ]);
        for measure in [MeasureKind::EditDistance, MeasureKind::Mcs, MeasureKind::Gu] {
            let top = top_k_by_measure(&db, &w.query, measure, k, &SolverConfig::default(), 4);
            let hits = top.iter().filter(|s| planted.contains(&s.id)).count();
            t.row(vec![
                format!("{}", seed + offset),
                format!("top-k {}", measure.name()),
                format!("{k}"),
                format!("{hits}/{}", planted.len()),
                format!("{hits}/{k}"),
            ]);
        }
    }
    println!("{}", t.render());
    println!("reading: on these well-separated workloads every method reaches full");
    println!("precision and equal recall — the skyline's value is compositional (the");
    println!("whole Pareto frontier, no k to choose); the g3-vs-g5 contrast in Table III");
    println!("is the minimal case where single-measure top-k admits a dominated answer.");
    println!();
}

/// A2: skyline membership flips when swapping exact solvers for approximate.
fn ablation_a2(seed: u64) {
    println!("================ A2 — exact vs approximate solver ablation ================");
    let mut t = TextTable::new(vec![
        "workload seed",
        "solver config",
        "skyline size",
        "flips vs exact",
    ]);
    for offset in 0..3u64 {
        let cfg = WorkloadConfig {
            kind: WorkloadKind::Molecule,
            database_size: 14,
            graph_vertices: 6,
            related_fraction: 0.5,
            max_edits: 3,
            seed: seed ^ (offset + 1),
        };
        let w = Workload::generate(&cfg);
        let db = GraphDatabase::from_parts(w.vocab, w.graphs);
        let exact = graph_similarity_skyline(
            &db,
            &w.query,
            &QueryOptions {
                threads: 4,
                ..Default::default()
            },
        );
        t.row(vec![
            format!("{}", cfg.seed),
            "exact GED + exact MCS".into(),
            format!("{}", exact.skyline.len()),
            "0".into(),
        ]);
        for (name, solvers) in [
            (
                "bipartite GED + greedy MCS",
                SolverConfig {
                    ged: GedMode::Bipartite,
                    mcs: McsMode::Greedy,
                },
            ),
            (
                "beam(8) GED + exact MCS",
                SolverConfig {
                    ged: GedMode::Beam(8),
                    mcs: McsMode::Exact,
                },
            ),
        ] {
            let approx = graph_similarity_skyline(
                &db,
                &w.query,
                &QueryOptions {
                    solvers,
                    threads: 4,
                    ..Default::default()
                },
            );
            let flips = (0..db.len())
                .filter(|&i| exact.contains(GraphId(i)) != approx.contains(GraphId(i)))
                .count();
            t.row(vec![
                format!("{}", cfg.seed),
                name.into(),
                format!("{}", approx.skyline.len()),
                format!("{flips}"),
            ]);
        }
    }
    println!("{}", t.render());
    println!("expected shape: a few membership flips near Pareto ties — approximate GED");
    println!("over-estimates and greedy MCS under-estimates, so borderline graphs move.");
}

/// A3: cost-model sensitivity — how the DistEd column and the skyline react
/// when structural edits (insert/delete) cost `w×` a relabel. The paper
/// fixes the uniform model; this probes how load-bearing that choice is.
fn ablation_a3() {
    println!("================ A3 — edit-cost-model sensitivity (ours) ================");
    let data = figure3_database();
    let db = GraphDatabase::from_parts(data.vocab, data.graphs);

    let mut t = TextTable::new(vec!["w (structure weight)", "DistEd(g1..g7, q)", "skyline"]);
    for w in [1.0f64, 2.0, 4.0] {
        let cost = if w == 1.0 {
            CostModel::uniform()
        } else {
            CostModel::structure_weighted(w)
        };
        let eds: Vec<String> = db
            .iter()
            .map(|(_, g)| {
                let warm = bipartite_ged(g, &data.query, &cost);
                let r = exact_ged(
                    g,
                    &data.query,
                    &GedOptions {
                        cost,
                        warm_start: Some(warm.mapping),
                        node_limit: None,
                    },
                );
                format!("{}", r.cost)
            })
            .collect();
        // Re-run the skyline with the weighted DistEd replacing column 0
        // (DistMcs/DistGu are cost-model-free).
        let base = graph_similarity_skyline(&db, &data.query, &QueryOptions::default());
        let mut points: Vec<Vec<f64>> = base.gcs.iter().map(|g| g.values.clone()).collect();
        for (i, p) in points.iter_mut().enumerate() {
            let warm = bipartite_ged(db.get(GraphId(i)), &data.query, &cost);
            p[0] = exact_ged(
                db.get(GraphId(i)),
                &data.query,
                &GedOptions {
                    cost,
                    warm_start: Some(warm.mapping),
                    node_limit: None,
                },
            )
            .cost;
        }
        let sky: Vec<String> = gss_skyline::skyline(&points, Algorithm::Bnl)
            .into_iter()
            .map(|i| format!("g{}", i + 1))
            .collect();
        t.row(vec![
            format!("{w}"),
            format!("[{}]", eds.join(", ")),
            format!("{sky:?}"),
        ]);
    }
    println!("{}", t.render());
    println!("reading: the paper's skyline members all survive every weighting, but at");
    println!("w ≥ 2 g3 *joins* — its optimal edit path is relabel-heavy while g5's is");
    println!("insertion-heavy, so weighting structure breaks g5 ≻ g3. Compound-measure");
    println!("answers are sensitive to the edit-cost model exactly at dominance ties.");
}
