//! # gss-bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper (the `tables` binary)
//! and benchmarks the stack's scaling behaviour (criterion benches).
//!
//! * `cargo run -p gss-bench --bin tables` — prints Tables I–V and the
//!   Figure 1/2 walkthrough, paper value next to measured value, plus the
//!   A1/A2 ablations described in `DESIGN.md`.
//! * `cargo bench -p gss-bench` — skyline algorithms (S1), GED solvers
//!   (S2), MCS solvers (S3), end-to-end queries (S4), diversity refinement
//!   (S5).
//!
//! This library crate hosts the small shared helpers.

use std::fmt::Write as _;

/// A minimal fixed-width text table builder for the harness output.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells);
        self
    }

    /// Renders with padded columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for c in 0..cols {
            width[c] = self.header[c].chars().count();
            for r in &self.rows {
                width[c] = width[c].max(r[c].chars().count());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (c, cell) in cells.iter().enumerate() {
                let pad = width[c] - cell.chars().count();
                let _ = write!(out, "| {}{} ", cell, " ".repeat(pad));
            }
            let _ = writeln!(out, "|");
        };
        line(&mut out, &self.header);
        let total: usize = width.iter().map(|w| w + 3).sum::<usize>() + 1;
        let _ = writeln!(out, "{}", "-".repeat(total));
        for r in &self.rows {
            line(&mut out, r);
        }
        out
    }
}

/// Formats a float like the paper does (two decimals).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Marks agreement between a measured value and the paper's value.
pub fn verdict(measured: f64, paper: f64, tolerance: f64) -> &'static str {
    if (measured - paper).abs() <= tolerance {
        "✓"
    } else {
        "DIFFERS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_padded() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["a", "1"]).row(vec!["longer", "2.50"]);
        let s = t.render();
        assert!(s.contains("| name   | value |"));
        assert!(s.contains("| longer | 2.50  |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        TextTable::new(vec!["a"]).row(vec!["1", "2"]);
    }

    #[test]
    fn helpers() {
        assert_eq!(f2(0.3333), "0.33");
        assert_eq!(verdict(0.33, 0.33, 0.006), "✓");
        assert_eq!(verdict(0.5, 0.33, 0.006), "DIFFERS");
    }
}
