//! # gss-datasets — datasets and workloads for similarity-skyline queries
//!
//! * [`paper`] — faithful reconstructions of every dataset in Abbaci et al.
//!   (GDM/ICDE 2011): the Figure 1 example pair, the Figure 3 database
//!   `D = {g1…g7}` with query `q`, the Table I hotels, and the paper's
//!   published numbers (`paper::expected`) for paper-vs-measured reporting.
//! * [`synth`] — deterministic random/molecule-like graph generators and an
//!   edit-perturbation operator.
//! * [`workload`] — benchmark workloads with planted near-matches.
//!
//! ```
//! use gss_datasets::paper::figure3_database;
//!
//! let db = figure3_database();
//! assert_eq!(db.graphs.len(), 7);
//! assert_eq!(db.query.size(), 6); // |q| = 6 edges
//! ```

#![warn(missing_docs)]

pub mod paper;
pub mod synth;
pub mod workload;

pub use paper::{figure1_pair, figure3_database, hotels};
pub use synth::{
    molecule_like_graph, perturb, perturb_typed, random_connected_graph, MoleculeConfig,
    PerturbationStyle, RandomGraphConfig,
};
pub use workload::{Workload, WorkloadConfig, WorkloadKind};
