//! Benchmark workloads: databases of graphs with a planted query.
//!
//! A workload consists of a query graph and a database derived from it by
//! controlled perturbation (so ground-truth "good answers" exist by
//! construction), mixed with unrelated decoys. Used by the `gss-bench`
//! harness and the recall ablation (experiment A1 in `DESIGN.md`).

use gss_graph::{Graph, Rng, Vocabulary};

use crate::synth::{
    molecule_like_graph, perturb_typed, random_connected_graph, MoleculeConfig, PerturbationStyle,
    RandomGraphConfig,
};

/// The flavour of graphs a workload contains.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Uniform random connected labeled graphs.
    Uniform,
    /// Molecule-like graphs (element labels, valence caps, bond labels).
    Molecule,
}

/// Configuration for [`Workload::generate`].
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Graph flavour.
    pub kind: WorkloadKind,
    /// Database size (number of graphs).
    pub database_size: usize,
    /// Approximate size (vertices) of each graph.
    pub graph_vertices: usize,
    /// Fraction of the database derived from the query by perturbation
    /// (the rest are independent decoys). In `[0, 1]`.
    pub related_fraction: f64,
    /// Maximum number of perturbation edits for related graphs (each related
    /// graph uses `1..=max_edits` edits, increasing with its index).
    pub max_edits: usize,
    /// RNG seed; equal seeds give identical workloads.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            kind: WorkloadKind::Molecule,
            database_size: 20,
            graph_vertices: 8,
            related_fraction: 0.5,
            max_edits: 4,
            seed: 0xDA7A,
        }
    }
}

impl WorkloadConfig {
    /// The canonical CI smoke workload: the 120-graph molecule database the
    /// `scaling` benchmark report, the `BENCH_2.json` artifact and the CI
    /// regression gate all share. One definition keeps "the committed smoke
    /// workload" unambiguous — changing these values invalidates the perf
    /// trajectory tracked across PRs, so don't, without a CHANGES.md note.
    pub fn bench_smoke() -> WorkloadConfig {
        WorkloadConfig {
            kind: WorkloadKind::Molecule,
            database_size: 120,
            graph_vertices: 7,
            related_fraction: 0.3,
            max_edits: 4,
            seed: 0x56,
        }
    }
}

/// A generated workload.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Shared vocabulary for query and database.
    pub vocab: Vocabulary,
    /// The query graph.
    pub query: Graph,
    /// The database `D`.
    pub graphs: Vec<Graph>,
    /// Indices of database graphs derived from the query ("relevant" ground
    /// truth for recall experiments), with their edit budgets.
    pub planted: Vec<(usize, usize)>,
}

impl Workload {
    /// Generates the workload described by `cfg` (deterministic in `seed`).
    pub fn generate(cfg: &WorkloadConfig) -> Workload {
        let mut vocab = Vocabulary::new();
        let mut rng = Rng::seed_from_u64(cfg.seed);

        let make = |name: &str, vocab: &mut Vocabulary, rng: &mut Rng| -> Graph {
            match cfg.kind {
                WorkloadKind::Uniform => {
                    let rc = RandomGraphConfig {
                        vertices: cfg.graph_vertices.max(1),
                        edges: cfg.graph_vertices + cfg.graph_vertices / 3,
                        ..Default::default()
                    };
                    random_connected_graph(name, &rc, vocab, rng)
                }
                WorkloadKind::Molecule => {
                    let mc = MoleculeConfig {
                        atoms: cfg.graph_vertices.max(1),
                        ..Default::default()
                    };
                    molecule_like_graph(name, &mc, vocab, rng)
                }
            }
        };

        let query = make("query", &mut vocab, &mut rng);
        let related =
            ((cfg.database_size as f64) * cfg.related_fraction.clamp(0.0, 1.0)).round() as usize;
        let related = related.min(cfg.database_size);

        let mut graphs = Vec::with_capacity(cfg.database_size);
        let mut planted = Vec::new();
        for i in 0..cfg.database_size {
            if i < related {
                // Rotate perturbation styles *with coupled edit budgets* so
                // the planted graphs trade off differently against the three
                // measures, mirroring Section VI (g4 = cheap relabels with a
                // damaged common subgraph, g7 = a pricier supergraph with a
                // perfect one). A 1-edit supergraph would achieve the global
                // minimum on every dimension at once and collapse the
                // skyline, so Grow always gets ≥ 2 edits while Relabel gets
                // the small budgets.
                let round = i / 4;
                let (style, edits) = match i % 4 {
                    0 => (PerturbationStyle::Grow, 2 + round % 3),
                    1 => (PerturbationStyle::Relabel, 1 + round % 2),
                    // Shrink-1 would be a near-free edit with minimal MCS
                    // damage (it would dominate everything); start at 2.
                    2 => (PerturbationStyle::Shrink, 2 + round % 2),
                    _ => (PerturbationStyle::Mixed, 3 + round % 2),
                };
                let edits = edits.min(cfg.max_edits.max(1));
                let mut p = perturb_typed(
                    &query,
                    style,
                    edits,
                    &mut vocab,
                    &mut rng,
                    &format!("W{i}_"),
                );
                p.set_name(format!("related{i}"));
                planted.push((i, edits));
                graphs.push(p);
            } else {
                graphs.push(make(&format!("decoy{i}"), &mut vocab, &mut rng));
            }
        }
        Workload {
            vocab,
            query,
            graphs,
            planted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_shape() {
        let cfg = WorkloadConfig {
            database_size: 12,
            related_fraction: 0.5,
            ..Default::default()
        };
        let w = Workload::generate(&cfg);
        assert_eq!(w.graphs.len(), 12);
        assert_eq!(w.planted.len(), 6);
        assert!(w.query.order() > 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = WorkloadConfig {
            seed: 7,
            ..Default::default()
        };
        let a = Workload::generate(&cfg);
        let b = Workload::generate(&cfg);
        assert_eq!(
            gss_graph::format::write_database(&a.graphs, &a.vocab),
            gss_graph::format::write_database(&b.graphs, &b.vocab),
        );
        let c = Workload::generate(&WorkloadConfig { seed: 8, ..cfg });
        assert_ne!(
            gss_graph::format::write_database(&a.graphs, &a.vocab),
            gss_graph::format::write_database(&c.graphs, &c.vocab),
            "different seeds should differ"
        );
    }

    #[test]
    fn planted_graphs_stay_close_to_query() {
        let cfg = WorkloadConfig {
            database_size: 8,
            graph_vertices: 6,
            related_fraction: 1.0,
            max_edits: 3,
            seed: 21,
            ..Default::default()
        };
        let w = Workload::generate(&cfg);
        for &(idx, edits) in &w.planted {
            let d = gss_ged::ged(&w.query, &w.graphs[idx]);
            assert!(
                d <= edits as f64 + 1e-9,
                "planted graph {idx} drifted: {d} > {edits}"
            );
        }
    }

    #[test]
    fn bench_smoke_workload_is_stable() {
        let cfg = WorkloadConfig::bench_smoke();
        assert_eq!(cfg.database_size, 120);
        let w = Workload::generate(&cfg);
        assert_eq!(w.graphs.len(), 120);
        assert_eq!(w.planted.len(), 36, "30% of the smoke workload is planted");
    }

    #[test]
    fn uniform_kind_also_works() {
        let cfg = WorkloadConfig {
            kind: WorkloadKind::Uniform,
            database_size: 6,
            related_fraction: 0.0,
            ..Default::default()
        };
        let w = Workload::generate(&cfg);
        assert_eq!(w.graphs.len(), 6);
        assert!(w.planted.is_empty());
        for g in &w.graphs {
            assert!(gss_graph::algo::is_connected(g));
        }
    }
}
