//! The reconstructed datasets of the paper's figures and tables.
//!
//! Figures 1–3 of Abbaci et al. exist only as images; the concrete graphs
//! are not recoverable from the text. The graphs below were **reconstructed
//! from the published numbers**: our exact GED/MCS solvers (not hard-coded
//! constants) reproduce every value of Tables II and III, the worked
//! Examples 2–4, and 16 of the 18 cells of Table IV.
//!
//! The two deviating cells are *provably unattainable* under the paper's own
//! Definition 8 — see `EXPERIMENTS.md` for the argument; in short,
//! `DistEd(q,g4) = 2`, `DistEd(q,g7) = 4` and `g7 ⊇ q` with `|g7|−|q| = 4`
//! force any `g4 → g7` edit path to have even length, so the reported
//! `DistEd(g4,g7) = 5` is impossible (we realize 6), and the coupling
//! `DistEd(g5,g7) = 3` pins `g7`'s extra edges in a way that makes
//! `DistEd(g1,g7) = 7` incompatible with `DistEd(g1,g4) = 6` (we realize 6).
//! All skyline-level conclusions of the paper (Table II, Table III, the
//! skyline `{g1, g4, g5, g7}`, the dominance witnesses, and the refined
//! subset `{g1, g4}`) hold on this reconstruction.
//!
//! ## Shape of the reconstruction
//!
//! The query `q` is a 5-cycle `a(A) b(B) c(C) d(D) e(E)` plus a pendant
//! `f(F)` attached at `a`; every database graph is a controlled perturbation
//! of `q` (label swaps, extra chords, alternate `=` edge labels) chosen so
//! the exact distances land on the published values.

use gss_graph::{Graph, GraphBuilder, Vocabulary};

/// The Figure 1 pair (`g1`, `g2` in the paper's Example 2 numbering).
#[derive(Debug, Clone)]
pub struct Figure1Pair {
    /// Shared label vocabulary.
    pub vocab: Vocabulary,
    /// The paper's Fig. 1 left graph.
    pub left: Graph,
    /// The paper's Fig. 1 right graph, at uniform edit distance 4 from
    /// `left` via exactly the op kinds of Example 2 (one edge deletion, one
    /// edge relabeling, one vertex relabeling, one edge insertion).
    pub right: Graph,
}

/// Builds the Figure 1 pair: `DistEd = 4`, `|mcs| = 4`,
/// `DistMcs = 1 − 4/6 = 0.33…`, `DistGu = 1 − 4/8 = 0.50`.
pub fn figure1_pair() -> Figure1Pair {
    let mut vocab = Vocabulary::new();
    let left = GraphBuilder::new("fig1-left", &mut vocab)
        .vertex("a", "A")
        .vertex("b", "B")
        .vertex("c", "C")
        .vertex("d", "D")
        .vertex("e", "E")
        .vertex("f", "F")
        .cycle(&["a", "b", "c", "d", "e"], "-")
        .edge("a", "f", "-")
        .build()
        .expect("static graph");
    // From `left`: delete edge b-c, relabel vertex f→X, relabel edge a-f
    // (now a-x) to "=", insert edge b-d.
    let right = GraphBuilder::new("fig1-right", &mut vocab)
        .vertex("a", "A")
        .vertex("b", "B")
        .vertex("c", "C")
        .vertex("d", "D")
        .vertex("e", "E")
        .vertex("x", "X")
        .edge("a", "b", "-")
        .edge("c", "d", "-")
        .edge("d", "e", "-")
        .edge("e", "a", "-")
        .edge("a", "x", "=")
        .edge("b", "d", "-")
        .build()
        .expect("static graph");
    Figure1Pair { vocab, left, right }
}

/// The Figure 3 database `D = {g1, …, g7}` and query `q`.
#[derive(Debug, Clone)]
pub struct Figure3Database {
    /// Shared label vocabulary.
    pub vocab: Vocabulary,
    /// The graph similarity query `q` (6 edges).
    pub query: Graph,
    /// `g1 … g7`, in paper order (index 0 is `g1`).
    pub graphs: Vec<Graph>,
}

/// Builds the Figure 3 database. Sizes: `|g1..g7| = 6,7,7,6,8,9,10`,
/// `|q| = 6`; `g7 ⊃ q` as the paper notes.
pub fn figure3_database() -> Figure3Database {
    let mut vocab = Vocabulary::new();

    let query = GraphBuilder::new("q", &mut vocab)
        .vertex("a", "A")
        .vertex("b", "B")
        .vertex("c", "C")
        .vertex("d", "D")
        .vertex("e", "E")
        .vertex("f", "F")
        .cycle(&["a", "b", "c", "d", "e"], "-")
        .edge("a", "f", "-")
        .build()
        .expect("static graph");

    // g1: drop ab and af from q, add two "="-labeled edges into f.
    // → GED 4, |mcs| 4 (path b-c-d-e-a).
    let g1 = GraphBuilder::new("g1", &mut vocab)
        .vertex("a", "A")
        .vertex("b", "B")
        .vertex("c", "C")
        .vertex("d", "D")
        .vertex("e", "E")
        .vertex("f", "F")
        .path(&["b", "c", "d", "e", "a"], "-")
        .edge("c", "f", "=")
        .edge("e", "f", "=")
        .build()
        .expect("static graph");

    // g2: relabel c→M, relabel both m-edges to "=", add chord bd.
    // → GED 4, |mcs| 4 (ab ∪ ea ∪ de ∪ af around a).
    let g2 = GraphBuilder::new("g2", &mut vocab)
        .vertex("a", "A")
        .vertex("b", "B")
        .vertex("m", "M")
        .vertex("d", "D")
        .vertex("e", "E")
        .vertex("f", "F")
        .edge("a", "b", "-")
        .edge("b", "m", "=")
        .edge("m", "d", "=")
        .edge("d", "e", "-")
        .edge("e", "a", "-")
        .edge("a", "f", "-")
        .edge("b", "d", "-")
        .build()
        .expect("static graph");

    // g3: like g2 but only one relabeled edge. → GED 3, |mcs| 4.
    let g3 = GraphBuilder::new("g3", &mut vocab)
        .vertex("a", "A")
        .vertex("b", "B")
        .vertex("n", "N")
        .vertex("d", "D")
        .vertex("e", "E")
        .vertex("f", "F")
        .edge("a", "b", "-")
        .edge("b", "n", "=")
        .edge("n", "d", "-")
        .edge("d", "e", "-")
        .edge("e", "a", "-")
        .edge("a", "f", "-")
        .edge("b", "d", "-")
        .build()
        .expect("static graph");

    // g4: q with C→Z and F→Y. → GED 2, |mcs| 3 (path d-e-a-b).
    let g4 = GraphBuilder::new("g4", &mut vocab)
        .vertex("a", "A")
        .vertex("b", "B")
        .vertex("z", "Z")
        .vertex("d", "D")
        .vertex("e", "E")
        .vertex("y", "Y")
        .cycle(&["a", "b", "z", "d", "e"], "-")
        .edge("a", "y", "-")
        .build()
        .expect("static graph");

    // g5: q with F→G plus edges cg, eg. → GED 3, |mcs| 5 (the 5-cycle).
    let g5 = GraphBuilder::new("g5", &mut vocab)
        .vertex("a", "A")
        .vertex("b", "B")
        .vertex("c", "C")
        .vertex("d", "D")
        .vertex("e", "E")
        .vertex("g", "G")
        .cycle(&["a", "b", "c", "d", "e"], "-")
        .edge("a", "g", "-")
        .edge("c", "g", "-")
        .edge("e", "g", "-")
        .build()
        .expect("static graph");

    // g6: q with F→K plus edges bk, ck, dk. → GED 4, |mcs| 5.
    let g6 = GraphBuilder::new("g6", &mut vocab)
        .vertex("a", "A")
        .vertex("b", "B")
        .vertex("c", "C")
        .vertex("d", "D")
        .vertex("e", "E")
        .vertex("k", "K")
        .cycle(&["a", "b", "c", "d", "e"], "-")
        .edge("a", "k", "-")
        .edge("b", "k", "-")
        .edge("c", "k", "-")
        .edge("d", "k", "-")
        .build()
        .expect("static graph");

    // g7: q plus chords cf, ef, bd, be — a strict supergraph of q.
    // → GED 4, |mcs| 6.
    let g7 = GraphBuilder::new("g7", &mut vocab)
        .vertex("a", "A")
        .vertex("b", "B")
        .vertex("c", "C")
        .vertex("d", "D")
        .vertex("e", "E")
        .vertex("f", "F")
        .cycle(&["a", "b", "c", "d", "e"], "-")
        .edge("a", "f", "-")
        .edge("c", "f", "-")
        .edge("e", "f", "-")
        .edge("b", "d", "-")
        .edge("b", "e", "-")
        .build()
        .expect("static graph");

    Figure3Database {
        vocab,
        query,
        graphs: vec![g1, g2, g3, g4, g5, g6, g7],
    }
}

/// The hotels of Table I as `(names, [price, distance])` rows.
pub fn hotels() -> (Vec<&'static str>, Vec<Vec<f64>>) {
    (
        vec!["H1", "H2", "H3", "H4", "H5", "H6", "H7"],
        vec![
            vec![4.0, 150.0],
            vec![3.0, 110.0],
            vec![2.5, 240.0],
            vec![2.0, 180.0],
            vec![1.7, 270.0],
            vec![1.0, 195.0],
            vec![1.2, 210.0],
        ],
    )
}

/// The values the paper publishes, for paper-vs-measured reporting.
pub mod expected {
    /// Table II: `|mcs(gi, q)|` for `g1 … g7`.
    pub const TABLE2_MCS: [usize; 7] = [4, 4, 4, 3, 5, 5, 6];
    /// Table III column `DistEd(gi, q)`.
    pub const TABLE3_ED: [f64; 7] = [4.0, 4.0, 3.0, 2.0, 3.0, 4.0, 4.0];
    /// Graph sizes `|g1| … |g7|` as printed in Section VI.
    pub const SIZES: [usize; 7] = [6, 7, 7, 6, 8, 9, 10];
    /// `|q|`.
    pub const QUERY_SIZE: usize = 6;
    /// 0-based indices (into `g1…g7`) of the published skyline
    /// `GSS(D, q) = {g1, g4, g5, g7}`.
    pub const SKYLINE: [usize; 4] = [0, 3, 4, 6];
    /// Published dominance witnesses: (dominated, dominator) — g2 ≺ g7,
    /// g3 ≺ g5, g6 ≺ g1 (0-based).
    pub const DOMINANCE_WITNESSES: [(usize, usize); 3] = [(1, 6), (2, 4), (5, 0)];
    /// Table IV paper values, rows S1..S6 = pairs of the skyline in
    /// lexicographic order ((g1,g4),(g1,g5),(g1,g7),(g4,g5),(g4,g7),(g5,g7));
    /// columns (v1 = normalized GED, v2 = DistMcs, v3 = DistGu).
    pub const TABLE4: [[f64; 3]; 6] = [
        [0.86, 0.67, 0.80],
        [0.83, 0.50, 0.60],
        [0.87, 0.60, 0.67],
        [0.80, 0.62, 0.73],
        [0.83, 0.70, 0.77],
        [0.75, 0.50, 0.61],
    ];
    /// Pairwise GED values implied by Table IV (v1 = x/(1+x)).
    pub const TABLE4_GED: [f64; 6] = [6.0, 5.0, 7.0, 4.0, 5.0, 3.0];
    /// Pairwise `|mcs|` values implied by Table IV columns v2/v3.
    pub const TABLE4_MCS: [usize; 6] = [2, 4, 4, 3, 3, 5];
    /// Table V rank sums for S1..S6.
    pub const TABLE5_VAL: [usize; 6] = [5, 14, 9, 10, 6, 15];
    /// The published refined subset 𝕊 = S1 = {g1, g4} (0-based indices).
    pub const REFINED: [usize; 2] = [0, 3];
    /// Table I skyline (0-based hotel indices of H2, H4, H6).
    pub const HOTEL_SKYLINE: [usize; 3] = [1, 3, 5];
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_graph::algo::is_connected;

    #[test]
    fn figure3_sizes_match_paper() {
        let db = figure3_database();
        assert_eq!(db.query.size(), expected::QUERY_SIZE);
        let sizes: Vec<usize> = db.graphs.iter().map(Graph::size).collect();
        assert_eq!(sizes, expected::SIZES.to_vec());
        for g in &db.graphs {
            assert!(is_connected(g), "{} must be connected", g.name());
        }
        assert!(is_connected(&db.query));
    }

    #[test]
    fn figure1_sizes() {
        let pair = figure1_pair();
        assert_eq!(pair.left.size(), 6);
        assert_eq!(pair.right.size(), 6);
        assert!(is_connected(&pair.left));
        assert!(is_connected(&pair.right));
    }

    #[test]
    fn g7_is_supergraph_of_query() {
        let db = figure3_database();
        assert!(gss_iso::is_subgraph_isomorphic(&db.query, &db.graphs[6]));
    }

    #[test]
    fn graphs_share_one_vocabulary() {
        let db = figure3_database();
        // Every label used in any graph resolves in db.vocab.
        for g in db.graphs.iter().chain(std::iter::once(&db.query)) {
            for v in g.vertices() {
                assert!(db.vocab.name(g.vertex_label(v)).is_some());
            }
            for e in g.edges() {
                assert!(db.vocab.name(g.edge_label(e)).is_some());
            }
        }
    }

    #[test]
    fn hotels_table_shape() {
        let (names, rows) = hotels();
        assert_eq!(names.len(), 7);
        assert_eq!(rows.len(), 7);
        assert!(rows.iter().all(|r| r.len() == 2));
    }
}
