//! Synthetic labeled-graph generators.
//!
//! The paper motivates graph similarity search with bioinformatics, chemical
//! compounds, pattern recognition and social networks; these generators
//! produce deterministic synthetic stand-ins for those workloads (the paper
//! promises experiments on real data as future work, so there is no
//! published dataset to replicate). All generators are driven by the
//! workspace's deterministic [`Rng`], so a `(config, seed)` pair always
//! yields the same graphs.

use gss_graph::{Graph, Label, Rng, VertexId, Vocabulary};

/// Configuration for [`random_connected_graph`].
#[derive(Clone, Debug)]
pub struct RandomGraphConfig {
    /// Number of vertices (≥ 1).
    pub vertices: usize,
    /// Number of edges; clamped to `[vertices-1, C(n,2)]` so the graph can
    /// be connected and simple.
    pub edges: usize,
    /// Vertex label alphabet (names are interned on demand).
    pub vertex_alphabet: Vec<String>,
    /// Edge label alphabet.
    pub edge_alphabet: Vec<String>,
}

impl Default for RandomGraphConfig {
    fn default() -> Self {
        RandomGraphConfig {
            vertices: 8,
            edges: 10,
            vertex_alphabet: ["A", "B", "C", "D"].iter().map(|s| s.to_string()).collect(),
            edge_alphabet: ["-", "="].iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// Generates a connected random labeled graph: a random spanning tree
/// (guaranteeing connectivity) plus uniformly sampled extra edges.
pub fn random_connected_graph(
    name: impl Into<String>,
    cfg: &RandomGraphConfig,
    vocab: &mut Vocabulary,
    rng: &mut Rng,
) -> Graph {
    assert!(cfg.vertices >= 1, "need at least one vertex");
    assert!(!cfg.vertex_alphabet.is_empty() && !cfg.edge_alphabet.is_empty());
    let n = cfg.vertices;
    let max_edges = n * (n - 1) / 2;
    let m = cfg.edges.clamp(n.saturating_sub(1), max_edges);

    let vlabels: Vec<Label> = cfg
        .vertex_alphabet
        .iter()
        .map(|s| vocab.intern(s))
        .collect();
    let elabels: Vec<Label> = cfg.edge_alphabet.iter().map(|s| vocab.intern(s)).collect();

    let mut g = Graph::with_capacity(name, n, m);
    for _ in 0..n {
        let l = *rng.choose(&vlabels).expect("non-empty alphabet");
        g.add_vertex(l);
    }
    // Random spanning tree: connect vertex i to a random earlier vertex.
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    for i in 1..n {
        let j = order[rng.gen_index(i)];
        let l = *rng.choose(&elabels).expect("non-empty alphabet");
        g.add_edge(VertexId::new(order[i]), VertexId::new(j), l)
            .expect("tree edges cannot clash");
    }
    // Extra edges by rejection sampling.
    let mut guard = 0usize;
    while g.size() < m && guard < 50 * m + 100 {
        guard += 1;
        let u = VertexId::new(rng.gen_index(n));
        let v = VertexId::new(rng.gen_index(n));
        if u == v || g.has_edge(u, v) {
            continue;
        }
        let l = *rng.choose(&elabels).expect("non-empty alphabet");
        g.add_edge(u, v, l).expect("checked for duplicates");
    }
    g
}

/// Configuration for [`molecule_like_graph`]: organic-chemistry-flavoured
/// graphs with valence-capped atoms and bond labels, echoing the chemical
/// compound workloads the paper cites.
#[derive(Clone, Debug)]
pub struct MoleculeConfig {
    /// Number of atoms.
    pub atoms: usize,
    /// Probability of attempting a ring-closing extra bond per atom.
    pub ring_bond_prob: f64,
}

impl Default for MoleculeConfig {
    fn default() -> Self {
        MoleculeConfig {
            atoms: 10,
            ring_bond_prob: 0.3,
        }
    }
}

const ATOMS: [(&str, usize); 4] = [("C", 4), ("N", 3), ("O", 2), ("S", 2)];
const BONDS: [&str; 3] = ["-", "=", "#"];

/// Generates a connected molecule-like graph: atoms with element labels and
/// valence caps, single/double/triple bond labels, tree backbone plus
/// occasional rings.
pub fn molecule_like_graph(
    name: impl Into<String>,
    cfg: &MoleculeConfig,
    vocab: &mut Vocabulary,
    rng: &mut Rng,
) -> Graph {
    assert!(cfg.atoms >= 1);
    let n = cfg.atoms;
    let mut g = Graph::with_capacity(name, n, n + 2);
    let mut valence = Vec::with_capacity(n);
    let mut capacity = Vec::with_capacity(n);
    for _ in 0..n {
        let (sym, cap) = ATOMS[rng.gen_index(ATOMS.len())];
        g.add_vertex(vocab.intern(sym));
        valence.push(0usize);
        capacity.push(cap);
    }
    let bond_labels: Vec<Label> = BONDS.iter().map(|b| vocab.intern(b)).collect();

    // Backbone: attach atom i to an earlier atom with free valence.
    for i in 1..n {
        let candidates: Vec<usize> = (0..i).filter(|&j| valence[j] < capacity[j]).collect();
        // Fall back to any earlier atom if everything is saturated — a
        // slightly over-bonded molecule beats a disconnected one.
        let j = if candidates.is_empty() {
            rng.gen_index(i)
        } else {
            *rng.choose(&candidates).expect("non-empty")
        };
        let bond = bond_labels[rng
            .gen_index(if valence[j] + 2 <= capacity[j] { 2 } else { 1 }.min(bond_labels.len()))];
        g.add_edge(VertexId::new(i), VertexId::new(j), bond)
            .expect("tree edge");
        valence[i] += 1;
        valence[j] += 1;
    }
    // Ring closures.
    for i in 0..n {
        if valence[i] < capacity[i] && rng.gen_bool(cfg.ring_bond_prob) {
            let candidates: Vec<usize> = (0..n)
                .filter(|&j| {
                    j != i
                        && valence[j] < capacity[j]
                        && !g.has_edge(VertexId::new(i), VertexId::new(j))
                })
                .collect();
            if let Some(&j) = rng.choose(&candidates) {
                g.add_edge(VertexId::new(i), VertexId::new(j), bond_labels[0])
                    .expect("checked");
                valence[i] += 1;
                valence[j] += 1;
            }
        }
    }
    g
}

/// The *style* of a typed perturbation (see [`perturb_typed`]).
///
/// Different styles trade off differently against the three measures — the
/// ingredient that makes synthetic skylines non-trivial, mirroring the
/// paper's Section VI discussion (g4 wins on `DistEd`, g1 on `DistMcs`,
/// g7 ⊃ q on `DistGu`):
///
/// * [`Grow`](PerturbationStyle::Grow) keeps the original as a common
///   subgraph (good `DistMcs`/`DistGu`) while paying edit distance;
/// * [`Shrink`](PerturbationStyle::Shrink) keeps edit distance low but
///   shrinks the common subgraph;
/// * [`Relabel`](PerturbationStyle::Relabel) keeps sizes identical but can
///   split the common subgraph badly.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PerturbationStyle {
    /// Only insert edges (supergraph-ish).
    Grow,
    /// Only delete edges (subgraph-ish).
    Shrink,
    /// Only relabel vertices/edges.
    Relabel,
    /// Uniform mix of all operations.
    Mixed,
}

/// Like [`perturb`] but with a fixed [`PerturbationStyle`].
pub fn perturb_typed(
    g: &Graph,
    style: PerturbationStyle,
    edits: usize,
    vocab: &mut Vocabulary,
    rng: &mut Rng,
    fresh_label_prefix: &str,
) -> Graph {
    let mut out = g.clone();
    let mut fresh = 0usize;
    for _ in 0..edits {
        let mut guard = 0;
        let mut done = false;
        while !done && guard < 64 {
            guard += 1;
            let op = match style {
                PerturbationStyle::Grow => 3,
                PerturbationStyle::Shrink => 2,
                // Vertex relabels only: relabeling a degree-d vertex breaks
                // d shared edges, so cheap edits here carry real MCS damage
                // (an edge relabel would be a near-free edit and make the
                // perturbed graph dominate everything).
                PerturbationStyle::Relabel => 0,
                PerturbationStyle::Mixed => rng.gen_index(4),
            };
            match op {
                0 if out.order() > 0 => {
                    // Prefer the higher-degree of two sampled vertices.
                    let v1 = VertexId::new(rng.gen_index(out.order()));
                    let v2 = VertexId::new(rng.gen_index(out.order()));
                    let v = if out.degree(v1) >= out.degree(v2) {
                        v1
                    } else {
                        v2
                    };
                    let l = vocab.intern(&format!("{fresh_label_prefix}{fresh}"));
                    fresh += 1;
                    out.relabel_vertex(v, l).expect("in range");
                    done = true;
                }
                1 if out.size() > 0 => {
                    let e = gss_graph::EdgeId::new(rng.gen_index(out.size()));
                    let l = vocab.intern(&format!("{fresh_label_prefix}e{fresh}"));
                    fresh += 1;
                    out.relabel_edge(e, l).expect("in range");
                    done = true;
                }
                2 if out.size() > 0 => {
                    let e = gss_graph::EdgeId::new(rng.gen_index(out.size()));
                    out = out.without_edges(&[e]);
                    done = true;
                }
                3 if out.order() >= 2 => {
                    let u = VertexId::new(rng.gen_index(out.order()));
                    let v = VertexId::new(rng.gen_index(out.order()));
                    if u != v && !out.has_edge(u, v) {
                        let l = vocab.intern("-");
                        out.add_edge(u, v, l).expect("checked");
                        done = true;
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// Applies `edits` random edit operations to a copy of `g`, returning the
/// perturbed graph. Operations are drawn uniformly from {vertex relabel,
/// edge relabel, edge deletion, edge insertion}; each applied operation
/// changes the graph, so the uniform GED to the original is at most
/// `edits` (and usually close to it for small counts) — the knob the
/// perturbation workloads use to plant graphs at controlled distances.
pub fn perturb(
    g: &Graph,
    edits: usize,
    vocab: &mut Vocabulary,
    rng: &mut Rng,
    fresh_label_prefix: &str,
) -> Graph {
    perturb_typed(
        g,
        PerturbationStyle::Mixed,
        edits,
        vocab,
        rng,
        fresh_label_prefix,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_graph::algo::is_connected;

    #[test]
    fn random_graph_is_connected_and_sized() {
        let mut vocab = Vocabulary::new();
        let mut rng = Rng::seed_from_u64(1);
        for n in [1usize, 2, 5, 12] {
            let cfg = RandomGraphConfig {
                vertices: n,
                edges: n + 3,
                ..Default::default()
            };
            let g = random_connected_graph("t", &cfg, &mut vocab, &mut rng);
            assert_eq!(g.order(), n);
            assert!(is_connected(&g), "n={n}");
            let max = n * (n - 1) / 2;
            assert!(g.size() <= max);
            assert!(g.size() >= n.saturating_sub(1));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = RandomGraphConfig::default();
        let make = || {
            let mut vocab = Vocabulary::new();
            let mut rng = Rng::seed_from_u64(42);
            let g = random_connected_graph("t", &cfg, &mut vocab, &mut rng);
            gss_graph::format::write_database(&[g], &vocab)
        };
        assert_eq!(make(), make());
    }

    #[test]
    fn molecules_respect_connectivity() {
        let mut vocab = Vocabulary::new();
        let mut rng = Rng::seed_from_u64(7);
        for atoms in [1usize, 3, 8, 20] {
            let cfg = MoleculeConfig {
                atoms,
                ..Default::default()
            };
            let m = molecule_like_graph("mol", &cfg, &mut vocab, &mut rng);
            assert_eq!(m.order(), atoms);
            assert!(is_connected(&m), "atoms={atoms}");
        }
    }

    #[test]
    fn molecule_labels_are_chemical() {
        let mut vocab = Vocabulary::new();
        let mut rng = Rng::seed_from_u64(9);
        let m = molecule_like_graph(
            "mol",
            &MoleculeConfig {
                atoms: 15,
                ..Default::default()
            },
            &mut vocab,
            &mut rng,
        );
        for v in m.vertices() {
            let name = vocab.name(m.vertex_label(v)).unwrap();
            assert!(["C", "N", "O", "S"].contains(&name));
        }
        for e in m.edges() {
            let name = vocab.name(m.edge_label(e)).unwrap();
            assert!(["-", "=", "#"].contains(&name));
        }
    }

    #[test]
    fn perturbation_bounds_edit_distance() {
        let mut vocab = Vocabulary::new();
        let mut rng = Rng::seed_from_u64(11);
        let base = random_connected_graph(
            "base",
            &RandomGraphConfig {
                vertices: 6,
                edges: 7,
                ..Default::default()
            },
            &mut vocab,
            &mut rng,
        );
        for edits in [0usize, 1, 2, 3] {
            let p = perturb(&base, edits, &mut vocab, &mut rng, "P");
            let d = gss_ged::ged(&base, &p);
            assert!(
                d <= edits as f64 + 1e-9,
                "{edits} edits produced distance {d}"
            );
            if edits == 0 {
                assert_eq!(d, 0.0);
            }
        }
    }

    #[test]
    fn perturbation_leaves_original_untouched() {
        let mut vocab = Vocabulary::new();
        let mut rng = Rng::seed_from_u64(13);
        let base =
            random_connected_graph("base", &RandomGraphConfig::default(), &mut vocab, &mut rng);
        let before = gss_graph::format::write_database(std::slice::from_ref(&base), &vocab);
        let _ = perturb(&base, 5, &mut vocab, &mut rng, "P");
        let after = gss_graph::format::write_database(&[base], &vocab);
        assert_eq!(before, after);
    }
}
