//! Property-based tests for the generators and perturbation operators.

use gss_datasets::synth::{
    molecule_like_graph, perturb_typed, random_connected_graph, MoleculeConfig, PerturbationStyle,
    RandomGraphConfig,
};
use gss_graph::{algo, Rng, Vocabulary};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn random_graphs_are_connected_simple_and_sized(
        seed in any::<u64>(), n in 1usize..14, extra in 0usize..10,
    ) {
        let mut vocab = Vocabulary::new();
        let mut rng = Rng::seed_from_u64(seed);
        let cfg = RandomGraphConfig { vertices: n, edges: n + extra, ..Default::default() };
        let g = random_connected_graph("g", &cfg, &mut vocab, &mut rng);
        prop_assert_eq!(g.order(), n);
        prop_assert!(algo::is_connected(&g));
        prop_assert!(g.size() <= n * n.saturating_sub(1) / 2);
        prop_assert_eq!(g.degree_sum(), 2 * g.size());
    }

    #[test]
    fn molecules_are_connected_with_chemical_labels(
        seed in any::<u64>(), atoms in 1usize..16,
    ) {
        let mut vocab = Vocabulary::new();
        let mut rng = Rng::seed_from_u64(seed);
        let cfg = MoleculeConfig { atoms, ..Default::default() };
        let m = molecule_like_graph("m", &cfg, &mut vocab, &mut rng);
        prop_assert_eq!(m.order(), atoms);
        prop_assert!(algo::is_connected(&m));
        for v in m.vertices() {
            let name = vocab.name(m.vertex_label(v)).expect("interned");
            prop_assert!(["C", "N", "O", "S"].contains(&name));
        }
    }

    #[test]
    fn perturbation_styles_have_their_advertised_shape(
        seed in any::<u64>(), edits in 1usize..4,
    ) {
        let mut vocab = Vocabulary::new();
        let mut rng = Rng::seed_from_u64(seed);
        let cfg = RandomGraphConfig { vertices: 6, edges: 8, ..Default::default() };
        let base = random_connected_graph("base", &cfg, &mut vocab, &mut rng);

        let grown = perturb_typed(&base, PerturbationStyle::Grow, edits, &mut vocab, &mut rng, "G");
        prop_assert!(grown.size() >= base.size(), "grow never removes edges");
        prop_assert_eq!(grown.order(), base.order());

        let shrunk = perturb_typed(&base, PerturbationStyle::Shrink, edits, &mut vocab, &mut rng, "S");
        prop_assert!(shrunk.size() <= base.size(), "shrink never adds edges");

        let relabeled = perturb_typed(&base, PerturbationStyle::Relabel, edits, &mut vocab, &mut rng, "R");
        prop_assert_eq!(relabeled.size(), base.size(), "relabel keeps edge count");
        prop_assert_eq!(relabeled.order(), base.order());
    }

    #[test]
    fn perturbation_bounds_ged_by_edit_count(
        seed in any::<u64>(), edits in 0usize..4,
    ) {
        let mut vocab = Vocabulary::new();
        let mut rng = Rng::seed_from_u64(seed);
        let cfg = RandomGraphConfig { vertices: 5, edges: 6, ..Default::default() };
        let base = random_connected_graph("base", &cfg, &mut vocab, &mut rng);
        for style in [
            PerturbationStyle::Grow,
            PerturbationStyle::Shrink,
            PerturbationStyle::Relabel,
            PerturbationStyle::Mixed,
        ] {
            let p = perturb_typed(&base, style, edits, &mut vocab, &mut rng, "P");
            let d = gss_ged::ged(&base, &p);
            prop_assert!(
                d <= edits as f64 + 1e-9,
                "{style:?} with {edits} edits gave GED {d}"
            );
        }
    }
}
