//! Verifies that the reconstructed paper datasets reproduce the published
//! numbers when fed to the *exact* solvers. This is the load-bearing test of
//! the whole reproduction: nothing here is hard-coded from our own code
//! paths — left column paper, right column solver output.

use gss_datasets::paper::{expected, figure1_pair, figure3_database};
use gss_ged::ged;
use gss_mcs::mcs_edge_size;

#[test]
fn figure1_example_2_3_4() {
    let pair = figure1_pair();
    // Example 2: DistEd(g1, g2) = 4.
    assert_eq!(ged(&pair.left, &pair.right), 4.0);
    // Example 3: |mcs| = 4 → DistMcs = 1 − 4/6 = 0.33….
    let mcs = mcs_edge_size(&pair.left, &pair.right);
    assert_eq!(mcs, 4);
    let dist_mcs = 1.0 - mcs as f64 / 6.0;
    assert!((dist_mcs - 1.0 / 3.0).abs() < 1e-12);
    // Example 4: DistGu = 1 − 4/(6+6−4) = 0.50.
    let dist_gu = 1.0 - mcs as f64 / (6.0 + 6.0 - mcs as f64);
    assert!((dist_gu - 0.5).abs() < 1e-12);
}

#[test]
fn table2_mcs_sizes() {
    let db = figure3_database();
    let measured: Vec<usize> = db
        .graphs
        .iter()
        .map(|g| mcs_edge_size(g, &db.query))
        .collect();
    assert_eq!(measured, expected::TABLE2_MCS.to_vec());
}

#[test]
fn table3_edit_distances() {
    let db = figure3_database();
    let measured: Vec<f64> = db.graphs.iter().map(|g| ged(g, &db.query)).collect();
    assert_eq!(measured, expected::TABLE3_ED.to_vec());
}

#[test]
fn table4_pairwise_values() {
    let db = figure3_database();
    let sky: Vec<_> = expected::SKYLINE.iter().map(|&i| &db.graphs[i]).collect();
    let mut idx = 0;
    for a in 0..sky.len() {
        for b in a + 1..sky.len() {
            let d = ged(sky[a], sky[b]);
            let m = mcs_edge_size(sky[a], sky[b]);
            // MCS sizes all match the paper.
            assert_eq!(m, expected::TABLE4_MCS[idx], "pair index {idx}");
            // GED matches except the two provably-inconsistent cells
            // (S3 = (g1,g7) and S5 = (g4,g7)) — there we must get 6.
            match idx {
                2 | 4 => assert_eq!(d, 6.0, "pair index {idx}"),
                _ => assert_eq!(d, expected::TABLE4_GED[idx], "pair index {idx}"),
            }
            idx += 1;
        }
    }
    assert_eq!(idx, 6);
}
