//! # gss-protocol — the `gss-server` wire protocol
//!
//! The single definition of the serving wire format, shared by the server
//! engine, the `gss-server` client, the CLI and the loopback tests.
//! Everything here is transport- and engine-free: typed [`Request`] /
//! [`Response`] envelopes plus `to_line` / `from_line` codecs over
//! newline-delimited JSON. The server parses requests through this crate
//! and serializes responses through it **once, at the connection edge**;
//! result documents stay pre-serialized strings so cached responses are
//! byte-identical to fresh ones by construction.
//!
//! ## Wire format
//!
//! The protocol is **newline-delimited JSON**: one request object per
//! line, one response object per line, over a plain TCP connection (test
//! it with `nc`). Requests are answered in order per connection;
//! concurrency comes from multiple connections. Every request may carry
//! an `"id"` (string or number), echoed verbatim in the response.
//!
//! ### Verbs
//!
//! | request | response |
//! |---------|----------|
//! | `{"op":"ping"}` | `{"ok":true}` |
//! | `{"op":"stats"}` | `{"ok":true,"stats":{…}}` |
//! | `{"op":"shutdown"}` | `{"ok":true,"draining":true}` |
//! | `{"op":"query","graph":"t q\nv 0 C\n…"}` | `{"ok":true,"cached":false,"result":{…}}` |
//! | `{"op":"insert","graphs":"t a\nv 0 C\n…"}` | `{"ok":true,"epoch":1,"inserted":1,"removed":0,"updated":0}` |
//! | `{"op":"remove","names":["a"]}` | `{"ok":true,"epoch":2,"inserted":0,"removed":1,"updated":0}` |
//! | `{"op":"update","name":"a","graph":"t a\n…"}` | `{"ok":true,"epoch":3,"inserted":0,"removed":0,"updated":1}` |
//!
//! Anything else (including malformed JSON) gets
//! `{"ok":false,"error":"…"}`. Two error envelopes are machine-readable:
//! the admission rejection `{"ok":false,"error":"queue full",`
//! `"retry_after_ms":N}` ([`Response::Backpressure`]) and the deadline
//! expiry `{"ok":false,"error":"deadline exceeded"}`
//! ([`Response::Expired`]).
//!
//! ### The `query` verb
//!
//! * `"graph"` (required) — the query graph in the `t/v/e` text format
//!   (first graph of the document is used). Labels unknown to the
//!   database are fine; they simply never match.
//! * `"options"` (optional object) — per-request overrides of the
//!   server's base options: `"prefilter"` (bool), `"approx"` (bool:
//!   bipartite GED + greedy MCS), `"algo"` (`"naive"|"bnl"|"sfs"`),
//!   `"plan"` (`"auto"|"naive"|"prefilter"|"indexed"|"sharded"`;
//!   `"indexed"` needs a server-side index). Unknown keys are rejected.
//! * `"deadline_ms"` (optional) — the evaluation deadline. If the request
//!   is still waiting in the server queue when it expires it is dropped;
//!   if it expires **mid-evaluation**, the scan is aborted at the next
//!   wave checkpoint. Either way the response is
//!   `{"ok":false,"error":"deadline exceeded"}`.
//!
//! The `"result"` payload is exactly the `gss_core::to_json` explain
//! document (measures, per-graph GCS vectors, dominators, skyline,
//! pruning stats when a pruned plan ran), compacted onto one line by the
//! [`gss_core::jsonio`] writer.
//!
//! ### Mutation verbs
//!
//! `insert` / `remove` / `update` mutate the server's live store: each
//! request is one atomic batch that bumps the database **epoch** (echoed
//! in the [`Response::Mutated`] envelope, along with the applied
//! operation counts). Graph payloads use the same `t/v/e` text format as
//! queries; `insert` may carry any number of graphs, `update` exactly
//! one. Queries already admitted keep evaluating against the snapshot
//! they were admitted on; since the epoch is folded into the database
//! fingerprint, cached results can never leak across epochs.
//!
//! Every mutation verb accepts an optional `"mutation_id"` string — an
//! idempotency key. A server with a durable store deduplicates retries
//! carrying an id it already applied: the retry is acked with the
//! **original** receipt plus `"replayed":true`, and the epoch advances
//! exactly once. `"replayed"` is omitted (not `false`) on first
//! applications, so pre-durability ack bytes are unchanged.
//!
//! ## Split of responsibilities
//!
//! This crate owns the *shape* of the protocol: JSON structure, field
//! types, option vocabulary, the exact response byte formats. Semantic
//! resolution stays in the server engine: parsing the graph text against
//! the database vocabulary, merging overrides into the base options,
//! checking that an `"indexed"` plan has an index, building cache keys
//! and arming deadlines. [`Request::from_line`] therefore returns a
//! [`QueryEnvelope`] whose graph is still raw text.

#![warn(missing_docs)]

use gss_core::jsonio::{escape, Value};
use gss_core::Plan;
use gss_skyline::Algorithm;

/// A parsed request line: one of the four protocol verbs.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping {
        /// Client correlation id, echoed back.
        id: Option<Value>,
    },
    /// Counter snapshot.
    Stats {
        /// Client correlation id, echoed back.
        id: Option<Value>,
    },
    /// Begin graceful drain.
    Shutdown {
        /// Client correlation id, echoed back.
        id: Option<Value>,
    },
    /// A skyline query (boxed: the envelope carries the graph text).
    Query(Box<QueryEnvelope>),
    /// Append graphs to the live store (one atomic batch, one epoch).
    Insert {
        /// Client correlation id, echoed back.
        id: Option<Value>,
        /// Graphs to append, in `t/v/e` text form (any number).
        graphs: String,
        /// Client-supplied idempotency key: a server with a durable
        /// store deduplicates retries carrying the same id.
        mutation_id: Option<String>,
    },
    /// Remove graphs from the live store by name.
    Remove {
        /// Client correlation id, echoed back.
        id: Option<Value>,
        /// Names of the graphs to remove (at least one).
        names: Vec<String>,
        /// Client-supplied idempotency key (see [`Request::Insert`]).
        mutation_id: Option<String>,
    },
    /// Replace one named graph in place.
    Update {
        /// Client correlation id, echoed back.
        id: Option<Value>,
        /// Name of the graph to replace.
        name: String,
        /// The replacement, in `t/v/e` text form (exactly one graph).
        graph: String,
        /// Client-supplied idempotency key (see [`Request::Insert`]).
        mutation_id: Option<String>,
    },
}

/// The wire-level body of a `query` request: raw graph text plus typed
/// option overrides. The server engine resolves it against its database
/// and base options.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryEnvelope {
    /// Client correlation id, echoed back in the response.
    pub id: Option<Value>,
    /// The query graph in `t/v/e` text form (unparsed: graph semantics
    /// belong to the engine, which owns the label vocabulary).
    pub graph: String,
    /// Per-request option overrides (`None` fields keep the server base).
    pub overrides: QueryOverrides,
    /// Evaluation deadline in milliseconds, when the client set one.
    pub deadline_ms: Option<u64>,
}

/// Typed per-request overrides of the server's base query options. Every
/// field defaults to `None` — "keep the server's setting".
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryOverrides {
    /// Request (or veto) the filter-and-verify pruned scan under the
    /// automatic plan.
    pub prefilter: Option<bool>,
    /// `true` selects the approximate solver pair (bipartite GED + greedy
    /// MCS); `false` forces the exact solvers.
    pub approx: Option<bool>,
    /// Skyline algorithm override. The wire vocabulary is
    /// `naive|bnl|sfs`; [`Algorithm::DivideConquer2D`] has no wire token
    /// and is emitted as `"dc2d"`, which servers reject.
    pub algo: Option<Algorithm>,
    /// Evaluation plan override (`auto|naive|prefilter|indexed|sharded`).
    pub plan: Option<Plan>,
}

impl QueryOverrides {
    /// True when every field keeps the server default (no `"options"`
    /// object is emitted on the wire).
    pub fn is_empty(&self) -> bool {
        *self == QueryOverrides::default()
    }
}

/// A request parse failure: the correlation id (when one was readable)
/// plus a message for the error envelope.
#[derive(Clone, Debug, PartialEq)]
pub struct WireError {
    /// Correlation id to echo, if the line got far enough to carry one.
    pub id: Option<Value>,
    /// Human-readable message.
    pub message: String,
}

impl WireError {
    fn new(id: &Option<Value>, message: impl Into<String>) -> WireError {
        WireError {
            id: id.clone(),
            message: message.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for WireError {}

fn algo_token(algo: Algorithm) -> &'static str {
    match algo {
        Algorithm::Naive => "naive",
        Algorithm::Bnl => "bnl",
        Algorithm::Sfs => "sfs",
        Algorithm::DivideConquer2D => "dc2d",
    }
}

impl Request {
    /// Parses one request line. Validates protocol *shape* only — graph
    /// text stays raw and plan/index compatibility is the engine's call.
    pub fn from_line(line: &str) -> Result<Request, WireError> {
        let doc =
            Value::parse(line).map_err(|e| WireError::new(&None, format!("bad request: {e}")))?;
        let id = doc.get("id").cloned();
        if let Some(v) = &id {
            if !matches!(v, Value::String(_) | Value::Number(_)) {
                return Err(WireError::new(&None, "\"id\" must be a string or number"));
            }
        }
        let Some(op) = doc.get("op").and_then(Value::as_str) else {
            return Err(WireError::new(
                &id,
                "missing \"op\" (query|ping|stats|shutdown|insert|remove|update)",
            ));
        };
        match op {
            "ping" => Ok(Request::Ping { id }),
            "stats" => Ok(Request::Stats { id }),
            "shutdown" => Ok(Request::Shutdown { id }),
            "query" => parse_query(&doc, id),
            "insert" => {
                let Some(graphs) = doc.get("graphs").and_then(Value::as_str) else {
                    return Err(WireError::new(
                        &id,
                        "insert needs a \"graphs\" field (t/v/e text)",
                    ));
                };
                let mutation_id = parse_mutation_id(&doc, &id)?;
                Ok(Request::Insert {
                    id,
                    graphs: graphs.to_owned(),
                    mutation_id,
                })
            }
            "remove" => {
                let names = doc
                    .get("names")
                    .and_then(Value::as_array)
                    .map(|items| {
                        items
                            .iter()
                            .map(|v| v.as_str().map(str::to_owned))
                            .collect::<Option<Vec<String>>>()
                    })
                    .unwrap_or(None)
                    .filter(|names| !names.is_empty());
                let Some(names) = names else {
                    return Err(WireError::new(
                        &id,
                        "remove needs a non-empty \"names\" array of strings",
                    ));
                };
                let mutation_id = parse_mutation_id(&doc, &id)?;
                Ok(Request::Remove {
                    id,
                    names,
                    mutation_id,
                })
            }
            "update" => {
                let Some(name) = doc.get("name").and_then(Value::as_str) else {
                    return Err(WireError::new(&id, "update needs a \"name\" field"));
                };
                let Some(graph) = doc.get("graph").and_then(Value::as_str) else {
                    return Err(WireError::new(
                        &id,
                        "update needs a \"graph\" field (t/v/e text, one graph)",
                    ));
                };
                let mutation_id = parse_mutation_id(&doc, &id)?;
                Ok(Request::Update {
                    id,
                    name: name.to_owned(),
                    graph: graph.to_owned(),
                    mutation_id,
                })
            }
            other => Err(WireError::new(&id, format!("unknown op {other:?}"))),
        }
    }

    /// Serializes the request onto one wire line (newline included).
    pub fn to_line(&self) -> String {
        match self {
            Request::Ping { id } => request_line(id, "ping", ""),
            Request::Stats { id } => request_line(id, "stats", ""),
            Request::Shutdown { id } => request_line(id, "shutdown", ""),
            Request::Query(q) => {
                let mut extra = String::new();
                extra.push_str(",\"graph\":\"");
                extra.push_str(&escape(&q.graph));
                extra.push('"');
                let o = &q.overrides;
                if !o.is_empty() {
                    extra.push_str(",\"options\":{");
                    let mut first = true;
                    let mut member = |out: &mut String, name: &str, value: String| {
                        if !first {
                            out.push(',');
                        }
                        first = false;
                        out.push('"');
                        out.push_str(name);
                        out.push_str("\":");
                        out.push_str(&value);
                    };
                    if let Some(p) = o.prefilter {
                        member(&mut extra, "prefilter", p.to_string());
                    }
                    if let Some(a) = o.approx {
                        member(&mut extra, "approx", a.to_string());
                    }
                    if let Some(algo) = o.algo {
                        member(&mut extra, "algo", format!("\"{}\"", algo_token(algo)));
                    }
                    if let Some(plan) = o.plan {
                        member(&mut extra, "plan", format!("\"{}\"", plan.name()));
                    }
                    extra.push('}');
                }
                if let Some(ms) = q.deadline_ms {
                    extra.push_str(",\"deadline_ms\":");
                    extra.push_str(&ms.to_string());
                }
                request_line(&q.id, "query", &extra)
            }
            Request::Insert {
                id,
                graphs,
                mutation_id,
            } => {
                let mut extra = format!(",\"graphs\":\"{}\"", escape(graphs));
                push_mutation_id(&mut extra, mutation_id);
                request_line(id, "insert", &extra)
            }
            Request::Remove {
                id,
                names,
                mutation_id,
            } => {
                let mut extra = String::from(",\"names\":[");
                for (i, name) in names.iter().enumerate() {
                    if i > 0 {
                        extra.push(',');
                    }
                    extra.push('"');
                    extra.push_str(&escape(name));
                    extra.push('"');
                }
                extra.push(']');
                push_mutation_id(&mut extra, mutation_id);
                request_line(id, "remove", &extra)
            }
            Request::Update {
                id,
                name,
                graph,
                mutation_id,
            } => {
                let mut extra = format!(
                    ",\"name\":\"{}\",\"graph\":\"{}\"",
                    escape(name),
                    escape(graph)
                );
                push_mutation_id(&mut extra, mutation_id);
                request_line(id, "update", &extra)
            }
        }
    }

    /// The correlation id the request carries, if any.
    pub fn id(&self) -> &Option<Value> {
        match self {
            Request::Ping { id }
            | Request::Stats { id }
            | Request::Shutdown { id }
            | Request::Insert { id, .. }
            | Request::Remove { id, .. }
            | Request::Update { id, .. } => id,
            Request::Query(q) => &q.id,
        }
    }

    /// The client-supplied idempotency key, for the mutation verbs.
    pub fn mutation_id(&self) -> Option<&str> {
        match self {
            Request::Insert { mutation_id, .. }
            | Request::Remove { mutation_id, .. }
            | Request::Update { mutation_id, .. } => mutation_id.as_deref(),
            _ => None,
        }
    }
}

fn parse_mutation_id(doc: &Value, id: &Option<Value>) -> Result<Option<String>, WireError> {
    match doc.get("mutation_id") {
        None => Ok(None),
        Some(v) => match v.as_str() {
            Some(s) => Ok(Some(s.to_owned())),
            None => Err(WireError::new(id, "\"mutation_id\" must be a string")),
        },
    }
}

fn push_mutation_id(extra: &mut String, mutation_id: &Option<String>) {
    if let Some(mid) = mutation_id {
        extra.push_str(",\"mutation_id\":\"");
        extra.push_str(&escape(mid));
        extra.push('"');
    }
}

fn request_line(id: &Option<Value>, op: &str, extra: &str) -> String {
    let mut out = String::with_capacity(extra.len() + 32);
    out.push('{');
    if let Some(id) = id {
        out.push_str("\"id\":");
        out.push_str(&id.to_compact());
        out.push(',');
    }
    out.push_str("\"op\":\"");
    out.push_str(op);
    out.push('"');
    out.push_str(extra);
    out.push_str("}\n");
    out
}

fn parse_query(doc: &Value, id: Option<Value>) -> Result<Request, WireError> {
    let err = |message: String| WireError {
        id: id.clone(),
        message,
    };
    let Some(graph) = doc.get("graph").and_then(Value::as_str) else {
        return Err(err("query needs a \"graph\" field (t/v/e text)".into()));
    };
    let mut overrides = QueryOverrides::default();
    if let Some(o) = doc.get("options") {
        let members = o
            .as_object()
            .ok_or_else(|| err("\"options\" must be an object".into()))?;
        for (k, v) in members {
            match k.as_str() {
                "prefilter" => {
                    overrides.prefilter = Some(
                        v.as_bool()
                            .ok_or_else(|| err("options.prefilter must be a boolean".into()))?,
                    );
                }
                "approx" => {
                    overrides.approx = Some(
                        v.as_bool()
                            .ok_or_else(|| err("options.approx must be a boolean".into()))?,
                    );
                }
                "algo" => {
                    overrides.algo = Some(match v.as_str() {
                        Some("naive") => Algorithm::Naive,
                        Some("bnl") => Algorithm::Bnl,
                        Some("sfs") => Algorithm::Sfs,
                        _ => return Err(err("options.algo must be naive|bnl|sfs".into())),
                    });
                }
                "plan" => {
                    overrides.plan = Some(v.as_str().and_then(Plan::parse).ok_or_else(|| {
                        err("options.plan must be auto|naive|prefilter|indexed|sharded".into())
                    })?);
                }
                other => return Err(err(format!("unknown option {other:?}"))),
            }
        }
    }
    let deadline_ms = match doc.get("deadline_ms") {
        None => None,
        Some(v) => Some(
            v.as_f64()
                .filter(|ms| *ms >= 0.0 && ms.fract() == 0.0)
                .map(|ms| ms as u64)
                .ok_or_else(|| err("\"deadline_ms\" must be a non-negative integer".into()))?,
        ),
    };
    Ok(Request::Query(Box::new(QueryEnvelope {
        id,
        graph: graph.to_owned(),
        overrides,
        deadline_ms,
    })))
}

/// A typed response envelope. [`Response::to_line`] produces the exact
/// wire bytes; the engine builds these and the connection edge serializes
/// them once.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// `ping` acknowledgement.
    Pong {
        /// Echoed correlation id.
        id: Option<Value>,
    },
    /// Counter snapshot: `stats` is the pre-compacted JSON object text.
    Stats {
        /// Echoed correlation id.
        id: Option<Value>,
        /// The compact `{"served":…,…}` object, verbatim.
        stats: String,
    },
    /// `shutdown` acknowledgement: the server is draining.
    Draining {
        /// Echoed correlation id.
        id: Option<Value>,
    },
    /// A successful query answer wrapping the pre-serialized result
    /// document (kept as a string so cached responses stay byte-identical
    /// to fresh ones by construction).
    Result {
        /// Echoed correlation id.
        id: Option<Value>,
        /// True when the document came from the result cache.
        cached: bool,
        /// The compact explain document, verbatim.
        result: String,
    },
    /// A mutation batch was applied: the new epoch plus what it did.
    Mutated {
        /// Echoed correlation id.
        id: Option<Value>,
        /// The epoch the batch produced.
        epoch: u64,
        /// Graphs appended.
        inserted: u64,
        /// Graphs removed.
        removed: u64,
        /// Graphs replaced in place.
        updated: u64,
        /// True when this ack answers a deduplicated `mutation_id` retry
        /// with the original receipt (nothing was applied again). Only
        /// emitted on the wire when true, keeping first-application acks
        /// byte-identical to the pre-durability format.
        replayed: bool,
    },
    /// Admission rejection: the queue is full (or the server drains);
    /// retry after the given delay.
    Backpressure {
        /// Echoed correlation id.
        id: Option<Value>,
        /// Suggested client retry delay.
        retry_after_ms: u64,
    },
    /// The request's deadline passed (in queue or mid-evaluation).
    Expired {
        /// Echoed correlation id.
        id: Option<Value>,
    },
    /// Any other failure.
    Error {
        /// Echoed correlation id.
        id: Option<Value>,
        /// Human-readable message.
        message: String,
    },
}

/// Builds a response envelope: `{"id":…,` (when present) followed by the
/// body members and a trailing newline (the protocol is line-delimited).
fn envelope(id: &Option<Value>, body: &str) -> String {
    let mut out = String::with_capacity(body.len() + 24);
    out.push('{');
    if let Some(id) = id {
        out.push_str("\"id\":");
        out.push_str(&id.to_compact());
        out.push(',');
    }
    out.push_str(body);
    out.push_str("}\n");
    out
}

impl Response {
    /// Serializes the response onto one wire line (newline included).
    pub fn to_line(&self) -> String {
        match self {
            Response::Pong { id } => envelope(id, "\"ok\":true"),
            Response::Stats { id, stats } => {
                envelope(id, &format!("\"ok\":true,\"stats\":{stats}"))
            }
            Response::Draining { id } => envelope(id, "\"ok\":true,\"draining\":true"),
            Response::Result { id, cached, result } => envelope(
                id,
                &format!("\"ok\":true,\"cached\":{cached},\"result\":{result}"),
            ),
            Response::Mutated {
                id,
                epoch,
                inserted,
                removed,
                updated,
                replayed,
            } => {
                let mut body = format!(
                    "\"ok\":true,\"epoch\":{epoch},\"inserted\":{inserted},\"removed\":{removed},\"updated\":{updated}"
                );
                if *replayed {
                    body.push_str(",\"replayed\":true");
                }
                envelope(id, &body)
            }
            Response::Backpressure { id, retry_after_ms } => envelope(
                id,
                &format!(
                    "\"ok\":false,\"error\":\"queue full\",\"retry_after_ms\":{retry_after_ms}"
                ),
            ),
            Response::Expired { id } => {
                envelope(id, "\"ok\":false,\"error\":\"deadline exceeded\"")
            }
            Response::Error { id, message } => envelope(
                id,
                &format!("\"ok\":false,\"error\":\"{}\"", escape(message)),
            ),
        }
    }

    /// Parses one response line, classifying by the envelope fields (the
    /// inverse of [`Response::to_line`]: `to_line(from_line(x)) == x` for
    /// every line a server emits).
    pub fn from_line(line: &str) -> Result<Response, WireError> {
        let doc =
            Value::parse(line).map_err(|e| WireError::new(&None, format!("bad response: {e}")))?;
        let id = doc.get("id").cloned();
        let Some(ok) = doc.get("ok").and_then(Value::as_bool) else {
            return Err(WireError::new(&id, "response has no boolean \"ok\" field"));
        };
        if ok {
            if doc.get("draining").and_then(Value::as_bool) == Some(true) {
                return Ok(Response::Draining { id });
            }
            if let Some(stats) = doc.get("stats") {
                return Ok(Response::Stats {
                    id,
                    stats: stats.to_compact(),
                });
            }
            // Mutation acknowledgements are classified by their "epoch"
            // field, ahead of the bare-`{"ok":true}` Pong fallback.
            if doc.get("epoch").is_some() {
                let counter = |field: &str| {
                    doc.get(field)
                        .and_then(Value::as_f64)
                        .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                        .map(|n| n as u64)
                        .ok_or_else(|| {
                            WireError::new(
                                &id,
                                format!("mutation response needs an integer {field:?} field"),
                            )
                        })
                };
                let replayed = match doc.get("replayed") {
                    None => false,
                    Some(v) => v
                        .as_bool()
                        .ok_or_else(|| WireError::new(&id, "\"replayed\" must be a boolean"))?,
                };
                return Ok(Response::Mutated {
                    id: id.clone(),
                    epoch: counter("epoch")?,
                    inserted: counter("inserted")?,
                    removed: counter("removed")?,
                    updated: counter("updated")?,
                    replayed,
                });
            }
            if let Some(cached) = doc.get("cached").and_then(Value::as_bool) {
                let Some(result) = doc.get("result") else {
                    return Err(WireError::new(&id, "ok response has no \"result\" field"));
                };
                return Ok(Response::Result {
                    id,
                    cached,
                    result: result.to_compact(),
                });
            }
            return Ok(Response::Pong { id });
        }
        let Some(message) = doc.get("error").and_then(Value::as_str) else {
            return Err(WireError::new(&id, "error response has no \"error\" field"));
        };
        if message == "queue full" {
            if let Some(ms) = doc
                .get("retry_after_ms")
                .and_then(Value::as_f64)
                .filter(|ms| *ms >= 0.0 && ms.fract() == 0.0)
            {
                return Ok(Response::Backpressure {
                    id,
                    retry_after_ms: ms as u64,
                });
            }
        }
        if message == "deadline exceeded" {
            return Ok(Response::Expired { id });
        }
        Ok(Response::Error {
            id,
            message: message.to_owned(),
        })
    }

    /// The correlation id the response carries, if any.
    pub fn id(&self) -> &Option<Value> {
        match self {
            Response::Pong { id }
            | Response::Stats { id, .. }
            | Response::Draining { id }
            | Response::Result { id, .. }
            | Response::Mutated { id, .. }
            | Response::Backpressure { id, .. }
            | Response::Expired { id }
            | Response::Error { id, .. } => id,
        }
    }

    /// True for the `"ok":true` envelopes.
    pub fn is_ok(&self) -> bool {
        matches!(
            self,
            Response::Pong { .. }
                | Response::Stats { .. }
                | Response::Draining { .. }
                | Response::Result { .. }
                | Response::Mutated { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(s: &str) -> Option<Value> {
        Some(Value::String(s.to_owned()))
    }

    #[test]
    fn request_lines_round_trip() {
        let requests = vec![
            Request::Ping { id: None },
            Request::Ping { id: sid("p") },
            Request::Stats {
                id: Some(Value::Number(7.0)),
            },
            Request::Shutdown { id: None },
            Request::Query(Box::new(QueryEnvelope {
                id: sid("q1"),
                graph: "t g\nv 0 C\nv 1 O\ne 0 1 =\n".to_owned(),
                overrides: QueryOverrides::default(),
                deadline_ms: None,
            })),
            Request::Query(Box::new(QueryEnvelope {
                id: None,
                graph: "t g\nv 0 C\n".to_owned(),
                overrides: QueryOverrides {
                    prefilter: Some(true),
                    approx: Some(false),
                    algo: Some(Algorithm::Sfs),
                    plan: Some(Plan::Sharded),
                },
                deadline_ms: Some(2500),
            })),
            Request::Insert {
                id: sid("i"),
                graphs: "t a\nv 0 C\nt b\nv 0 N\n".to_owned(),
                mutation_id: None,
            },
            Request::Insert {
                id: None,
                graphs: "t a\nv 0 C\n".to_owned(),
                mutation_id: Some("c1:42".to_owned()),
            },
            Request::Remove {
                id: None,
                names: vec!["a\"quoted".to_owned(), "b".to_owned()],
                mutation_id: Some("c1:43".to_owned()),
            },
            Request::Update {
                id: Some(Value::Number(4.0)),
                name: "a".to_owned(),
                graph: "t a\nv 0 O\n".to_owned(),
                mutation_id: None,
            },
        ];
        for r in requests {
            let line = r.to_line();
            assert!(line.ends_with('\n'), "{line:?}");
            assert_eq!(line.trim_end().matches('\n').count(), 0, "{line:?}");
            let back = Request::from_line(line.trim_end()).expect("round trip parses");
            assert_eq!(back, r, "{line:?}");
            assert_eq!(back.to_line(), line, "second serialization is stable");
        }
    }

    #[test]
    fn request_parse_rejects_malformed_lines() {
        for (line, needle) in [
            ("", "bad request"),
            ("not json", "bad request"),
            ("{}", "missing \"op\""),
            ("{\"op\":\"frobnicate\"}", "unknown op"),
            ("{\"op\":\"ping\",\"id\":[1]}", "string or number"),
            ("{\"op\":\"query\"}", "\"graph\" field"),
            (
                "{\"op\":\"query\",\"graph\":\"t g\",\"options\":3}",
                "object",
            ),
            (
                "{\"op\":\"query\",\"graph\":\"t g\",\"options\":{\"bogus\":1}}",
                "unknown option",
            ),
            (
                "{\"op\":\"query\",\"graph\":\"t g\",\"options\":{\"algo\":\"quantum\"}}",
                "naive|bnl|sfs",
            ),
            (
                "{\"op\":\"query\",\"graph\":\"t g\",\"options\":{\"plan\":\"quantum\"}}",
                "auto|naive|prefilter|indexed|sharded",
            ),
            (
                "{\"op\":\"query\",\"graph\":\"t g\",\"options\":{\"prefilter\":1}}",
                "boolean",
            ),
            (
                "{\"op\":\"query\",\"graph\":\"t g\",\"deadline_ms\":-5}",
                "non-negative integer",
            ),
            (
                "{\"op\":\"query\",\"graph\":\"t g\",\"deadline_ms\":1.5}",
                "non-negative integer",
            ),
            ("{\"op\":\"insert\"}", "\"graphs\" field"),
            ("{\"op\":\"remove\"}", "\"names\" array"),
            ("{\"op\":\"remove\",\"names\":[]}", "\"names\" array"),
            ("{\"op\":\"remove\",\"names\":[1]}", "\"names\" array"),
            ("{\"op\":\"update\",\"graph\":\"t g\"}", "\"name\" field"),
            ("{\"op\":\"update\",\"name\":\"g\"}", "\"graph\" field"),
            (
                "{\"op\":\"insert\",\"graphs\":\"t g\",\"mutation_id\":7}",
                "\"mutation_id\" must be a string",
            ),
        ] {
            let err = Request::from_line(line).expect_err(line);
            assert!(
                err.message.contains(needle),
                "{line:?}: {} should mention {needle:?}",
                err.message
            );
        }
    }

    #[test]
    fn error_ids_echo_when_readable() {
        let err = Request::from_line("{\"op\":\"nope\",\"id\":\"x\"}").expect_err("unknown op");
        assert_eq!(err.id, sid("x"));
        let err = Request::from_line("{\"id\":\"y\"}").expect_err("missing op");
        assert_eq!(err.id, sid("y"));
        let err = Request::from_line("garbage").expect_err("unparseable");
        assert_eq!(err.id, None);
    }

    #[test]
    fn response_lines_are_byte_exact() {
        // The formats the server has emitted since PR 3 — frozen here.
        let cases = vec![
            (Response::Pong { id: None }, "{\"ok\":true}\n"),
            (
                Response::Pong { id: sid("a") },
                "{\"id\":\"a\",\"ok\":true}\n",
            ),
            (
                Response::Draining { id: None },
                "{\"ok\":true,\"draining\":true}\n",
            ),
            (
                Response::Result {
                    id: Some(Value::Number(3.0)),
                    cached: true,
                    result: "{\"skyline\":[0]}".to_owned(),
                },
                "{\"id\":3,\"ok\":true,\"cached\":true,\"result\":{\"skyline\":[0]}}\n",
            ),
            (
                Response::Backpressure {
                    id: None,
                    retry_after_ms: 50,
                },
                "{\"ok\":false,\"error\":\"queue full\",\"retry_after_ms\":50}\n",
            ),
            (
                Response::Expired { id: sid("late") },
                "{\"id\":\"late\",\"ok\":false,\"error\":\"deadline exceeded\"}\n",
            ),
            (
                Response::Error {
                    id: None,
                    message: "multi\nline".to_owned(),
                },
                "{\"ok\":false,\"error\":\"multi\\nline\"}\n",
            ),
            (
                Response::Stats {
                    id: None,
                    stats: "{\"served\":2}".to_owned(),
                },
                "{\"ok\":true,\"stats\":{\"served\":2}}\n",
            ),
            (
                Response::Mutated {
                    id: sid("m"),
                    epoch: 3,
                    inserted: 2,
                    removed: 1,
                    updated: 0,
                    replayed: false,
                },
                "{\"id\":\"m\",\"ok\":true,\"epoch\":3,\"inserted\":2,\"removed\":1,\"updated\":0}\n",
            ),
            (
                Response::Mutated {
                    id: sid("m"),
                    epoch: 3,
                    inserted: 2,
                    removed: 1,
                    updated: 0,
                    replayed: true,
                },
                "{\"id\":\"m\",\"ok\":true,\"epoch\":3,\"inserted\":2,\"removed\":1,\"updated\":0,\"replayed\":true}\n",
            ),
        ];
        for (resp, bytes) in cases {
            assert_eq!(resp.to_line(), bytes);
            let back = Response::from_line(bytes.trim_end()).expect("parses");
            assert_eq!(back, resp, "{bytes:?}");
            assert_eq!(back.to_line(), bytes, "round trip is byte-stable");
        }
    }

    #[test]
    fn response_classification_covers_the_error_shapes() {
        // A "queue full" error without the retry hint stays a plain error.
        let r = Response::from_line("{\"ok\":false,\"error\":\"queue full\"}").unwrap();
        assert!(matches!(r, Response::Error { .. }));
        // Unknown ok-shape defaults to Pong only when nothing else fits.
        let r = Response::from_line("{\"ok\":true}").unwrap();
        assert!(matches!(r, Response::Pong { .. }));
        // An "epoch" field routes to Mutated ahead of the Pong fallback,
        // and a half-formed mutation ack is an error, not a Pong.
        let r = Response::from_line(
            "{\"ok\":true,\"epoch\":1,\"inserted\":0,\"removed\":0,\"updated\":1}",
        )
        .unwrap();
        assert!(matches!(r, Response::Mutated { updated: 1, .. }));
        let err = Response::from_line("{\"ok\":true,\"epoch\":1}").unwrap_err();
        assert!(err.message.contains("inserted"), "{}", err.message);
        assert!(Response::from_line("{}").is_err(), "no ok field");
        assert!(Response::from_line("nope").is_err(), "not JSON");
        assert!(!Response::Expired { id: None }.is_ok());
        assert!(Response::Pong { id: None }.is_ok());
    }

    #[test]
    fn overrides_emptiness_gates_the_options_object() {
        assert!(QueryOverrides::default().is_empty());
        let q = Request::Query(Box::new(QueryEnvelope {
            id: None,
            graph: "t g\n".to_owned(),
            overrides: QueryOverrides::default(),
            deadline_ms: None,
        }));
        assert!(!q.to_line().contains("options"));
        let q = Request::Query(Box::new(QueryEnvelope {
            id: None,
            graph: "t g\n".to_owned(),
            overrides: QueryOverrides {
                plan: Some(Plan::Prefilter),
                ..QueryOverrides::default()
            },
            deadline_ms: None,
        }));
        assert_eq!(
            q.to_line(),
            "{\"op\":\"query\",\"graph\":\"t g\\n\",\"options\":{\"plan\":\"prefilter\"}}\n"
        );
    }
}
