//! A literal, executable transcription of Definition 7.
//!
//! "The maximum common subgraph of `g1` and `g2` is the largest connected
//! subgraph of `g1` that is subgraph-isomorphic to `g2`."
//!
//! This module enumerates edge subsets of `g1` in decreasing size and tests
//! each with `gss-iso`. Complexity is `O(2^|g1| · iso)`; it exists purely as
//! the ground truth that [`crate::exact`] and [`crate::greedy`] are verified
//! against (and as living documentation of the semantics).

use gss_graph::algo::largest_connected_edge_component;
use gss_graph::stats::mcs_upper_bound;
use gss_graph::{EdgeId, Graph};
use gss_iso::is_subgraph_isomorphic;

/// `|mcs(g1, g2)|` in edges, straight from Definition 7.
pub fn mcs_edges_by_definition(g1: &Graph, g2: &Graph) -> usize {
    let m = g1.size();
    let cap = (mcs_upper_bound(g1, g2) as usize).min(g2.size()).min(m);
    for k in (1..=cap).rev() {
        if any_connected_subset_embeds(g1, g2, k) {
            return k;
        }
    }
    0
}

fn any_connected_subset_embeds(g1: &Graph, g2: &Graph, k: usize) -> bool {
    let edges: Vec<EdgeId> = g1.edges().collect();
    let mut chosen: Vec<EdgeId> = Vec::with_capacity(k);
    subsets(&edges, 0, k, &mut chosen, &mut |subset| {
        if largest_connected_edge_component(g1, subset) != subset.len() {
            return false; // not connected as an edge set
        }
        let sub = g1.edge_induced_subgraph(subset);
        is_subgraph_isomorphic(&sub, g2)
    })
}

/// Enumerates k-subsets of `edges[from..]`, invoking `found` on each; stops
/// early (returning `true`) when `found` returns `true`.
fn subsets(
    edges: &[EdgeId],
    from: usize,
    k: usize,
    chosen: &mut Vec<EdgeId>,
    found: &mut impl FnMut(&[EdgeId]) -> bool,
) -> bool {
    if k == 0 {
        return found(chosen);
    }
    if edges.len() - from < k {
        return false;
    }
    for i in from..=(edges.len() - k) {
        chosen.push(edges[i]);
        if subsets(edges, i + 1, k - 1, chosen, found) {
            chosen.pop();
            return true;
        }
        chosen.pop();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::mcs_edge_size;
    use gss_graph::{Graph, GraphBuilder, Label, Rng, VertexId, Vocabulary};

    #[test]
    fn oracle_matches_worked_examples() {
        let mut v = Vocabulary::new();
        let cycle = GraphBuilder::new("c", &mut v)
            .vertices(&["a", "b", "c", "d"], "C")
            .cycle(&["a", "b", "c", "d"], "-")
            .build()
            .unwrap();
        let path = GraphBuilder::new("p", &mut v)
            .vertices(&["w", "x", "y", "z"], "C")
            .path(&["w", "x", "y", "z"], "-")
            .build()
            .unwrap();
        assert_eq!(mcs_edges_by_definition(&cycle, &path), 3);
        assert_eq!(mcs_edges_by_definition(&path, &cycle), 3);
        assert_eq!(mcs_edges_by_definition(&cycle, &cycle), 4);
    }

    fn random_graph(rng: &mut Rng, n: usize, m: usize, vlabels: u32, elabels: u32) -> Graph {
        let mut g = Graph::new("r");
        for _ in 0..n {
            g.add_vertex(Label(rng.gen_index(vlabels as usize) as u32));
        }
        let mut attempts = 0;
        let mut added = 0;
        while added < m && attempts < 10 * m + 20 {
            attempts += 1;
            let u = VertexId::new(rng.gen_index(n));
            let v = VertexId::new(rng.gen_index(n));
            if u == v || g.has_edge(u, v) {
                continue;
            }
            g.add_edge(u, v, Label(100 + rng.gen_index(elabels as usize) as u32))
                .unwrap();
            added += 1;
        }
        g
    }

    #[test]
    fn exact_solver_matches_oracle_on_random_graphs() {
        let mut rng = Rng::seed_from_u64(0x5eed);
        for case in 0..120 {
            let (n1, m1) = (2 + rng.gen_index(4), 1 + rng.gen_index(6));
            let (n2, m2) = (2 + rng.gen_index(4), 1 + rng.gen_index(6));
            let g1 = random_graph(&mut rng, n1, m1, 2, 2);
            let g2 = random_graph(&mut rng, n2, m2, 2, 2);
            let fast = mcs_edge_size(&g1, &g2);
            let slow = mcs_edges_by_definition(&g1, &g2);
            assert_eq!(
                fast,
                slow,
                "case {case}: |g1|={} |g2|={}",
                g1.size(),
                g2.size()
            );
        }
    }

    #[test]
    fn exact_solver_matches_oracle_with_diverse_labels() {
        let mut rng = Rng::seed_from_u64(0xabcd);
        for case in 0..80 {
            let (n1, m1) = (3 + rng.gen_index(3), 2 + rng.gen_index(5));
            let (n2, m2) = (3 + rng.gen_index(3), 2 + rng.gen_index(5));
            let g1 = random_graph(&mut rng, n1, m1, 3, 1);
            let g2 = random_graph(&mut rng, n2, m2, 3, 1);
            assert_eq!(
                mcs_edge_size(&g1, &g2),
                mcs_edges_by_definition(&g1, &g2),
                "case {case}"
            );
        }
    }
}
