//! Induced maximum common subgraph via the modular product graph.
//!
//! The classical Levi/Bunke construction: vertices of the *modular product*
//! of `g1` and `g2` are label-compatible vertex pairs `(u, v)`; two product
//! vertices are adjacent when their underlying pairs are consistent — both
//! graphs have an equally-labeled edge between them, or neither has any
//! edge. Cliques of the product correspond exactly to common **induced**
//! subgraphs (not necessarily connected), so a maximum clique yields the
//! maximum common induced subgraph by vertex count.
//!
//! This complements [`crate::exact`] (which solves the paper's *connected,
//! non-induced, edge-count* variant): the two solve different problems, and
//! tests cross-check each against its own brute-force oracle plus the
//! inequalities that relate them.
//!
//! The max-clique search is Bron–Kerbosch with pivoting ([`max_clique`]) —
//! also exposed directly since it is a reusable substrate.

use gss_graph::{Graph, VertexId};

/// Maximum clique of an undirected graph given as an adjacency matrix,
/// via Bron–Kerbosch with pivoting. Returns vertex indices (ascending).
///
/// Exponential worst case (the problem is NP-hard); intended for the small
/// product graphs of this domain.
///
/// # Panics
/// Panics when `adj` is not square or not symmetric (debug builds).
pub fn max_clique(adj: &[Vec<bool>]) -> Vec<usize> {
    let n = adj.len();
    for (i, row) in adj.iter().enumerate() {
        assert_eq!(row.len(), n, "adjacency matrix must be square");
        debug_assert!(!row[i], "no self-loops expected");
    }
    let mut best: Vec<usize> = Vec::new();
    let mut r: Vec<usize> = Vec::new();
    let p: Vec<usize> = (0..n).collect();
    let x: Vec<usize> = Vec::new();
    bron_kerbosch(adj, &mut r, p, x, &mut best);
    best.sort_unstable();
    best
}

fn bron_kerbosch(
    adj: &[Vec<bool>],
    r: &mut Vec<usize>,
    p: Vec<usize>,
    x: Vec<usize>,
    best: &mut Vec<usize>,
) {
    if p.is_empty() && x.is_empty() {
        if r.len() > best.len() {
            *best = r.clone();
        }
        return;
    }
    // Bound: even taking all of P cannot beat the incumbent.
    if r.len() + p.len() <= best.len() {
        return;
    }
    // Pivot: vertex of P ∪ X with most neighbors in P.
    let pivot = p
        .iter()
        .chain(x.iter())
        .copied()
        .max_by_key(|&u| p.iter().filter(|&&w| adj[u][w]).count())
        .expect("P ∪ X non-empty here");
    let candidates: Vec<usize> = p.iter().copied().filter(|&u| !adj[pivot][u]).collect();

    let mut p = p;
    let mut x = x;
    for u in candidates {
        let p_next: Vec<usize> = p.iter().copied().filter(|&w| adj[u][w]).collect();
        let x_next: Vec<usize> = x.iter().copied().filter(|&w| adj[u][w]).collect();
        r.push(u);
        bron_kerbosch(adj, r, p_next, x_next, best);
        r.pop();
        p.retain(|&w| w != u);
        x.push(u);
    }
}

/// A maximum common **induced** subgraph witness: matched vertex pairs.
#[derive(Clone, Debug, Default)]
pub struct InducedMcs {
    /// Matched `(g1 vertex, g2 vertex)` pairs, ascending by the g1 side.
    pub vertex_pairs: Vec<(VertexId, VertexId)>,
}

impl InducedMcs {
    /// Number of matched vertices.
    pub fn vertices(&self) -> usize {
        self.vertex_pairs.len()
    }

    /// Number of (shared) edges induced between the matched g1 vertices —
    /// by construction these all exist identically in g2.
    pub fn edges(&self, g1: &Graph) -> usize {
        let mut count = 0;
        for (i, &(u1, _)) in self.vertex_pairs.iter().enumerate() {
            for &(u2, _) in &self.vertex_pairs[i + 1..] {
                if g1.has_edge(u1, u2) {
                    count += 1;
                }
            }
        }
        count
    }
}

/// Computes a maximum common induced subgraph (vertex-count objective,
/// connectivity **not** required) via the modular product + max clique.
pub fn maximum_common_induced_subgraph(g1: &Graph, g2: &Graph) -> InducedMcs {
    // Product vertices: label-compatible pairs.
    let mut pairs: Vec<(VertexId, VertexId)> = Vec::new();
    for u in g1.vertices() {
        for v in g2.vertices() {
            if g1.vertex_label(u) == g2.vertex_label(v) {
                pairs.push((u, v));
            }
        }
    }
    let n = pairs.len();
    let mut adj = vec![vec![false; n]; n];
    for i in 0..n {
        for j in i + 1..n {
            let (u1, v1) = pairs[i];
            let (u2, v2) = pairs[j];
            if u1 == u2 || v1 == v2 {
                continue; // injectivity
            }
            let e1 = g1.edge_between(u1, u2);
            let e2 = g2.edge_between(v1, v2);
            let consistent = match (e1, e2) {
                (Some(a), Some(b)) => g1.edge_label(a) == g2.edge_label(b),
                (None, None) => true,
                _ => false,
            };
            if consistent {
                adj[i][j] = true;
                adj[j][i] = true;
            }
        }
    }
    let clique = max_clique(&adj);
    let mut vertex_pairs: Vec<(VertexId, VertexId)> =
        clique.into_iter().map(|i| pairs[i]).collect();
    vertex_pairs.sort();
    InducedMcs { vertex_pairs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_graph::{GraphBuilder, Label, Rng, Vocabulary};

    #[test]
    fn max_clique_basics() {
        // Triangle plus pendant: max clique = the triangle.
        let adj = vec![
            vec![false, true, true, false],
            vec![true, false, true, false],
            vec![true, true, false, true],
            vec![false, false, true, false],
        ];
        assert_eq!(max_clique(&adj), vec![0, 1, 2]);
        // Empty graph: any single vertex.
        let empty = vec![vec![false; 3]; 3];
        assert_eq!(max_clique(&empty).len(), 1);
        // No vertices.
        assert!(max_clique(&[]).is_empty());
    }

    #[test]
    fn identical_graphs_match_completely() {
        let mut v = Vocabulary::new();
        let g = GraphBuilder::new("g", &mut v)
            .vertex("a", "A")
            .vertex("b", "B")
            .vertex("c", "C")
            .cycle(&["a", "b", "c"], "-")
            .build()
            .unwrap();
        let m = maximum_common_induced_subgraph(&g, &g);
        assert_eq!(m.vertices(), 3);
        assert_eq!(m.edges(&g), 3);
    }

    #[test]
    fn induced_semantics_differ_from_non_induced() {
        // Pattern: path a-b-c. Host: triangle a-b-c. Non-induced mcs keeps
        // all 3 vertices (2 shared edges); *induced* cannot map all three
        // (the host's closing edge is absent in the path), so it matches
        // only 2 vertices.
        let mut v = Vocabulary::new();
        let path = GraphBuilder::new("p", &mut v)
            .vertex("a", "A")
            .vertex("b", "B")
            .vertex("c", "C")
            .path(&["a", "b", "c"], "-")
            .build()
            .unwrap();
        let tri = GraphBuilder::new("t", &mut v)
            .vertex("a", "A")
            .vertex("b", "B")
            .vertex("c", "C")
            .cycle(&["a", "b", "c"], "-")
            .build()
            .unwrap();
        let induced = maximum_common_induced_subgraph(&path, &tri);
        assert_eq!(induced.vertices(), 2);
        // Non-induced connected solver sees 2 shared edges.
        assert_eq!(crate::exact::mcs_edge_size(&path, &tri), 2);
    }

    /// Brute-force oracle: try all subsets of g1's vertices (by decreasing
    /// size) and all injections into g2, checking induced consistency.
    fn induced_oracle(g1: &Graph, g2: &Graph) -> usize {
        let n1 = g1.order();
        let mut best = 0usize;
        for mask in 0u32..(1 << n1) {
            let subset: Vec<VertexId> = (0..n1)
                .filter(|&i| mask & (1 << i) != 0)
                .map(VertexId::new)
                .collect();
            if subset.len() <= best {
                continue;
            }
            if injects(g1, g2, &subset, &mut Vec::new()) {
                best = subset.len();
            }
        }
        best
    }

    fn injects(g1: &Graph, g2: &Graph, subset: &[VertexId], map: &mut Vec<VertexId>) -> bool {
        if map.len() == subset.len() {
            return true;
        }
        let u = subset[map.len()];
        'cand: for v in g2.vertices() {
            if map.contains(&v) || g1.vertex_label(u) != g2.vertex_label(v) {
                continue;
            }
            for (k, &w) in map.iter().enumerate() {
                let e1 = g1.edge_between(u, subset[k]);
                let e2 = g2.edge_between(v, w);
                let ok = match (e1, e2) {
                    (Some(a), Some(b)) => g1.edge_label(a) == g2.edge_label(b),
                    (None, None) => true,
                    _ => false,
                };
                if !ok {
                    continue 'cand;
                }
            }
            map.push(v);
            if injects(g1, g2, subset, map) {
                map.pop();
                return true;
            }
            map.pop();
        }
        false
    }

    fn random_graph(rng: &mut Rng, n: usize, m: usize) -> Graph {
        let mut g = Graph::new("r");
        for _ in 0..n {
            g.add_vertex(Label(rng.gen_index(2) as u32));
        }
        let mut added = 0;
        let mut guard = 0;
        while added < m && guard < 60 {
            guard += 1;
            let u = VertexId::new(rng.gen_index(n));
            let v = VertexId::new(rng.gen_index(n));
            if u != v && !g.has_edge(u, v) {
                g.add_edge(u, v, Label(5)).unwrap();
                added += 1;
            }
        }
        g
    }

    #[test]
    fn clique_solver_matches_brute_force_oracle() {
        let mut rng = Rng::seed_from_u64(0xC11);
        for case in 0..60 {
            let (n1, m1) = (1 + rng.gen_index(4), rng.gen_index(5));
            let (n2, m2) = (1 + rng.gen_index(4), rng.gen_index(5));
            let g1 = random_graph(&mut rng, n1, m1);
            let g2 = random_graph(&mut rng, n2, m2);
            let fast = maximum_common_induced_subgraph(&g1, &g2).vertices();
            let slow = induced_oracle(&g1, &g2);
            assert_eq!(fast, slow, "case {case}");
        }
    }

    #[test]
    fn induced_mcs_bounds_and_witness_validity() {
        let mut rng = Rng::seed_from_u64(0xC12);
        for case in 0..30 {
            let (n1, m1) = (1 + rng.gen_index(4), rng.gen_index(5));
            let (n2, m2) = (1 + rng.gen_index(4), rng.gen_index(5));
            let g1 = random_graph(&mut rng, n1, m1);
            let g2 = random_graph(&mut rng, n2, m2);
            let m = maximum_common_induced_subgraph(&g1, &g2);
            assert!(m.vertices() <= g1.order().min(g2.order()), "case {case}");
            // The witness must be an injective, label- and edge-consistent map.
            for (i, &(u1, v1)) in m.vertex_pairs.iter().enumerate() {
                assert_eq!(g1.vertex_label(u1), g2.vertex_label(v1), "case {case}");
                for &(u2, v2) in &m.vertex_pairs[i + 1..] {
                    assert_ne!(u1, u2, "case {case}: injective on g1");
                    assert_ne!(v1, v2, "case {case}: injective on g2");
                    let e1 = g1.edge_between(u1, u2);
                    let e2 = g2.edge_between(v1, v2);
                    let consistent = match (e1, e2) {
                        (Some(a), Some(b)) => g1.edge_label(a) == g2.edge_label(b),
                        (None, None) => true,
                        _ => false,
                    };
                    assert!(consistent, "case {case}: induced consistency violated");
                }
            }
        }
    }
}
