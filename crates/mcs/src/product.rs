//! Induced maximum common subgraph via the modular product graph.
//!
//! The classical Levi/Bunke construction: vertices of the *modular product*
//! of `g1` and `g2` are label-compatible vertex pairs `(u, v)`; two product
//! vertices are adjacent when their underlying pairs are consistent — both
//! graphs have an equally-labeled edge between them, or neither has any
//! edge. Cliques of the product correspond exactly to common **induced**
//! subgraphs (not necessarily connected), so a maximum clique yields the
//! maximum common induced subgraph by vertex count.
//!
//! This complements [`crate::exact`] (which solves the paper's *connected,
//! non-induced, edge-count* variant): the two solve different problems, and
//! tests cross-check each against its own brute-force oracle plus the
//! inequalities that relate them.
//!
//! ## The clique kernel
//!
//! [`max_clique`] is a Tomita-style branch and bound (the MCQ/MCS family)
//! over a word-packed adjacency matrix ([`gss_graph::BitMatrix`]):
//!
//! * candidate sets are [`gss_graph::Bitset`]s held in per-depth reusable
//!   buffers; a child's candidate set is `P ∩ N(v)` — one word-parallel
//!   intersection — instead of a freshly allocated filtered `Vec` per
//!   search node;
//! * at every node the candidates are **greedily coloured**: vertices are
//!   partitioned into independent color classes, and a vertex of color `c`
//!   can extend the current clique `R` by at most `c` vertices (one per
//!   class). Branching processes candidates in descending color order and
//!   stops as soon as `|R| + c ≤ |best|` — a bound strictly stronger than
//!   the `|R| + |P|` cardinality bound the previous Bron–Kerbosch search
//!   used.
//!
//! The bound only ever *prunes* subtrees whose cliques provably cannot beat
//! the incumbent, so the result stays exact: every maximal clique larger
//! than the incumbent is still reached. The colouring changes the visit
//! order, so the specific maximum clique returned (among equals) and the
//! expanded-node count may differ from the reference search —
//! [`crate::reference::max_clique_reference`] is retained, and property
//! tests pin `new size == reference size` plus `new expanded ≤ reference
//! expanded` on a fixed workload.

use gss_graph::{BitMatrix, Bitset, Graph, VertexId};

/// Maximum clique of an undirected graph given as an adjacency matrix.
/// Returns vertex indices (ascending). See the module docs for the
/// algorithm.
///
/// Exponential worst case (the problem is NP-hard); intended for the small
/// product graphs of this domain.
///
/// # Panics
/// Panics when `adj` is not square or not symmetric (debug builds).
pub fn max_clique(adj: &[Vec<bool>]) -> Vec<usize> {
    max_clique_expanded(adj).0
}

/// [`max_clique`] plus the number of search-tree nodes expanded — the
/// counter the solver benchmarks and the CI regression gate consume.
pub fn max_clique_expanded(adj: &[Vec<bool>]) -> (Vec<usize>, u64) {
    let n = adj.len();
    let mut m = BitMatrix::new(n, n);
    for (i, row) in adj.iter().enumerate() {
        assert_eq!(row.len(), n, "adjacency matrix must be square");
        debug_assert!(!row[i], "no self-loops expected");
        for (j, &bit) in row.iter().enumerate() {
            debug_assert_eq!(bit, adj[j][i], "adjacency matrix must be symmetric");
            if bit {
                m.set(i, j);
            }
        }
    }
    max_clique_bitset(&m)
}

/// Maximum clique over a word-packed adjacency matrix (must be square,
/// symmetric, zero diagonal). Returns `(clique vertices ascending,
/// expanded-node count)`.
pub fn max_clique_bitset(adj: &BitMatrix) -> (Vec<usize>, u64) {
    let n = adj.rows();
    debug_assert_eq!(n, adj.cols(), "adjacency matrix must be square");
    let mut solver = CliqueSolver {
        adj,
        r: Vec::with_capacity(n),
        best: Vec::new(),
        cand: vec![Bitset::full(n)],
        orders: Vec::new(),
        colors: Vec::new(),
        scratch_uncolored: Bitset::new(n),
        scratch_class: Bitset::new(n),
        expanded: 0,
    };
    if n > 0 {
        solver.expand(0);
    }
    solver.best.sort_unstable();
    (solver.best, solver.expanded)
}

struct CliqueSolver<'a> {
    adj: &'a BitMatrix,
    /// The growing clique (vertex stack).
    r: Vec<usize>,
    best: Vec<usize>,
    /// Per-depth candidate sets: `cand[d]` is `P` at recursion depth `d`.
    cand: Vec<Bitset>,
    /// Per-depth colour-sort output buffers (vertices ascending by colour).
    orders: Vec<Vec<usize>>,
    colors: Vec<Vec<usize>>,
    scratch_uncolored: Bitset,
    scratch_class: Bitset,
    expanded: u64,
}

impl CliqueSolver<'_> {
    fn ensure_depth(&mut self, depth: usize) {
        let n = self.adj.rows();
        while self.cand.len() <= depth {
            self.cand.push(Bitset::new(n));
        }
        while self.orders.len() <= depth {
            self.orders.push(Vec::new());
            self.colors.push(Vec::new());
        }
    }

    // gss-lint: kernel — runs per node of the max-clique recursion; candidate sets are reused row intersections
    fn expand(&mut self, depth: usize) {
        self.expanded += 1;
        self.ensure_depth(depth + 1);
        let mut order = std::mem::take(&mut self.orders[depth]);
        let mut colors = std::mem::take(&mut self.colors[depth]);
        color_sort(
            self.adj,
            &self.cand[depth],
            &mut self.scratch_uncolored,
            &mut self.scratch_class,
            &mut order,
            &mut colors,
        );
        // Descending colour order: once |R| + colour ≤ |best| fails here it
        // fails for every remaining (smaller-or-equal-colour) candidate.
        for i in (0..order.len()).rev() {
            if self.r.len() + colors[i] <= self.best.len() {
                break;
            }
            let v = order[i];
            self.r.push(v);
            let (head, tail) = self.cand.split_at_mut(depth + 1);
            let child = &mut tail[0];
            child.copy_from(&head[depth]);
            child.intersect_with_row(self.adj, v);
            if child.is_empty() {
                if self.r.len() > self.best.len() {
                    // Record into the reusable best buffer only on
                    // improvement — no per-node incumbent clone.
                    self.best.clear();
                    self.best.extend_from_slice(&self.r);
                }
            } else {
                self.expand(depth + 1);
            }
            self.r.pop();
            self.cand[depth].remove(v);
        }
        self.orders[depth] = order;
        self.colors[depth] = colors;
    }
}

/// Greedy colouring of `p`: repeatedly peel a maximal independent set (one
/// colour class) until every candidate is coloured. Outputs vertices in
/// ascending colour order with their colour numbers (1-based).
// gss-lint: kernel — runs per node of the max-clique recursion; candidate sets are reused row intersections
fn color_sort(
    adj: &BitMatrix,
    p: &Bitset,
    uncolored: &mut Bitset,
    class: &mut Bitset,
    order: &mut Vec<usize>,
    colors: &mut Vec<usize>,
) {
    order.clear();
    colors.clear();
    uncolored.copy_from(p);
    let mut color = 0usize;
    while let Some(seed) = uncolored.first() {
        color += 1;
        class.copy_from(uncolored);
        let mut v = seed;
        loop {
            class.remove(v);
            uncolored.remove(v);
            class.difference_with_row(adj, v);
            order.push(v);
            colors.push(color);
            match class.first() {
                Some(next) => v = next,
                None => break,
            }
        }
    }
}

/// A maximum common **induced** subgraph witness: matched vertex pairs.
#[derive(Clone, Debug, Default)]
pub struct InducedMcs {
    /// Matched `(g1 vertex, g2 vertex)` pairs, ascending by the g1 side.
    pub vertex_pairs: Vec<(VertexId, VertexId)>,
}

impl InducedMcs {
    /// Number of matched vertices.
    pub fn vertices(&self) -> usize {
        self.vertex_pairs.len()
    }

    /// Number of (shared) edges induced between the matched g1 vertices —
    /// by construction these all exist identically in g2.
    pub fn edges(&self, g1: &Graph) -> usize {
        let mut count = 0;
        for (i, &(u1, _)) in self.vertex_pairs.iter().enumerate() {
            for &(u2, _) in &self.vertex_pairs[i + 1..] {
                if g1.has_edge(u1, u2) {
                    count += 1;
                }
            }
        }
        count
    }
}

/// Computes a maximum common induced subgraph (vertex-count objective,
/// connectivity **not** required) via the modular product + max clique.
pub fn maximum_common_induced_subgraph(g1: &Graph, g2: &Graph) -> InducedMcs {
    // Product vertices: label-compatible pairs.
    let mut pairs: Vec<(VertexId, VertexId)> = Vec::new();
    for u in g1.vertices() {
        for v in g2.vertices() {
            if g1.vertex_label(u) == g2.vertex_label(v) {
                pairs.push((u, v));
            }
        }
    }
    let n = pairs.len();
    // The product adjacency goes straight into the word-packed matrix the
    // clique kernel consumes — no intermediate `Vec<Vec<bool>>`.
    let mut adj = BitMatrix::new(n, n);
    for i in 0..n {
        for j in i + 1..n {
            let (u1, v1) = pairs[i];
            let (u2, v2) = pairs[j];
            if u1 == u2 || v1 == v2 {
                continue; // injectivity
            }
            let e1 = g1.edge_between(u1, u2);
            let e2 = g2.edge_between(v1, v2);
            let consistent = match (e1, e2) {
                (Some(a), Some(b)) => g1.edge_label(a) == g2.edge_label(b),
                (None, None) => true,
                _ => false,
            };
            if consistent {
                adj.set_sym(i, j);
            }
        }
    }
    let (clique, _) = max_clique_bitset(&adj);
    let mut vertex_pairs: Vec<(VertexId, VertexId)> =
        clique.into_iter().map(|i| pairs[i]).collect();
    vertex_pairs.sort();
    InducedMcs { vertex_pairs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::max_clique_reference;
    use gss_graph::{GraphBuilder, Label, Rng, Vocabulary};

    #[test]
    fn max_clique_basics() {
        // Triangle plus pendant: max clique = the triangle.
        let adj = vec![
            vec![false, true, true, false],
            vec![true, false, true, false],
            vec![true, true, false, true],
            vec![false, false, true, false],
        ];
        assert_eq!(max_clique(&adj), vec![0, 1, 2]);
        // Empty graph: any single vertex.
        let empty = vec![vec![false; 3]; 3];
        assert_eq!(max_clique(&empty).len(), 1);
        // No vertices.
        assert!(max_clique(&[]).is_empty());
    }

    #[allow(clippy::needless_range_loop)] // symmetric matrix fill reads clearest indexed
    fn random_adj(rng: &mut Rng, n: usize, density_pct: usize) -> Vec<Vec<bool>> {
        let mut adj = vec![vec![false; n]; n];
        for i in 0..n {
            for j in i + 1..n {
                if rng.gen_index(100) < density_pct {
                    adj[i][j] = true;
                    adj[j][i] = true;
                }
            }
        }
        adj
    }

    /// The clique itself must be a clique, and its size must match the
    /// retained reference search on random graphs across densities.
    #[test]
    fn matches_reference_search_on_random_graphs() {
        let mut rng = Rng::seed_from_u64(0x70317a);
        for case in 0..80 {
            let n = rng.gen_index(12);
            let density = 10 + rng.gen_index(80);
            let adj = random_adj(&mut rng, n, density);
            let (fast, fast_nodes) = max_clique_expanded(&adj);
            let (slow, slow_nodes) = max_clique_reference(&adj);
            assert_eq!(fast.len(), slow.len(), "case {case}: clique size");
            for (k, &a) in fast.iter().enumerate() {
                for &b in &fast[k + 1..] {
                    assert!(adj[a][b], "case {case}: witness must be a clique");
                }
            }
            // The colouring bound must not *grow* the search on these
            // small instances (it typically shrinks it dramatically).
            assert!(
                fast_nodes <= slow_nodes.max(n as u64 + 1),
                "case {case}: {fast_nodes} expanded vs reference {slow_nodes}"
            );
        }
    }

    #[test]
    fn identical_graphs_match_completely() {
        let mut v = Vocabulary::new();
        let g = GraphBuilder::new("g", &mut v)
            .vertex("a", "A")
            .vertex("b", "B")
            .vertex("c", "C")
            .cycle(&["a", "b", "c"], "-")
            .build()
            .unwrap();
        let m = maximum_common_induced_subgraph(&g, &g);
        assert_eq!(m.vertices(), 3);
        assert_eq!(m.edges(&g), 3);
    }

    #[test]
    fn induced_semantics_differ_from_non_induced() {
        // Pattern: path a-b-c. Host: triangle a-b-c. Non-induced mcs keeps
        // all 3 vertices (2 shared edges); *induced* cannot map all three
        // (the host's closing edge is absent in the path), so it matches
        // only 2 vertices.
        let mut v = Vocabulary::new();
        let path = GraphBuilder::new("p", &mut v)
            .vertex("a", "A")
            .vertex("b", "B")
            .vertex("c", "C")
            .path(&["a", "b", "c"], "-")
            .build()
            .unwrap();
        let tri = GraphBuilder::new("t", &mut v)
            .vertex("a", "A")
            .vertex("b", "B")
            .vertex("c", "C")
            .cycle(&["a", "b", "c"], "-")
            .build()
            .unwrap();
        let induced = maximum_common_induced_subgraph(&path, &tri);
        assert_eq!(induced.vertices(), 2);
        // Non-induced connected solver sees 2 shared edges.
        assert_eq!(crate::exact::mcs_edge_size(&path, &tri), 2);
    }

    /// Brute-force oracle: try all subsets of g1's vertices (by decreasing
    /// size) and all injections into g2, checking induced consistency.
    fn induced_oracle(g1: &Graph, g2: &Graph) -> usize {
        let n1 = g1.order();
        let mut best = 0usize;
        for mask in 0u32..(1 << n1) {
            let subset: Vec<VertexId> = (0..n1)
                .filter(|&i| mask & (1 << i) != 0)
                .map(VertexId::new)
                .collect();
            if subset.len() <= best {
                continue;
            }
            if injects(g1, g2, &subset, &mut Vec::new()) {
                best = subset.len();
            }
        }
        best
    }

    fn injects(g1: &Graph, g2: &Graph, subset: &[VertexId], map: &mut Vec<VertexId>) -> bool {
        if map.len() == subset.len() {
            return true;
        }
        let u = subset[map.len()];
        'cand: for v in g2.vertices() {
            if map.contains(&v) || g1.vertex_label(u) != g2.vertex_label(v) {
                continue;
            }
            for (k, &w) in map.iter().enumerate() {
                let e1 = g1.edge_between(u, subset[k]);
                let e2 = g2.edge_between(v, w);
                let ok = match (e1, e2) {
                    (Some(a), Some(b)) => g1.edge_label(a) == g2.edge_label(b),
                    (None, None) => true,
                    _ => false,
                };
                if !ok {
                    continue 'cand;
                }
            }
            map.push(v);
            if injects(g1, g2, subset, map) {
                map.pop();
                return true;
            }
            map.pop();
        }
        false
    }

    fn random_graph(rng: &mut Rng, n: usize, m: usize) -> Graph {
        let mut g = Graph::new("r");
        for _ in 0..n {
            g.add_vertex(Label(rng.gen_index(2) as u32));
        }
        let mut added = 0;
        let mut guard = 0;
        while added < m && guard < 60 {
            guard += 1;
            let u = VertexId::new(rng.gen_index(n));
            let v = VertexId::new(rng.gen_index(n));
            if u != v && !g.has_edge(u, v) {
                g.add_edge(u, v, Label(5)).unwrap();
                added += 1;
            }
        }
        g
    }

    #[test]
    fn clique_solver_matches_brute_force_oracle() {
        let mut rng = Rng::seed_from_u64(0xC11);
        for case in 0..60 {
            let (n1, m1) = (1 + rng.gen_index(4), rng.gen_index(5));
            let (n2, m2) = (1 + rng.gen_index(4), rng.gen_index(5));
            let g1 = random_graph(&mut rng, n1, m1);
            let g2 = random_graph(&mut rng, n2, m2);
            let fast = maximum_common_induced_subgraph(&g1, &g2).vertices();
            let slow = induced_oracle(&g1, &g2);
            assert_eq!(fast, slow, "case {case}");
        }
    }

    #[test]
    fn induced_mcs_bounds_and_witness_validity() {
        let mut rng = Rng::seed_from_u64(0xC12);
        for case in 0..30 {
            let (n1, m1) = (1 + rng.gen_index(4), rng.gen_index(5));
            let (n2, m2) = (1 + rng.gen_index(4), rng.gen_index(5));
            let g1 = random_graph(&mut rng, n1, m1);
            let g2 = random_graph(&mut rng, n2, m2);
            let m = maximum_common_induced_subgraph(&g1, &g2);
            assert!(m.vertices() <= g1.order().min(g2.order()), "case {case}");
            // The witness must be an injective, label- and edge-consistent map.
            for (i, &(u1, v1)) in m.vertex_pairs.iter().enumerate() {
                assert_eq!(g1.vertex_label(u1), g2.vertex_label(v1), "case {case}");
                for &(u2, v2) in &m.vertex_pairs[i + 1..] {
                    assert_ne!(u1, u2, "case {case}: injective on g1");
                    assert_ne!(v1, v2, "case {case}: injective on g2");
                    let e1 = g1.edge_between(u1, u2);
                    let e2 = g2.edge_between(v1, v2);
                    let consistent = match (e1, e2) {
                        (Some(a), Some(b)) => g1.edge_label(a) == g2.edge_label(b),
                        (None, None) => true,
                        _ => false,
                    };
                    assert!(consistent, "case {case}: induced consistency violated");
                }
            }
        }
    }
}
