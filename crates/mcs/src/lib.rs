//! # gss-mcs — maximum common subgraph of labeled graphs
//!
//! Implements the paper's Definition 7: `mcs(g1, g2)` is the largest
//! **connected** subgraph of `g1` that is (non-induced, label-preserving)
//! subgraph-isomorphic to `g2`, with size `|mcs|` measured in **edges** —
//! the quantity driving the `DistMcs` (Bunke–Shearer) and `DistGu`
//! (Wallis et al.) distance measures of Section IV.
//!
//! Three solvers are provided:
//!
//! * [`exact::maximum_common_subgraph`] — a branch-and-bound search over
//!   partial vertex mappings grown along shared edges, with an edge-class
//!   upper bound for pruning. Exact; exponential in the worst case; intended
//!   for the small graphs (≲ 20 edges) this domain works with.
//! * [`greedy::greedy_mcs`] — a multi-start greedy approximation that grows
//!   the mapping by the best immediate edge gain; a fast *lower* bound used
//!   for large workloads and as a warm start for the exact search.
//! * [`oracle::mcs_edges_by_definition`] — a direct executable transcription
//!   of Definition 7 (enumerate connected edge subsets of `g1` by decreasing
//!   size, test embeddability with `gss-iso`). Hopelessly slow, but the
//!   ground truth the other solvers are checked against.
//! * [`product::maximum_common_induced_subgraph`] — the classical modular
//!   product + maximum clique construction for the *induced* MCS variant
//!   (a Tomita-style bitset branch and bound with a greedy-colouring
//!   bound); a different problem than Definition 7, included for
//!   completeness and cross-checked against its own oracle.
//!
//! The exact kernels are allocation-free word-parallel rewrites; the
//! original implementations are retained in [`mod@reference`] as the
//! parity oracle for property tests and the baseline for the solver
//! benchmarks.
//!
//! ## Note on disconnected inputs
//!
//! Because the common subgraph must be connected, `|mcs(g, g)|` equals the
//! edge count of `g`'s **largest component**, not `|g|`, when `g` is
//! disconnected; the paper implicitly assumes connected database graphs.
//!
//! ```
//! use gss_graph::{GraphBuilder, Vocabulary};
//! use gss_mcs::mcs_edge_size;
//!
//! let mut vocab = Vocabulary::new();
//! let square = GraphBuilder::new("sq", &mut vocab)
//!     .vertices(&["a", "b", "c", "d"], "C")
//!     .cycle(&["a", "b", "c", "d"], "-")
//!     .build()
//!     .unwrap();
//! let path = GraphBuilder::new("p", &mut vocab)
//!     .vertices(&["x", "y", "z"], "C")
//!     .path(&["x", "y", "z"], "-")
//!     .build()
//!     .unwrap();
//! assert_eq!(mcs_edge_size(&square, &path), 2);
//! ```

#![warn(missing_docs)]

pub mod exact;
pub mod greedy;
pub mod oracle;
pub mod product;
pub mod reference;

pub use exact::{
    maximum_common_subgraph, maximum_common_subgraph_expanded, mcs_edge_size, Mcs, Objective,
};
pub use product::{
    max_clique, max_clique_bitset, max_clique_expanded, maximum_common_induced_subgraph, InducedMcs,
};
