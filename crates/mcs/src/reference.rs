//! Retained reference implementations of the pre-bitset solver kernels.
//!
//! The word-parallel kernels in [`crate::product`] and [`crate::exact`]
//! were rewritten for speed; these are the straightforward implementations
//! they replaced, kept verbatim (plus expanded-node counters) so that
//!
//! * property tests can assert the optimized kernels return identical
//!   sizes/costs — and, where the search order is preserved, identical
//!   witnesses — on random inputs, and
//! * the solver benchmarks (`benches/solvers.rs`, the S9 scaling scenario)
//!   can measure the speedup against the exact code they replaced.
//!
//! Nothing in the query pipeline calls these; they are test and benchmark
//! substrate only.

use gss_graph::stats::mcs_upper_bound;
use gss_graph::{Graph, VertexId};

use crate::exact::{Mcs, Objective};

/// Maximum clique via the original Bron–Kerbosch-with-pivoting search over
/// a `Vec<Vec<bool>>` adjacency matrix, as shipped before the Tomita
/// rewrite. Returns `(clique vertices ascending, nodes expanded)`.
///
/// # Panics
/// Panics when `adj` is not square (and, in debug builds, when the diagonal
/// is set).
pub fn max_clique_reference(adj: &[Vec<bool>]) -> (Vec<usize>, u64) {
    let n = adj.len();
    for (i, row) in adj.iter().enumerate() {
        assert_eq!(row.len(), n, "adjacency matrix must be square");
        debug_assert!(!row[i], "no self-loops expected");
    }
    let mut best: Vec<usize> = Vec::new();
    let mut r: Vec<usize> = Vec::new();
    let p: Vec<usize> = (0..n).collect();
    let x: Vec<usize> = Vec::new();
    let mut expanded = 0u64;
    bron_kerbosch(adj, &mut r, p, x, &mut best, &mut expanded);
    best.sort_unstable();
    (best, expanded)
}

fn bron_kerbosch(
    adj: &[Vec<bool>],
    r: &mut Vec<usize>,
    p: Vec<usize>,
    x: Vec<usize>,
    best: &mut Vec<usize>,
    expanded: &mut u64,
) {
    *expanded += 1;
    if p.is_empty() && x.is_empty() {
        if r.len() > best.len() {
            *best = r.clone();
        }
        return;
    }
    // Bound: even taking all of P cannot beat the incumbent.
    if r.len() + p.len() <= best.len() {
        return;
    }
    // Pivot: vertex of P ∪ X with most neighbors in P.
    let pivot = p
        .iter()
        .chain(x.iter())
        .copied()
        .max_by_key(|&u| p.iter().filter(|&&w| adj[u][w]).count())
        .expect("P ∪ X non-empty here");
    let candidates: Vec<usize> = p.iter().copied().filter(|&u| !adj[pivot][u]).collect();

    let mut p = p;
    let mut x = x;
    for u in candidates {
        let p_next: Vec<usize> = p.iter().copied().filter(|&w| adj[u][w]).collect();
        let x_next: Vec<usize> = x.iter().copied().filter(|&w| adj[u][w]).collect();
        r.push(u);
        bron_kerbosch(adj, r, p_next, x_next, best, expanded);
        r.pop();
        p.retain(|&w| w != u);
        x.push(u);
    }
}

const UNMAPPED: u32 = u32::MAX;

/// The original connected-MCS branch-and-bound solver (per-node `Vec`
/// allocation in `candidates`, full rescans in the potential bound), kept
/// as the byte-identical-witness reference for [`crate::exact`]. Returns
/// the witness plus the number of search nodes expanded.
pub fn maximum_common_subgraph_reference(
    g1: &Graph,
    g2: &Graph,
    objective: Objective,
) -> (Mcs, u64) {
    let global_bound = mcs_upper_bound(g1, g2) as usize;
    let mut solver = RefSolver {
        g1,
        g2,
        objective,
        map1: vec![UNMAPPED; g1.order()],
        map2: vec![UNMAPPED; g2.order()],
        banned: vec![false; g1.order()],
        score_edges: 0,
        best: Mcs::default(),
        best_key: (0, 0),
        global_bound,
        done: false,
        expanded: 0,
    };
    for root in 0..g1.order() {
        if solver.done {
            break;
        }
        let u = VertexId::new(root);
        for v in g2.vertices() {
            if g1.vertex_label(u) != g2.vertex_label(v) {
                continue;
            }
            solver.map1[u.index()] = v.0;
            solver.map2[v.index()] = u.0;
            solver.extend();
            solver.map1[u.index()] = UNMAPPED;
            solver.map2[v.index()] = UNMAPPED;
            if solver.done {
                break;
            }
        }
        solver.banned[root] = true;
    }
    (solver.best, solver.expanded)
}

struct RefSolver<'a> {
    g1: &'a Graph,
    g2: &'a Graph,
    objective: Objective,
    map1: Vec<u32>,
    map2: Vec<u32>,
    banned: Vec<bool>,
    score_edges: usize,
    best: Mcs,
    best_key: (usize, usize),
    global_bound: usize,
    done: bool,
    expanded: u64,
}

impl RefSolver<'_> {
    fn key(&self, edges: usize, vertices: usize) -> (usize, usize) {
        match self.objective {
            Objective::Edges => (edges, vertices),
            Objective::Vertices => (vertices, edges),
        }
    }

    fn mapped_vertices(&self) -> usize {
        self.map1.iter().filter(|&&m| m != UNMAPPED).count()
    }

    fn record_if_better(&mut self) {
        let vertices = self.mapped_vertices();
        let key = self.key(self.score_edges, vertices);
        if key > self.best_key {
            self.best_key = key;
            self.best = self.snapshot();
            if self.objective == Objective::Edges && self.score_edges >= self.global_bound {
                self.done = true; // provably optimal
            }
        }
    }

    fn snapshot(&self) -> Mcs {
        let mut vertex_pairs = Vec::new();
        for (i, &m) in self.map1.iter().enumerate() {
            if m != UNMAPPED {
                vertex_pairs.push((VertexId::new(i), VertexId(m)));
            }
        }
        let mut edge_pairs = Vec::new();
        for e1 in self.g1.edges() {
            let edge = self.g1.edge(e1);
            let (mu, mv) = (self.map1[edge.u.index()], self.map1[edge.v.index()]);
            if mu == UNMAPPED || mv == UNMAPPED {
                continue;
            }
            if let Some(e2) = self.g2.edge_between(VertexId(mu), VertexId(mv)) {
                if self.g2.edge_label(e2) == edge.label {
                    edge_pairs.push((e1, e2));
                }
            }
        }
        Mcs {
            vertex_pairs,
            edge_pairs,
        }
    }

    fn potential1(&self) -> usize {
        self.g1
            .edges()
            .filter(|&e| {
                let edge = self.g1.edge(e);
                let (u, v) = (edge.u.index(), edge.v.index());
                if self.banned[u] || self.banned[v] {
                    return false;
                }
                self.map1[u] == UNMAPPED || self.map1[v] == UNMAPPED
            })
            .count()
    }

    fn potential2(&self) -> usize {
        self.g2
            .edges()
            .filter(|&e| {
                let edge = self.g2.edge(e);
                self.map2[edge.u.index()] == UNMAPPED || self.map2[edge.v.index()] == UNMAPPED
            })
            .count()
    }

    fn gain(&self, u: VertexId, v: VertexId) -> usize {
        let mut gain = 0;
        for (w, ew) in self.g1.neighbors(u) {
            let mw = self.map1[w.index()];
            if mw == UNMAPPED {
                continue;
            }
            if let Some(e2) = self.g2.edge_between(v, VertexId(mw)) {
                if self.g2.edge_label(e2) == self.g1.edge_label(ew) {
                    gain += 1;
                }
            }
        }
        gain
    }

    fn candidates(&self) -> Vec<(VertexId, VertexId)> {
        let mut out: Vec<(VertexId, VertexId)> = Vec::new();
        for (i, &m) in self.map1.iter().enumerate() {
            if m == UNMAPPED {
                continue;
            }
            let u_mapped = VertexId::new(i);
            let v_mapped = VertexId(m);
            for (u, eu) in self.g1.neighbors(u_mapped) {
                if self.map1[u.index()] != UNMAPPED || self.banned[u.index()] {
                    continue;
                }
                for (v, ev) in self.g2.neighbors(v_mapped) {
                    if self.map2[v.index()] != UNMAPPED {
                        continue;
                    }
                    if self.g1.vertex_label(u) != self.g2.vertex_label(v) {
                        continue;
                    }
                    if self.g1.edge_label(eu) != self.g2.edge_label(ev) {
                        continue;
                    }
                    if !out.contains(&(u, v)) {
                        out.push((u, v));
                    }
                }
            }
        }
        out.sort_by_key(|&(u, v)| std::cmp::Reverse(self.gain(u, v)));
        out
    }

    fn extend(&mut self) {
        if self.done {
            return;
        }
        self.expanded += 1;
        self.record_if_better();
        if self.done {
            return;
        }
        let potential = self.potential1().min(self.potential2());
        let bound_key = match self.objective {
            Objective::Edges => (self.score_edges + potential, usize::MAX),
            Objective::Vertices => (self.mapped_vertices() + potential, usize::MAX),
        };
        if bound_key <= self.best_key {
            return;
        }
        for (u, v) in self.candidates() {
            let gain = self.gain(u, v);
            debug_assert!(gain >= 1, "candidates must attach via a shared edge");
            self.map1[u.index()] = v.0;
            self.map2[v.index()] = u.0;
            self.score_edges += gain;
            self.extend();
            self.score_edges -= gain;
            self.map1[u.index()] = UNMAPPED;
            self.map2[v.index()] = UNMAPPED;
            if self.done {
                return;
            }
        }
    }
}
