//! Exact branch-and-bound solver for the connected maximum common subgraph.
//!
//! ## Formulation
//!
//! A *common subgraph* of `g1` and `g2` is given by an injective, vertex- and
//! edge-label-preserving partial mapping `f` between their vertex sets; its
//! edges are the pairs of vertices mapped on both sides that are adjacent
//! **in both graphs** via equally-labeled edges ("shared edges"). The paper's
//! `mcs` requires the shared-edge graph to be connected.
//!
//! The search grows `f` one vertex pair at a time, always attaching the new
//! pair through at least one shared edge, so every intermediate state is a
//! connected common subgraph and every connected common subgraph is reachable
//! (grow it in BFS order from any of its edges). Root duplicates are avoided
//! by requiring the root of a component to be its minimal `g1` vertex;
//! smaller `g1` vertices are banned inside that branch.
//!
//! ## Pruning
//!
//! * a global edge-class bound (`gss_graph::stats::mcs_upper_bound`) caps the
//!   achievable size; the search stops as soon as it is reached;
//! * per-node: `score + min(potential(g1), potential(g2)) ≤ best` prunes,
//!   where `potential(g)` counts edges that still have an unmapped,
//!   non-banned endpoint (a mapped-mapped pair that is not already shared
//!   can never become shared later).
//!
//! ## Why this is fast (and still exact)
//!
//! The kernel does no per-search-node heap allocation and no per-node
//! rescans:
//!
//! * the `potential` counters are maintained **incrementally** — deciding or
//!   undoing a pair touches only the decided vertex's incident edges,
//!   instead of re-scanning every edge of both graphs at every node (debug
//!   builds assert the counters against a from-scratch rescan);
//! * candidate pairs are collected into **per-depth reusable buffers**, with
//!   a flat `n1 × n2` [`gss_graph::Bitset`] as the duplicate mask (the
//!   `Vec::contains` scan it replaces was quadratic in the candidate count);
//!   the immediate gain of each pair is computed once and cached for the
//!   sort and the application;
//! * the incumbent is recorded into reusable best-buffers only on
//!   improvement — no per-node cloning.
//!
//! None of this changes the search *order*: candidates are generated in the
//! same sequence, deduplicated keep-first, and stably sorted by the same
//! keys as the retained reference implementation
//! ([`crate::reference::maximum_common_subgraph_reference`]), so costs,
//! witnesses **and expanded-node counts** are identical — property tests
//! pin all three.

use gss_graph::stats::mcs_upper_bound;
use gss_graph::{Bitset, EdgeId, EdgeLookup, Graph, VertexId};

/// What the solver maximizes.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum Objective {
    /// Maximize shared-edge count (ties broken by vertex count). This is the
    /// paper's `|mcs|` (Definition 9/10 use edge counts).
    #[default]
    Edges,
    /// Maximize mapped-vertex count (ties broken by edge count) — the
    /// literal reading of Definition 7's "maximum number of selected
    /// vertices".
    Vertices,
}

/// A maximum common (connected) subgraph witness.
#[derive(Clone, Debug, Default)]
pub struct Mcs {
    /// Mapped vertex pairs `(g1 vertex, g2 vertex)`.
    pub vertex_pairs: Vec<(VertexId, VertexId)>,
    /// Shared edge pairs `(g1 edge, g2 edge)`.
    pub edge_pairs: Vec<(EdgeId, EdgeId)>,
}

impl Mcs {
    /// Number of shared edges — the paper's `|mcs|`.
    pub fn edges(&self) -> usize {
        self.edge_pairs.len()
    }

    /// Number of mapped vertices.
    pub fn vertices(&self) -> usize {
        self.vertex_pairs.len()
    }

    /// The common subgraph materialized as a graph (structure taken from
    /// `g1`, per Definition 7).
    pub fn as_graph(&self, g1: &Graph) -> Graph {
        let edges: Vec<EdgeId> = self.edge_pairs.iter().map(|(e1, _)| *e1).collect();
        g1.edge_induced_subgraph(&edges)
    }
}

const UNMAPPED: u32 = u32::MAX;

/// A candidate extension pair with its cached immediate gain.
#[derive(Copy, Clone, Debug)]
struct Candidate {
    u: u32,
    v: u32,
    gain: u32,
}

struct Solver<'a> {
    g1: &'a Graph,
    g2: &'a Graph,
    /// Dense O(1) edge table for g2 — the side `gain` probes per candidate.
    lut2: EdgeLookup,
    objective: Objective,
    map1: Vec<u32>,
    map2: Vec<u32>,
    banned: Vec<bool>,
    score_edges: usize,
    /// Number of currently mapped pairs (incremental `mapped_vertices`).
    mapped: usize,
    /// Incremental `potential(g1)`: edges with no banned endpoint and ≥ 1
    /// unmapped endpoint.
    pot1: usize,
    /// Incremental `potential(g2)`: edges with ≥ 1 unmapped endpoint.
    pot2: usize,
    /// Flat `n1 × n2` duplicate mask for candidate generation.
    seen: Bitset,
    /// Per-depth candidate buffers, reused across the whole search.
    cand_bufs: Vec<Vec<Candidate>>,
    best_key: (usize, usize),
    /// Reusable incumbent buffers, written only on improvement.
    best_vertex_pairs: Vec<(VertexId, VertexId)>,
    best_edge_pairs: Vec<(EdgeId, EdgeId)>,
    global_bound: usize,
    done: bool,
    expanded: u64,
}

impl Solver<'_> {
    fn key(&self, edges: usize, vertices: usize) -> (usize, usize) {
        match self.objective {
            Objective::Edges => (edges, vertices),
            Objective::Vertices => (vertices, edges),
        }
    }

    /// Maps `u -> v`, updating the incremental potential counters: a g1
    /// edge leaves `pot1` when its second endpoint becomes mapped (it can
    /// no longer *become* shared), and symmetrically for g2.
    // gss-lint: kernel — runs per node of the MCS clique search over the product graph; buffers are preallocated per depth
    fn apply(&mut self, u: VertexId, v: VertexId) {
        debug_assert!(!self.banned[u.index()], "candidates are never banned");
        for (w, _) in self.g1.neighbors(u) {
            if !self.banned[w.index()] && self.map1[w.index()] != UNMAPPED {
                self.pot1 -= 1;
            }
        }
        for (x, _) in self.g2.neighbors(v) {
            if self.map2[x.index()] != UNMAPPED {
                self.pot2 -= 1;
            }
        }
        self.map1[u.index()] = v.0;
        self.map2[v.index()] = u.0;
        self.mapped += 1;
    }

    /// Reverses [`Solver::apply`] (must be called in LIFO order).
    // gss-lint: kernel — runs per node of the MCS clique search over the product graph; buffers are preallocated per depth
    fn undo(&mut self, u: VertexId, v: VertexId) {
        self.map1[u.index()] = UNMAPPED;
        self.map2[v.index()] = UNMAPPED;
        self.mapped -= 1;
        for (w, _) in self.g1.neighbors(u) {
            if !self.banned[w.index()] && self.map1[w.index()] != UNMAPPED {
                self.pot1 += 1;
            }
        }
        for (x, _) in self.g2.neighbors(v) {
            if self.map2[x.index()] != UNMAPPED {
                self.pot2 += 1;
            }
        }
    }

    /// Bans a root at the top level (everything unmapped): every edge
    /// incident to it leaves `pot1` unless the other endpoint was already
    /// banned (those edges were removed when that endpoint was banned).
    fn ban_root(&mut self, root: VertexId) {
        debug_assert_eq!(self.mapped, 0, "roots are banned at the top level");
        self.banned[root.index()] = true;
        for (w, _) in self.g1.neighbors(root) {
            if !self.banned[w.index()] {
                self.pot1 -= 1;
            }
        }
    }

    /// From-scratch `potential(g1)` — debug-assert oracle for `pot1`.
    #[cfg(debug_assertions)]
    fn potential1_rescan(&self) -> usize {
        self.g1
            .edges()
            .filter(|&e| {
                let edge = self.g1.edge(e);
                let (u, v) = (edge.u.index(), edge.v.index());
                if self.banned[u] || self.banned[v] {
                    return false;
                }
                self.map1[u] == UNMAPPED || self.map1[v] == UNMAPPED
            })
            .count()
    }

    /// From-scratch `potential(g2)` — debug-assert oracle for `pot2`.
    #[cfg(debug_assertions)]
    fn potential2_rescan(&self) -> usize {
        self.g2
            .edges()
            .filter(|&e| {
                let edge = self.g2.edge(e);
                self.map2[edge.u.index()] == UNMAPPED || self.map2[edge.v.index()] == UNMAPPED
            })
            .count()
    }

    // gss-lint: kernel — runs per node of the MCS clique search over the product graph; buffers are preallocated per depth
    fn record_if_better(&mut self) {
        let key = self.key(self.score_edges, self.mapped);
        if key > self.best_key {
            self.best_key = key;
            self.snapshot_into_best();
            if self.objective == Objective::Edges && self.score_edges >= self.global_bound {
                self.done = true; // provably optimal
            }
        }
    }

    /// Writes the current mapping into the reusable incumbent buffers.
    // gss-lint: kernel — runs per node of the MCS clique search over the product graph; buffers are preallocated per depth
    fn snapshot_into_best(&mut self) {
        self.best_vertex_pairs.clear();
        for (i, &m) in self.map1.iter().enumerate() {
            if m != UNMAPPED {
                self.best_vertex_pairs.push((VertexId::new(i), VertexId(m)));
            }
        }
        self.best_edge_pairs.clear();
        for e1 in self.g1.edges() {
            let edge = self.g1.edge(e1);
            let (mu, mv) = (self.map1[edge.u.index()], self.map1[edge.v.index()]);
            if mu == UNMAPPED || mv == UNMAPPED {
                continue;
            }
            if let Some(e2) = self.lut2.get(VertexId(mu), VertexId(mv)) {
                if self.g2.edge_label(e2) == edge.label {
                    self.best_edge_pairs.push((e1, e2));
                }
            }
        }
    }

    /// Shared edges gained by mapping `u -> v` right now.
    // gss-lint: kernel — runs per node of the MCS clique search over the product graph; buffers are preallocated per depth
    fn gain(&self, u: VertexId, v: VertexId) -> u32 {
        let mut gain = 0;
        for (w, ew) in self.g1.neighbors(u) {
            let mw = self.map1[w.index()];
            if mw == UNMAPPED {
                continue;
            }
            if let Some(e2) = self.lut2.get(v, VertexId(mw)) {
                if self.g2.edge_label(e2) == self.g1.edge_label(ew) {
                    gain += 1;
                }
            }
        }
        gain
    }

    /// Collects all pairs `(u, v)` extending the current component via ≥ 1
    /// shared edge into `buf` (cleared first): generated in deterministic
    /// scan order, deduplicated keep-first through the flat bitset mask,
    /// then stably sorted best-immediate-gain-first so large solutions
    /// appear early and the bound prunes harder.
    // gss-lint: kernel — runs per node of the MCS clique search over the product graph; buffers are preallocated per depth
    fn collect_candidates(&mut self, buf: &mut Vec<Candidate>) {
        buf.clear();
        let n2 = self.g2.order();
        for i in 0..self.map1.len() {
            let m = self.map1[i];
            if m == UNMAPPED {
                continue;
            }
            let u_mapped = VertexId::new(i);
            let v_mapped = VertexId(m);
            for (u, eu) in self.g1.neighbors(u_mapped) {
                if self.map1[u.index()] != UNMAPPED || self.banned[u.index()] {
                    continue;
                }
                for (v, ev) in self.g2.neighbors(v_mapped) {
                    if self.map2[v.index()] != UNMAPPED {
                        continue;
                    }
                    if self.g1.vertex_label(u) != self.g2.vertex_label(v) {
                        continue;
                    }
                    if self.g1.edge_label(eu) != self.g2.edge_label(ev) {
                        continue;
                    }
                    let bit = u.index() * n2 + v.index();
                    if !self.seen.contains(bit) {
                        self.seen.insert(bit);
                        buf.push(Candidate {
                            u: u.0,
                            v: v.0,
                            gain: 0,
                        });
                    }
                }
            }
        }
        // Clear only the bits this node set: O(|candidates|), not O(n1·n2).
        for c in buf.iter() {
            self.seen.remove(c.u as usize * n2 + c.v as usize);
        }
        for c in buf.iter_mut() {
            c.gain = self.gain(VertexId(c.u), VertexId(c.v));
        }
        buf.sort_by_key(|c| std::cmp::Reverse(c.gain));
    }

    // gss-lint: kernel — runs per node of the MCS clique search over the product graph; buffers are preallocated per depth
    fn extend(&mut self, depth: usize) {
        if self.done {
            return;
        }
        self.expanded += 1;
        self.record_if_better();
        if self.done {
            return;
        }
        #[cfg(debug_assertions)]
        {
            debug_assert_eq!(self.pot1, self.potential1_rescan(), "pot1 drifted");
            debug_assert_eq!(self.pot2, self.potential2_rescan(), "pot2 drifted");
        }
        // Bound check (edges part; for the Vertices objective the vertex
        // potential is bounded by edge potential + 1 per component, so the
        // edge bound with slack 1 stays admissible).
        let potential = self.pot1.min(self.pot2);
        let bound_key = match self.objective {
            Objective::Edges => (self.score_edges + potential, usize::MAX),
            Objective::Vertices => (self.mapped + potential, usize::MAX),
        };
        if bound_key <= self.best_key {
            return;
        }
        if self.cand_bufs.len() <= depth {
            // gss-lint: allow(no-alloc-in-kernel) — amortized: grows only on the first visit to a new max depth, then every deeper node reuses the buffer
            self.cand_bufs.resize_with(depth + 1, Vec::new);
        }
        let mut buf = std::mem::take(&mut self.cand_bufs[depth]);
        self.collect_candidates(&mut buf);
        for &c in &buf {
            let (u, v) = (VertexId(c.u), VertexId(c.v));
            debug_assert!(c.gain >= 1, "candidates must attach via a shared edge");
            self.apply(u, v);
            self.score_edges += c.gain as usize;
            self.extend(depth + 1);
            self.score_edges -= c.gain as usize;
            self.undo(u, v);
            if self.done {
                break;
            }
        }
        self.cand_bufs[depth] = buf;
    }

    fn into_best(self) -> Mcs {
        Mcs {
            vertex_pairs: self.best_vertex_pairs,
            edge_pairs: self.best_edge_pairs,
        }
    }
}

/// Computes a maximum common connected subgraph of `g1` and `g2` under the
/// given [`Objective`].
///
/// Exact but exponential in the worst case; intended for the small graphs of
/// this domain. For a fast approximation see [`crate::greedy::greedy_mcs`].
pub fn maximum_common_subgraph(g1: &Graph, g2: &Graph, objective: Objective) -> Mcs {
    maximum_common_subgraph_expanded(g1, g2, objective).0
}

/// [`maximum_common_subgraph`] plus the number of search nodes expanded —
/// identical to the retained reference implementation's count (the rewrite
/// preserves the search order; see the module docs).
pub fn maximum_common_subgraph_expanded(
    g1: &Graph,
    g2: &Graph,
    objective: Objective,
) -> (Mcs, u64) {
    let global_bound = mcs_upper_bound(g1, g2) as usize;
    let mut solver = Solver {
        g1,
        g2,
        lut2: EdgeLookup::new(g2),
        objective,
        map1: vec![UNMAPPED; g1.order()],
        map2: vec![UNMAPPED; g2.order()],
        banned: vec![false; g1.order()],
        score_edges: 0,
        mapped: 0,
        pot1: g1.size(),
        pot2: g2.size(),
        seen: Bitset::new(g1.order() * g2.order()),
        cand_bufs: Vec::new(),
        best_key: (0, 0),
        best_vertex_pairs: Vec::new(),
        best_edge_pairs: Vec::new(),
        global_bound,
        done: false,
        expanded: 0,
    };
    // Root each component at its minimal g1 vertex: branch over roots in
    // ascending order, banning smaller vertices inside the branch.
    for root in 0..g1.order() {
        if solver.done {
            break;
        }
        let u = VertexId::new(root);
        for v in g2.vertices() {
            if g1.vertex_label(u) != g2.vertex_label(v) {
                continue;
            }
            solver.apply(u, v);
            solver.extend(0);
            solver.undo(u, v);
            if solver.done {
                break;
            }
        }
        solver.ban_root(u);
    }
    let expanded = solver.expanded;
    (solver.into_best(), expanded)
}

/// The paper's `|mcs(g1, g2)|`: shared-edge count of a maximum common
/// connected subgraph (edge objective).
pub fn mcs_edge_size(g1: &Graph, g2: &Graph) -> usize {
    maximum_common_subgraph(g1, g2, Objective::Edges).edges()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gss_graph::{GraphBuilder, Vocabulary};

    #[test]
    fn identical_connected_graphs() {
        let mut v = Vocabulary::new();
        let g = GraphBuilder::new("g", &mut v)
            .vertex("a", "A")
            .vertex("b", "B")
            .vertex("c", "C")
            .cycle(&["a", "b", "c"], "-")
            .build()
            .unwrap();
        let m = maximum_common_subgraph(&g, &g, Objective::Edges);
        assert_eq!(m.edges(), 3);
        assert_eq!(m.vertices(), 3);
    }

    #[test]
    fn disjoint_labels_share_nothing() {
        let mut v = Vocabulary::new();
        let g1 = GraphBuilder::new("g1", &mut v)
            .vertices(&["a", "b"], "A")
            .edge("a", "b", "-")
            .build()
            .unwrap();
        let g2 = GraphBuilder::new("g2", &mut v)
            .vertices(&["x", "y"], "Z")
            .edge("x", "y", "-")
            .build()
            .unwrap();
        let m = maximum_common_subgraph(&g1, &g2, Objective::Edges);
        assert_eq!(m.edges(), 0);
        assert_eq!(m.vertices(), 0);
        // Vertex objective can still map one compatible vertex… here none.
        let m = maximum_common_subgraph(&g1, &g2, Objective::Vertices);
        assert_eq!(m.vertices(), 0);
    }

    #[test]
    fn single_vertex_overlap_vertex_objective() {
        let mut v = Vocabulary::new();
        let g1 = GraphBuilder::new("g1", &mut v)
            .vertex("a", "A")
            .vertex("b", "B")
            .edge("a", "b", "-")
            .build()
            .unwrap();
        let g2 = GraphBuilder::new("g2", &mut v)
            .vertex("a", "A")
            .vertex("z", "Z")
            .edge("a", "z", "-")
            .build()
            .unwrap();
        assert_eq!(mcs_edge_size(&g1, &g2), 0);
        let m = maximum_common_subgraph(&g1, &g2, Objective::Vertices);
        assert_eq!(m.vertices(), 1);
        assert_eq!(m.edges(), 0);
    }

    #[test]
    fn connectivity_constraint_caps_size() {
        // g1: two shareable edges joined through a vertex whose label differs
        // in g2, so the common subgraph cannot bridge them.
        let mut v = Vocabulary::new();
        let g1 = GraphBuilder::new("g1", &mut v)
            .vertex("a", "A")
            .vertex("b", "B")
            .vertex("c", "C")
            .vertex("d", "D")
            .vertex("e", "E")
            .path(&["a", "b", "c", "d", "e"], "-")
            .build()
            .unwrap();
        // Same path but middle vertex relabeled: shared edges are a-b and d-e…
        let g2 = GraphBuilder::new("g2", &mut v)
            .vertex("a", "A")
            .vertex("b", "B")
            .vertex("x", "X")
            .vertex("d", "D")
            .vertex("e", "E")
            .path(&["a", "b", "x", "d", "e"], "-")
            .build()
            .unwrap();
        // …each component has 1 edge; connected mcs = 1.
        assert_eq!(mcs_edge_size(&g1, &g2), 1);
    }

    #[test]
    fn edge_labels_block_sharing() {
        let mut v = Vocabulary::new();
        let g1 = GraphBuilder::new("g1", &mut v)
            .vertex("a", "A")
            .vertex("b", "B")
            .vertex("c", "C")
            .path(&["a", "b", "c"], "-")
            .build()
            .unwrap();
        let g2 = GraphBuilder::new("g2", &mut v)
            .vertex("a", "A")
            .vertex("b", "B")
            .vertex("c", "C")
            .edge("a", "b", "-")
            .edge("b", "c", "=")
            .build()
            .unwrap();
        assert_eq!(mcs_edge_size(&g1, &g2), 1);
    }

    #[test]
    fn subgraph_relation_gives_full_pattern() {
        let mut v = Vocabulary::new();
        let small = GraphBuilder::new("s", &mut v)
            .vertex("a", "A")
            .vertex("b", "B")
            .vertex("c", "C")
            .path(&["a", "b", "c"], "-")
            .build()
            .unwrap();
        let big = GraphBuilder::new("b", &mut v)
            .vertex("a", "A")
            .vertex("b", "B")
            .vertex("c", "C")
            .vertex("d", "D")
            .cycle(&["a", "b", "c", "d"], "-")
            .edge("a", "c", "-")
            .build()
            .unwrap();
        assert_eq!(mcs_edge_size(&small, &big), 2);
        assert_eq!(mcs_edge_size(&big, &small), 2); // symmetric size
    }

    #[test]
    fn repeated_labels_need_search() {
        // All-same labels: mcs of a 4-cycle and a 4-path is the 3-edge path.
        let mut v = Vocabulary::new();
        let cycle = GraphBuilder::new("c", &mut v)
            .vertices(&["a", "b", "c", "d"], "C")
            .cycle(&["a", "b", "c", "d"], "-")
            .build()
            .unwrap();
        let path = GraphBuilder::new("p", &mut v)
            .vertices(&["w", "x", "y", "z"], "C")
            .path(&["w", "x", "y", "z"], "-")
            .build()
            .unwrap();
        assert_eq!(mcs_edge_size(&cycle, &path), 3);
    }

    #[test]
    fn witness_is_consistent() {
        let mut v = Vocabulary::new();
        let g1 = GraphBuilder::new("g1", &mut v)
            .vertex("a", "A")
            .vertex("b", "B")
            .vertex("c", "C")
            .cycle(&["a", "b", "c"], "-")
            .build()
            .unwrap();
        let g2 = GraphBuilder::new("g2", &mut v)
            .vertex("x", "C")
            .vertex("y", "B")
            .vertex("z", "A")
            .path(&["x", "y", "z"], "-")
            .build()
            .unwrap();
        let m = maximum_common_subgraph(&g1, &g2, Objective::Edges);
        assert_eq!(m.edges(), 2);
        // Witness must be a valid mapping: labels preserved, edges shared.
        for &(u, v_) in &m.vertex_pairs {
            assert_eq!(g1.vertex_label(u), g2.vertex_label(v_));
        }
        for &(e1, e2) in &m.edge_pairs {
            assert_eq!(g1.edge_label(e1), g2.edge_label(e2));
        }
        // Materialized mcs graph is connected with the right size.
        let sub = m.as_graph(&g1);
        assert_eq!(sub.size(), 2);
        assert!(gss_graph::algo::is_connected(&sub));
    }

    #[test]
    fn empty_graphs() {
        let mut v = Vocabulary::new();
        let empty = GraphBuilder::new("e", &mut v).build().unwrap();
        let g = GraphBuilder::new("g", &mut v)
            .vertices(&["a", "b"], "A")
            .edge("a", "b", "-")
            .build()
            .unwrap();
        assert_eq!(mcs_edge_size(&empty, &g), 0);
        assert_eq!(mcs_edge_size(&g, &empty), 0);
        assert_eq!(mcs_edge_size(&empty, &empty), 0);
    }
}
