//! Greedy multi-start approximation of the connected MCS.
//!
//! From every compatible seed edge pair, grow the mapping by the extension
//! pair with the largest immediate shared-edge gain (first in candidate
//! order on ties). Polynomial: `O(seeds · |V|² · Δ²)` in the worst case.
//! The result is a valid common connected subgraph, hence a **lower bound**
//! on `|mcs|`; `tests` verify it never exceeds the exact value and hits it
//! on easy instances.

use gss_graph::{Graph, VertexId};

use crate::exact::Mcs;

const UNMAPPED: u32 = u32::MAX;

struct State<'a> {
    g1: &'a Graph,
    g2: &'a Graph,
    map1: Vec<u32>,
    map2: Vec<u32>,
    edges: usize,
}

impl<'a> State<'a> {
    fn new(g1: &'a Graph, g2: &'a Graph) -> Self {
        State {
            g1,
            g2,
            map1: vec![UNMAPPED; g1.order()],
            map2: vec![UNMAPPED; g2.order()],
            edges: 0,
        }
    }

    fn gain(&self, u: VertexId, v: VertexId) -> usize {
        let mut gain = 0;
        for (w, ew) in self.g1.neighbors(u) {
            let mw = self.map1[w.index()];
            if mw == UNMAPPED {
                continue;
            }
            if let Some(e2) = self.g2.edge_between(v, VertexId(mw)) {
                if self.g2.edge_label(e2) == self.g1.edge_label(ew) {
                    gain += 1;
                }
            }
        }
        gain
    }

    fn add(&mut self, u: VertexId, v: VertexId) {
        self.edges += self.gain(u, v);
        self.map1[u.index()] = v.0;
        self.map2[v.index()] = u.0;
    }

    fn best_extension(&self) -> Option<(VertexId, VertexId, usize)> {
        let mut best: Option<(VertexId, VertexId, usize)> = None;
        for (i, &m) in self.map1.iter().enumerate() {
            if m == UNMAPPED {
                continue;
            }
            let anchor1 = VertexId::new(i);
            let anchor2 = VertexId(m);
            for (u, eu) in self.g1.neighbors(anchor1) {
                if self.map1[u.index()] != UNMAPPED {
                    continue;
                }
                for (v, ev) in self.g2.neighbors(anchor2) {
                    if self.map2[v.index()] != UNMAPPED
                        || self.g1.vertex_label(u) != self.g2.vertex_label(v)
                        || self.g1.edge_label(eu) != self.g2.edge_label(ev)
                    {
                        continue;
                    }
                    let gain = self.gain(u, v);
                    if best.is_none_or(|(_, _, g)| gain > g) {
                        best = Some((u, v, gain));
                    }
                }
            }
        }
        best
    }

    fn snapshot(&self) -> Mcs {
        let mut vertex_pairs = Vec::new();
        for (i, &m) in self.map1.iter().enumerate() {
            if m != UNMAPPED {
                vertex_pairs.push((VertexId::new(i), VertexId(m)));
            }
        }
        let mut edge_pairs = Vec::new();
        for e1 in self.g1.edges() {
            let edge = self.g1.edge(e1);
            let (mu, mv) = (self.map1[edge.u.index()], self.map1[edge.v.index()]);
            if mu == UNMAPPED || mv == UNMAPPED {
                continue;
            }
            if let Some(e2) = self.g2.edge_between(VertexId(mu), VertexId(mv)) {
                if self.g2.edge_label(e2) == edge.label {
                    edge_pairs.push((e1, e2));
                }
            }
        }
        Mcs {
            vertex_pairs,
            edge_pairs,
        }
    }
}

/// Greedily approximates the maximum common connected subgraph.
///
/// `max_seeds` caps the number of seed edge pairs tried (use `usize::MAX`
/// for all); seeds are tried in deterministic id order.
pub fn greedy_mcs(g1: &Graph, g2: &Graph, max_seeds: usize) -> Mcs {
    let mut best = Mcs::default();
    let mut tried = 0usize;
    'seed: for e1 in g1.edges() {
        let edge1 = *g1.edge(e1);
        for e2 in g2.edges() {
            let edge2 = *g2.edge(e2);
            if edge1.label != edge2.label {
                continue;
            }
            // Two orientations of the seed edge pair.
            for (su, sv) in [(edge2.u, edge2.v), (edge2.v, edge2.u)] {
                if g1.vertex_label(edge1.u) != g2.vertex_label(su)
                    || g1.vertex_label(edge1.v) != g2.vertex_label(sv)
                {
                    continue;
                }
                if tried >= max_seeds {
                    break 'seed;
                }
                tried += 1;
                let mut st = State::new(g1, g2);
                st.add(edge1.u, su);
                st.add(edge1.v, sv);
                while let Some((u, v, gain)) = st.best_extension() {
                    debug_assert!(gain >= 1);
                    st.add(u, v);
                }
                if st.edges > best.edges() {
                    best = st.snapshot();
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::mcs_edge_size;
    use gss_graph::{Graph, GraphBuilder, Label, Rng, Vocabulary};

    #[test]
    fn greedy_finds_exact_on_subgraph_pairs() {
        let mut v = Vocabulary::new();
        let path = GraphBuilder::new("p", &mut v)
            .vertex("a", "A")
            .vertex("b", "B")
            .vertex("c", "C")
            .path(&["a", "b", "c"], "-")
            .build()
            .unwrap();
        let host = GraphBuilder::new("h", &mut v)
            .vertex("a", "A")
            .vertex("b", "B")
            .vertex("c", "C")
            .vertex("d", "D")
            .cycle(&["a", "b", "c", "d"], "-")
            .build()
            .unwrap();
        let m = greedy_mcs(&path, &host, usize::MAX);
        assert_eq!(m.edges(), 2);
    }

    #[test]
    fn greedy_never_exceeds_exact() {
        fn random_graph(rng: &mut Rng, n: usize, m: usize) -> Graph {
            let mut g = Graph::new("r");
            for _ in 0..n {
                g.add_vertex(Label(rng.gen_index(2) as u32));
            }
            let mut added = 0;
            let mut attempts = 0;
            while added < m && attempts < 100 {
                attempts += 1;
                let u = gss_graph::VertexId::new(rng.gen_index(n));
                let v = gss_graph::VertexId::new(rng.gen_index(n));
                if u != v && !g.has_edge(u, v) {
                    g.add_edge(u, v, Label(10)).unwrap();
                    added += 1;
                }
            }
            g
        }
        let mut rng = Rng::seed_from_u64(77);
        for _ in 0..60 {
            let (n1, m1) = (3 + rng.gen_index(3), 2 + rng.gen_index(5));
            let (n2, m2) = (3 + rng.gen_index(3), 2 + rng.gen_index(5));
            let g1 = random_graph(&mut rng, n1, m1);
            let g2 = random_graph(&mut rng, n2, m2);
            let approx = greedy_mcs(&g1, &g2, usize::MAX).edges();
            let exact = mcs_edge_size(&g1, &g2);
            assert!(approx <= exact, "greedy {approx} exceeded exact {exact}");
            // The greedy result must itself be a valid common subgraph.
            assert!(approx <= g1.size().min(g2.size()));
        }
    }

    #[test]
    fn empty_and_incompatible_inputs() {
        let mut v = Vocabulary::new();
        let empty = GraphBuilder::new("e", &mut v).build().unwrap();
        let g = GraphBuilder::new("g", &mut v)
            .vertices(&["a", "b"], "A")
            .edge("a", "b", "-")
            .build()
            .unwrap();
        assert_eq!(greedy_mcs(&empty, &g, usize::MAX).edges(), 0);
        assert_eq!(greedy_mcs(&g, &empty, usize::MAX).edges(), 0);
        assert_eq!(greedy_mcs(&g, &g, 0).edges(), 0); // zero seeds allowed
    }

    #[test]
    fn seed_cap_limits_work_but_stays_valid() {
        let mut v = Vocabulary::new();
        let g = GraphBuilder::new("g", &mut v)
            .vertices(&["a", "b", "c", "d"], "C")
            .cycle(&["a", "b", "c", "d"], "-")
            .build()
            .unwrap();
        let m = greedy_mcs(&g, &g, 1);
        assert!(m.edges() >= 1);
        assert!(m.edges() <= 4);
    }
}
