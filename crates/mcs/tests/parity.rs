//! Parity of the rewritten bitset kernels against the retained reference
//! implementations (`gss_mcs::reference`).
//!
//! The connected-MCS rewrite preserves the search order, so costs,
//! witnesses *and* expanded-node counts must be identical for both
//! objectives. The clique rewrite changes the visit order (the colouring
//! bound), so only the clique size is pinned — plus a fixed-workload
//! regression bound asserting the colouring search does not expand more
//! nodes than the reference.

use gss_graph::{Graph, Label, Rng, VertexId};
use gss_mcs::reference::{max_clique_reference, maximum_common_subgraph_reference};
use gss_mcs::{max_clique_expanded, maximum_common_subgraph_expanded, Objective};

fn random_graph(rng: &mut Rng, n: usize, m: usize, labels: usize) -> Graph {
    let mut g = Graph::new("r");
    for _ in 0..n {
        g.add_vertex(Label(rng.gen_index(labels) as u32));
    }
    let mut added = 0;
    let mut attempts = 0;
    while added < m && attempts < 120 {
        attempts += 1;
        let u = VertexId::new(rng.gen_index(n));
        let v = VertexId::new(rng.gen_index(n));
        if u != v && !g.has_edge(u, v) {
            g.add_edge(u, v, Label(10 + rng.gen_index(2) as u32))
                .unwrap();
            added += 1;
        }
    }
    g
}

#[test]
fn connected_mcs_is_bit_identical_to_reference_both_objectives() {
    let mut rng = Rng::seed_from_u64(0x9a417e);
    for case in 0..120 {
        let (n1, m1) = (1 + rng.gen_index(6), rng.gen_index(8));
        let (n2, m2) = (1 + rng.gen_index(6), rng.gen_index(8));
        let labels = 1 + rng.gen_index(3);
        let g1 = random_graph(&mut rng, n1, m1, labels);
        let g2 = random_graph(&mut rng, n2, m2, labels);
        for objective in [Objective::Edges, Objective::Vertices] {
            let (fast, fast_nodes) = maximum_common_subgraph_expanded(&g1, &g2, objective);
            let (slow, slow_nodes) = maximum_common_subgraph_reference(&g1, &g2, objective);
            assert_eq!(
                fast.vertex_pairs, slow.vertex_pairs,
                "case {case} {objective:?}: vertex witness"
            );
            assert_eq!(
                fast.edge_pairs, slow.edge_pairs,
                "case {case} {objective:?}: edge witness"
            );
            assert_eq!(
                fast_nodes, slow_nodes,
                "case {case} {objective:?}: search order must be preserved"
            );
        }
    }
}

#[test]
#[allow(clippy::needless_range_loop)] // symmetric matrix fill reads clearest indexed
fn clique_size_matches_reference_on_random_matrices() {
    let mut rng = Rng::seed_from_u64(0xc11c);
    for case in 0..100 {
        let n = rng.gen_index(13);
        let density = 5 + rng.gen_index(90);
        let mut adj = vec![vec![false; n]; n];
        for i in 0..n {
            for j in i + 1..n {
                if rng.gen_index(100) < density {
                    adj[i][j] = true;
                    adj[j][i] = true;
                }
            }
        }
        let (fast, _) = max_clique_expanded(&adj);
        let (slow, _) = max_clique_reference(&adj);
        assert_eq!(fast.len(), slow.len(), "case {case}: clique size");
    }
}

/// Pinned node-count regression on a fixed workload: the colouring bound
/// must keep the clique search at or below the reference node count, and
/// the connected-MCS rewrite must match the reference count exactly.
#[test]
#[allow(clippy::needless_range_loop)] // symmetric matrix fill reads clearest indexed
fn pinned_node_counts_on_fixed_workload() {
    let mut rng = Rng::seed_from_u64(0xf1bed);
    let mut clique_new = 0u64;
    let mut clique_ref = 0u64;
    let mut mcs_new = 0u64;
    let mut mcs_ref = 0u64;
    for _ in 0..20 {
        let n = 8 + rng.gen_index(4);
        let mut adj = vec![vec![false; n]; n];
        for i in 0..n {
            for j in i + 1..n {
                if rng.gen_index(100) < 55 {
                    adj[i][j] = true;
                    adj[j][i] = true;
                }
            }
        }
        clique_new += max_clique_expanded(&adj).1;
        clique_ref += max_clique_reference(&adj).1;

        let g1 = random_graph(&mut rng, 6, 8, 2);
        let g2 = random_graph(&mut rng, 6, 8, 2);
        mcs_new += maximum_common_subgraph_expanded(&g1, &g2, Objective::Edges).1;
        mcs_ref += maximum_common_subgraph_reference(&g1, &g2, Objective::Edges).1;
    }
    assert!(
        clique_new <= clique_ref,
        "colouring bound regressed: {clique_new} > reference {clique_ref}"
    );
    assert_eq!(
        mcs_new, mcs_ref,
        "connected-MCS search order must be preserved"
    );
}
