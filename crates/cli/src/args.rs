//! A small dependency-free command-line argument parser.
//!
//! Supports `--flag value`, `--flag=value` and boolean `--flag` forms, with
//! typed accessors and an unknown-flag check so typos fail loudly.

use std::collections::BTreeMap;

/// Parsed arguments: positional words plus `--key value` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    positional: Vec<String>,
    options: BTreeMap<String, String>,
}

/// Parse failure, with a message suitable for direct printing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments (excluding the program name).
    ///
    /// A flag followed by another flag (or nothing) is treated as boolean
    /// `"true"`.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Args {
        let mut positional = Vec::new();
        let mut options = BTreeMap::new();
        let mut iter = raw.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(stripped) = tok.strip_prefix("--") {
                if let Some((k, v)) = stripped.split_once('=') {
                    options.insert(k.to_owned(), v.to_owned());
                } else if iter.peek().is_some_and(|n| !n.starts_with("--")) {
                    let v = iter.next().expect("peeked");
                    options.insert(stripped.to_owned(), v);
                } else {
                    options.insert(stripped.to_owned(), "true".to_owned());
                }
            } else {
                positional.push(tok);
            }
        }
        Args {
            positional,
            options,
        }
    }

    /// The positional arguments in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// A string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A string option with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// A required string option.
    pub fn require(&self, key: &str) -> Result<&str, ArgError> {
        self.get(key)
            .ok_or_else(|| ArgError(format!("missing required option --{key}")))
    }

    /// A parsed numeric/typed option with a default.
    pub fn get_parsed_or<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
    ) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("option --{key} has invalid value {v:?}"))),
        }
    }

    /// True when the boolean flag is present.
    pub fn flag(&self, key: &str) -> bool {
        self.get(key).is_some_and(|v| v != "false")
    }

    /// Errors when any option outside `allowed` was passed.
    pub fn reject_unknown(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for k in self.options.keys() {
            if !allowed.contains(&k.as_str()) {
                return Err(ArgError(format!(
                    "unknown option --{k} (expected one of: {})",
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Args {
        Args::parse(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn positional_and_options() {
        let a = parse(&["query", "--db", "file.gdb", "--threads", "4"]);
        assert_eq!(a.positional(), &["query".to_string()]);
        assert_eq!(a.get("db"), Some("file.gdb"));
        assert_eq!(a.get_parsed_or("threads", 1usize).unwrap(), 4);
        assert_eq!(a.get_parsed_or("missing", 7usize).unwrap(), 7);
    }

    #[test]
    fn equals_form_and_boolean() {
        let a = parse(&["--k=3", "--verbose", "--out", "x.dot"]);
        assert_eq!(a.get("k"), Some("3"));
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
        assert_eq!(a.get("out"), Some("x.dot"));
    }

    #[test]
    fn flag_followed_by_flag_is_boolean() {
        let a = parse(&["--exact", "--db", "f"]);
        assert!(a.flag("exact"));
        assert_eq!(a.get("db"), Some("f"));
    }

    #[test]
    fn require_and_reject_unknown() {
        let a = parse(&["--db", "f"]);
        assert!(a.require("db").is_ok());
        assert!(a.require("query").is_err());
        assert!(a.reject_unknown(&["db"]).is_ok());
        let err = a.reject_unknown(&["other"]).unwrap_err();
        assert!(err.to_string().contains("--db"));
    }

    #[test]
    fn bad_numeric_value() {
        let a = parse(&["--threads", "four"]);
        assert!(a.get_parsed_or("threads", 1usize).is_err());
    }
}
