//! The networked subcommands: `gss serve` and `gss client`.
//!
//! `serve` starts a `gss-server` over a database file — wrapped in a live
//! [`GraphStore`] (with the `--index` pivot index maintained across
//! mutations, partial-rebuilding once `--staleness-budget` is exceeded) —
//! and blocks until a client sends the `shutdown` verb (graceful drain).
//! `client` speaks the newline-delimited JSON protocol: one-shot queries
//! (`--query-file`, `-` for stdin), atomic mutation batches
//! (`--insert-file`, `--remove`, `--update` + `--update-file`), counter
//! inspection (`--stats`), drain requests (`--shutdown`) and a load
//! generator (`--bench`) that measures queries/sec and latency
//! percentiles over concurrent connections.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use gss_core::jsonio::Value;
use gss_core::QueryOptions;
use gss_server::{
    percentile_us, Client, ClientBuilder, FaultPlan, GraphStore, RetryPolicy, ServerConfig,
    StoreConfig,
};
use gss_store::{FsyncPolicy, WalConfig};

use crate::args::{ArgError, Args};
use crate::commands::{load_db, load_index, parse_plan_sharded, read_text_input, solver_config};

/// `gss serve` — run the query server until a `shutdown` request drains it.
pub fn serve(args: &Args) -> Result<String, ArgError> {
    args.reject_unknown(&[
        "db",
        "index",
        "addr",
        "workers",
        "reactor-threads",
        "shards",
        "queue",
        "cache",
        "cache-shards",
        "batch",
        "deadline-ms",
        "prefilter",
        "approx",
        "plan",
        "staleness-budget",
        "data-dir",
        "fsync",
        "checkpoint-every",
    ])?;
    let db = load_db(args)?;
    let index = load_index(&db, args)?;
    let plan = parse_plan_sharded(args, index.is_some())?;
    let base = QueryOptions {
        solvers: solver_config(args),
        plan,
        prefilter: args.flag("prefilter"),
        ..Default::default()
    };
    // The index lives in the live store (not the base options): each
    // mutation epoch maintains it incrementally and queries pick it up
    // from their pinned snapshot.
    let store_config = StoreConfig {
        index: None,
        staleness_budget: args
            .get_parsed_or("staleness-budget", StoreConfig::default().staleness_budget)?,
    };
    let db = Arc::new(db);
    // Chaos testing: GSS_FAULT compiles a deterministic fault plan into
    // the WAL and connection write paths (see gss_store::fault).
    let faults = match std::env::var("GSS_FAULT") {
        Ok(spec) if !spec.trim().is_empty() => {
            Arc::new(FaultPlan::parse(&spec).map_err(|e| ArgError(format!("bad GSS_FAULT: {e}")))?)
        }
        _ => Arc::new(FaultPlan::none()),
    };
    let store = match args.get("data-dir") {
        Some(dir) => {
            // Durable mode: the WAL owns recovery, so the pivot index is
            // rebuilt on the recovered database rather than loaded.
            let durable_config = StoreConfig {
                index: index.as_ref().map(|i| i.config()),
                ..store_config
            };
            let mut wal_config = WalConfig::new(dir);
            if let Some(policy) = args.get("fsync") {
                wal_config.fsync = FsyncPolicy::parse(policy).ok_or_else(|| {
                    ArgError(format!("bad --fsync {policy:?} (always|off|every-N)"))
                })?;
            }
            wal_config.checkpoint_every =
                args.get_parsed_or("checkpoint-every", wal_config.checkpoint_every)?;
            wal_config.faults = Arc::clone(&faults);
            GraphStore::open_durable(db, durable_config, wal_config)
                .map_err(|e| ArgError(format!("cannot open --data-dir {dir}: {e}")))?
        }
        None => {
            if args.get("fsync").is_some() || args.get("checkpoint-every").is_some() {
                return Err(ArgError(
                    "--fsync / --checkpoint-every need --data-dir DIR".to_owned(),
                ));
            }
            match index {
                Some(index) => GraphStore::with_index(db, index, store_config)
                    .map_err(|e| ArgError(format!("--index does not match --db: {e}")))?,
                None => GraphStore::new(db, store_config),
            }
        }
    };
    let defaults = ServerConfig::default();
    let config = ServerConfig {
        addr: args.get_or("addr", "127.0.0.1:7878").to_owned(),
        workers: args.get_parsed_or("workers", defaults.workers)?,
        reactor_threads: args.get_parsed_or("reactor-threads", defaults.reactor_threads)?,
        shards: args.get_parsed_or("shards", defaults.shards)?,
        queue_capacity: args.get_parsed_or("queue", defaults.queue_capacity)?,
        cache_capacity: args.get_parsed_or("cache", defaults.cache_capacity)?,
        cache_shards: args.get_parsed_or("cache-shards", defaults.cache_shards)?,
        batch_max: args.get_parsed_or("batch", defaults.batch_max)?,
        default_deadline_ms: args.get_parsed_or("deadline-ms", defaults.default_deadline_ms)?,
        retry_after_ms: defaults.retry_after_ms,
        faults,
    };
    let graphs = store.snapshot().database().len();
    let handle = gss_server::serve_store(Arc::new(store), base, config)
        .map_err(|e| ArgError(format!("cannot start server: {e}")))?;
    // The bound address goes to stderr immediately (stdout is reserved for
    // the final report): with --addr …:0 this is the only place the chosen
    // port appears.
    eprintln!(
        "gss-server listening on {} ({graphs} graphs); send {{\"op\":\"shutdown\"}} to stop",
        handle.addr()
    );
    let final_stats = handle.join();
    Ok(format!("drained; final stats: {final_stats}\n"))
}

/// `gss wal inspect DIR` — offline durability-log inspection: per-file
/// record counts and checksum status plus the recoverable epoch range,
/// without opening (or mutating) the store.
pub fn wal(args: &Args) -> Result<String, ArgError> {
    match args.positional().get(1).map(String::as_str) {
        Some("inspect") => wal_inspect(args),
        other => Err(ArgError(format!(
            "unknown wal subcommand {other:?} (inspect)"
        ))),
    }
}

fn wal_inspect(args: &Args) -> Result<String, ArgError> {
    args.reject_unknown(&[])?;
    let dir = args
        .positional()
        .get(2)
        .ok_or_else(|| ArgError("usage: gss wal inspect DIR".to_owned()))?;
    let report = gss_store::inspect(std::path::Path::new(dir))
        .map_err(|e| ArgError(format!("cannot inspect {dir}: {e}")))?;

    let status = |s: &gss_store::ArtifactStatus| match s {
        gss_store::ArtifactStatus::Clean => "clean".to_owned(),
        gss_store::ArtifactStatus::TornTail { offset } => {
            format!("torn tail at byte {offset} (recovery truncates)")
        }
        gss_store::ArtifactStatus::Corrupt { detail } => format!("CORRUPT: {detail}"),
    };
    let mut out = String::new();
    let _ = writeln!(out, "wal directory {dir}:");
    for c in &report.checkpoints {
        let graphs = c
            .graphs
            .map(|g| format!("{g} graphs"))
            .unwrap_or_else(|| "? graphs".to_owned());
        let _ = writeln!(
            out,
            "  checkpoint {} epoch {} ({graphs}) — {}",
            c.file,
            c.epoch,
            status(&c.status)
        );
    }
    for s in &report.segments {
        let range = match (s.first_epoch, s.last_epoch) {
            (Some(a), Some(b)) => format!("epochs {a}..={b}"),
            _ => "no complete records".to_owned(),
        };
        let _ = writeln!(
            out,
            "  segment {} ({} bytes, {} records, {range}) — {}",
            s.file,
            s.bytes,
            s.records,
            status(&s.status)
        );
    }
    if report.checkpoints.is_empty() && report.segments.is_empty() {
        let _ = writeln!(out, "  (empty)");
    }
    match report.recoverable {
        Some((from, to)) => {
            let _ = writeln!(out, "recoverable: epochs {from}..={to}");
        }
        None => {
            let _ = writeln!(out, "recoverable: NONE — recovery would refuse this log");
        }
    }
    Ok(out)
}

/// Builds the typed client configuration from the query-option flags
/// (the default builder when none are given).
fn client_builder(args: &Args) -> Result<ClientBuilder, ArgError> {
    let mut builder = Client::builder();
    if args.flag("prefilter") {
        builder = builder.prefilter(true);
    }
    if args.flag("approx") {
        builder = builder.approx(true);
    }
    if let Some(algo) = args.get("algo") {
        builder = builder.algo(match algo {
            "naive" => gss_skyline::Algorithm::Naive,
            "bnl" => gss_skyline::Algorithm::Bnl,
            "sfs" => gss_skyline::Algorithm::Sfs,
            _ => return Err(ArgError(format!("unknown --algo {algo:?} (naive|bnl|sfs)"))),
        });
    }
    if let Some(plan) = args.get("plan") {
        builder = builder.plan(gss_core::Plan::parse(plan).ok_or_else(|| {
            ArgError(format!(
                "unknown --plan {plan:?} (auto|naive|prefilter|indexed|sharded)"
            ))
        })?);
    }
    if let Some(ms) = args.get("deadline-ms") {
        builder = builder.deadline_ms(
            ms.parse()
                .map_err(|_| ArgError(format!("bad --deadline-ms {ms:?}")))?,
        );
    }
    if let Some(n) = args.get("retry") {
        let n: u32 = n
            .parse()
            .map_err(|_| ArgError(format!("bad --retry {n:?}")))?;
        builder = builder.retry(RetryPolicy::retries(n));
    }
    Ok(builder)
}

fn connect(addr: &str) -> Result<Client, ArgError> {
    Client::connect(addr).map_err(|e| ArgError(format!("cannot connect to {addr}: {e}")))
}

fn connect_with(builder: ClientBuilder, addr: &str) -> Result<Client, ArgError> {
    builder
        .connect(addr)
        .map_err(|e| ArgError(format!("cannot connect to {addr}: {e}")))
}

fn io_err(e: std::io::Error) -> ArgError {
    ArgError(format!("protocol error: {e}"))
}

/// `gss client` — one-shot queries, stats, shutdown and load generation
/// against a running `gss serve`.
pub fn client(args: &Args) -> Result<String, ArgError> {
    args.reject_unknown(&[
        "addr",
        "query-file",
        "bench",
        "db",
        "connections",
        "repeat",
        "limit",
        "prefilter",
        "approx",
        "algo",
        "plan",
        "deadline-ms",
        "retry",
        "stats",
        "shutdown",
        "insert-file",
        "remove",
        "update",
        "update-file",
    ])?;
    let addr = args.require("addr")?;
    let mut out = String::new();
    let mut acted = false;

    if let Some(path) = args.get("query-file") {
        acted = true;
        let text = read_text_input(path, "--query-file")?;
        let response = connect_with(client_builder(args)?, addr)?
            .query(&text)
            .map_err(io_err)?;
        out.push_str(&response.to_line());
    }

    if let Some(path) = args.get("insert-file") {
        acted = true;
        let text = read_text_input(path, "--insert-file")?;
        let response = connect_with(client_builder(args)?, addr)?
            .insert(&text)
            .map_err(io_err)?;
        out.push_str(&response.to_line());
    }

    if let Some(list) = args.get("remove") {
        acted = true;
        let names: Vec<String> = list
            .split(',')
            .map(str::trim)
            .filter(|n| !n.is_empty())
            .map(str::to_owned)
            .collect();
        if names.is_empty() {
            return Err(ArgError(
                "--remove needs at least one graph name".to_owned(),
            ));
        }
        let response = connect_with(client_builder(args)?, addr)?
            .remove(&names)
            .map_err(io_err)?;
        out.push_str(&response.to_line());
    }

    match (args.get("update"), args.get("update-file")) {
        (Some(name), Some(path)) => {
            acted = true;
            let text = read_text_input(path, "--update-file")?;
            let response = connect_with(client_builder(args)?, addr)?
                .update(name, &text)
                .map_err(io_err)?;
            out.push_str(&response.to_line());
        }
        (Some(_), None) => {
            return Err(ArgError(
                "--update needs --update-file FILE with the replacement graph".to_owned(),
            ))
        }
        (None, Some(_)) => {
            return Err(ArgError(
                "--update-file needs --update NAME naming the graph to replace".to_owned(),
            ))
        }
        (None, None) => {}
    }

    if args.flag("bench") {
        acted = true;
        out.push_str(&bench(addr, args)?);
    }

    if args.flag("stats") {
        acted = true;
        let stats = connect(addr)?.stats().map_err(io_err)?;
        let _ = writeln!(out, "{}", stats.to_compact());
        // Render the server's memory section as readable text below the
        // raw JSON (same layout `gss pack` and `gss index stats` print).
        if let Some(mem) = stats.get("memory") {
            let field = |k: &str| mem.get(k).and_then(Value::as_f64).unwrap_or(0.0) as usize;
            out.push_str(&crate::commands::memory_report(
                &gss_core::database::MemoryStats {
                    graphs: field("graphs"),
                    arena_graphs: field("arena_graphs"),
                    materialized: field("materialized"),
                    arena_bytes: field("arena_bytes"),
                    stats_columns_bytes: field("stats_columns_bytes"),
                    pool_entries: field("pool_entries"),
                    pool_bytes: field("pool_bytes"),
                    pointer_rich_bytes: field("pointer_rich_bytes"),
                },
            ));
            if let Some(ms) = mem.get("cold_start_ms").and_then(Value::as_f64) {
                let _ = writeln!(out, "  cold start: {ms:.1} ms");
            }
        }
    }

    if args.flag("shutdown") {
        acted = true;
        let ack = connect(addr)?.shutdown().map_err(io_err)?;
        out.push_str(&ack.to_line());
    }

    if !acted {
        connect(addr)?.ping().map_err(io_err)?;
        let _ = writeln!(out, "pong from {addr}");
    }
    Ok(out)
}

/// The `--bench` load generator: replays every graph of `--db` as a query
/// (`--limit` caps how many), `--repeat` passes over the set so repeated
/// queries exercise the result cache, across `--connections` concurrent
/// connections. Reports client-side throughput and latency percentiles
/// plus the server's own counters.
fn bench(addr: &str, args: &Args) -> Result<String, ArgError> {
    let db = load_db(args)?;
    if db.is_empty() {
        return Err(ArgError("--bench needs a nonempty --db".to_owned()));
    }
    let limit = args.get_parsed_or("limit", db.len())?.min(db.len()).max(1);
    let repeat = args.get_parsed_or("repeat", 2usize)?.max(1);
    let connections = args.get_parsed_or("connections", 4usize)?.max(1);
    let builder = client_builder(args)?;

    // Each query graph is serialized standalone against the shared vocab.
    let texts: Vec<String> = db
        .iter()
        .take(limit)
        .map(|(_, g)| gss_graph::format::write_database(std::slice::from_ref(g), db.vocab()))
        .collect();

    struct WorkerReport {
        latencies_us: Vec<u64>,
        sent: usize,
        failures: usize,
        retries: u64,
    }

    let started = Instant::now();
    let reports: Vec<Result<WorkerReport, ArgError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|worker| {
                let texts = &texts;
                let builder = builder.clone();
                scope.spawn(move || -> Result<WorkerReport, ArgError> {
                    let mut client = connect_with(builder, addr)?;
                    let mut report = WorkerReport {
                        latencies_us: Vec::new(),
                        sent: 0,
                        failures: 0,
                        retries: 0,
                    };
                    for _pass in 0..repeat {
                        for text in texts.iter().skip(worker).step_by(connections) {
                            let t0 = Instant::now();
                            let response = client.query(text).map_err(io_err)?;
                            report.latencies_us.push(t0.elapsed().as_micros() as u64);
                            report.sent += 1;
                            if !response.is_ok() {
                                report.failures += 1;
                            }
                        }
                    }
                    report.retries = client.retries();
                    Ok(report)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bench worker panicked"))
            .collect()
    });
    let wall = started.elapsed().as_secs_f64();

    let mut latencies: Vec<u64> = Vec::new();
    let mut sent = 0usize;
    let mut failures = 0usize;
    let mut retries = 0u64;
    for r in reports {
        let r = r?;
        latencies.extend(r.latencies_us);
        sent += r.sent;
        failures += r.failures;
        retries += r.retries;
    }
    latencies.sort_unstable();

    let server_stats = connect(addr)?.stats().map_err(io_err)?;
    let hit_rate = server_stats
        .get("cache_hit_rate")
        .and_then(Value::as_f64)
        .unwrap_or(0.0);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "bench: {sent} queries ({} distinct × {repeat} passes) over {connections} connections in {:.2} s",
        texts.len(),
        wall
    );
    let _ = writeln!(
        out,
        "throughput: {:.1} queries/s; latency p50 {:.0} µs, p99 {:.0} µs, max {:.0} µs",
        sent as f64 / wall.max(1e-9),
        percentile_us(&latencies, 50),
        percentile_us(&latencies, 99),
        latencies.last().copied().unwrap_or(0) as f64,
    );
    let _ = writeln!(
        out,
        "failures: {failures}; retries: {retries}; server cache hit rate: {:.1}%",
        hit_rate * 100.0
    );
    let _ = writeln!(out, "server stats: {}", server_stats.to_compact());
    if failures > 0 {
        return Err(ArgError(format!(
            "{failures} of {sent} requests failed\n{out}"
        )));
    }
    Ok(out)
}
