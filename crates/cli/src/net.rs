//! The networked subcommands: `gss serve` and `gss client`.
//!
//! `serve` starts a `gss-server` over a database file — wrapped in a live
//! [`GraphStore`] (with the `--index` pivot index maintained across
//! mutations, partial-rebuilding once `--staleness-budget` is exceeded) —
//! and blocks until a client sends the `shutdown` verb (graceful drain).
//! `client` speaks the newline-delimited JSON protocol: one-shot queries
//! (`--query-file`, `-` for stdin), atomic mutation batches
//! (`--insert-file`, `--remove`, `--update` + `--update-file`), counter
//! inspection (`--stats`), drain requests (`--shutdown`) and a load
//! generator (`--bench`) that measures queries/sec and latency
//! percentiles over concurrent connections.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use gss_core::jsonio::Value;
use gss_core::QueryOptions;
use gss_server::{percentile_us, Client, ClientBuilder, GraphStore, ServerConfig, StoreConfig};

use crate::args::{ArgError, Args};
use crate::commands::{load_db, load_index, parse_plan_sharded, read_text_input, solver_config};

/// `gss serve` — run the query server until a `shutdown` request drains it.
pub fn serve(args: &Args) -> Result<String, ArgError> {
    args.reject_unknown(&[
        "db",
        "index",
        "addr",
        "workers",
        "reactor-threads",
        "shards",
        "queue",
        "cache",
        "cache-shards",
        "batch",
        "deadline-ms",
        "prefilter",
        "approx",
        "plan",
        "staleness-budget",
    ])?;
    let db = load_db(args)?;
    let index = load_index(&db, args)?;
    let plan = parse_plan_sharded(args, index.is_some())?;
    let base = QueryOptions {
        solvers: solver_config(args),
        plan,
        prefilter: args.flag("prefilter"),
        ..Default::default()
    };
    // The index lives in the live store (not the base options): each
    // mutation epoch maintains it incrementally and queries pick it up
    // from their pinned snapshot.
    let store_config = StoreConfig {
        index: None,
        staleness_budget: args
            .get_parsed_or("staleness-budget", StoreConfig::default().staleness_budget)?,
    };
    let db = Arc::new(db);
    let store = match index {
        Some(index) => GraphStore::with_index(db, index, store_config)
            .map_err(|e| ArgError(format!("--index does not match --db: {e}")))?,
        None => GraphStore::new(db, store_config),
    };
    let defaults = ServerConfig::default();
    let config = ServerConfig {
        addr: args.get_or("addr", "127.0.0.1:7878").to_owned(),
        workers: args.get_parsed_or("workers", defaults.workers)?,
        reactor_threads: args.get_parsed_or("reactor-threads", defaults.reactor_threads)?,
        shards: args.get_parsed_or("shards", defaults.shards)?,
        queue_capacity: args.get_parsed_or("queue", defaults.queue_capacity)?,
        cache_capacity: args.get_parsed_or("cache", defaults.cache_capacity)?,
        cache_shards: args.get_parsed_or("cache-shards", defaults.cache_shards)?,
        batch_max: args.get_parsed_or("batch", defaults.batch_max)?,
        default_deadline_ms: args.get_parsed_or("deadline-ms", defaults.default_deadline_ms)?,
        retry_after_ms: defaults.retry_after_ms,
    };
    let graphs = store.snapshot().database().len();
    let handle = gss_server::serve_store(Arc::new(store), base, config)
        .map_err(|e| ArgError(format!("cannot start server: {e}")))?;
    // The bound address goes to stderr immediately (stdout is reserved for
    // the final report): with --addr …:0 this is the only place the chosen
    // port appears.
    eprintln!(
        "gss-server listening on {} ({graphs} graphs); send {{\"op\":\"shutdown\"}} to stop",
        handle.addr()
    );
    let final_stats = handle.join();
    Ok(format!("drained; final stats: {final_stats}\n"))
}

/// Builds the typed client configuration from the query-option flags
/// (the default builder when none are given).
fn client_builder(args: &Args) -> Result<ClientBuilder, ArgError> {
    let mut builder = Client::builder();
    if args.flag("prefilter") {
        builder = builder.prefilter(true);
    }
    if args.flag("approx") {
        builder = builder.approx(true);
    }
    if let Some(algo) = args.get("algo") {
        builder = builder.algo(match algo {
            "naive" => gss_skyline::Algorithm::Naive,
            "bnl" => gss_skyline::Algorithm::Bnl,
            "sfs" => gss_skyline::Algorithm::Sfs,
            _ => return Err(ArgError(format!("unknown --algo {algo:?} (naive|bnl|sfs)"))),
        });
    }
    if let Some(plan) = args.get("plan") {
        builder = builder.plan(gss_core::Plan::parse(plan).ok_or_else(|| {
            ArgError(format!(
                "unknown --plan {plan:?} (auto|naive|prefilter|indexed|sharded)"
            ))
        })?);
    }
    if let Some(ms) = args.get("deadline-ms") {
        builder = builder.deadline_ms(
            ms.parse()
                .map_err(|_| ArgError(format!("bad --deadline-ms {ms:?}")))?,
        );
    }
    Ok(builder)
}

fn connect(addr: &str) -> Result<Client, ArgError> {
    Client::connect(addr).map_err(|e| ArgError(format!("cannot connect to {addr}: {e}")))
}

fn connect_with(builder: ClientBuilder, addr: &str) -> Result<Client, ArgError> {
    builder
        .connect(addr)
        .map_err(|e| ArgError(format!("cannot connect to {addr}: {e}")))
}

fn io_err(e: std::io::Error) -> ArgError {
    ArgError(format!("protocol error: {e}"))
}

/// `gss client` — one-shot queries, stats, shutdown and load generation
/// against a running `gss serve`.
pub fn client(args: &Args) -> Result<String, ArgError> {
    args.reject_unknown(&[
        "addr",
        "query-file",
        "bench",
        "db",
        "connections",
        "repeat",
        "limit",
        "prefilter",
        "approx",
        "algo",
        "plan",
        "deadline-ms",
        "stats",
        "shutdown",
        "insert-file",
        "remove",
        "update",
        "update-file",
    ])?;
    let addr = args.require("addr")?;
    let mut out = String::new();
    let mut acted = false;

    if let Some(path) = args.get("query-file") {
        acted = true;
        let text = read_text_input(path, "--query-file")?;
        let response = connect_with(client_builder(args)?, addr)?
            .query(&text)
            .map_err(io_err)?;
        out.push_str(&response.to_line());
    }

    if let Some(path) = args.get("insert-file") {
        acted = true;
        let text = read_text_input(path, "--insert-file")?;
        let response = connect(addr)?.insert(&text).map_err(io_err)?;
        out.push_str(&response.to_line());
    }

    if let Some(list) = args.get("remove") {
        acted = true;
        let names: Vec<String> = list
            .split(',')
            .map(str::trim)
            .filter(|n| !n.is_empty())
            .map(str::to_owned)
            .collect();
        if names.is_empty() {
            return Err(ArgError(
                "--remove needs at least one graph name".to_owned(),
            ));
        }
        let response = connect(addr)?.remove(&names).map_err(io_err)?;
        out.push_str(&response.to_line());
    }

    match (args.get("update"), args.get("update-file")) {
        (Some(name), Some(path)) => {
            acted = true;
            let text = read_text_input(path, "--update-file")?;
            let response = connect(addr)?.update(name, &text).map_err(io_err)?;
            out.push_str(&response.to_line());
        }
        (Some(_), None) => {
            return Err(ArgError(
                "--update needs --update-file FILE with the replacement graph".to_owned(),
            ))
        }
        (None, Some(_)) => {
            return Err(ArgError(
                "--update-file needs --update NAME naming the graph to replace".to_owned(),
            ))
        }
        (None, None) => {}
    }

    if args.flag("bench") {
        acted = true;
        out.push_str(&bench(addr, args)?);
    }

    if args.flag("stats") {
        acted = true;
        let stats = connect(addr)?.stats().map_err(io_err)?;
        let _ = writeln!(out, "{}", stats.to_compact());
    }

    if args.flag("shutdown") {
        acted = true;
        let ack = connect(addr)?.shutdown().map_err(io_err)?;
        out.push_str(&ack.to_line());
    }

    if !acted {
        connect(addr)?.ping().map_err(io_err)?;
        let _ = writeln!(out, "pong from {addr}");
    }
    Ok(out)
}

/// The `--bench` load generator: replays every graph of `--db` as a query
/// (`--limit` caps how many), `--repeat` passes over the set so repeated
/// queries exercise the result cache, across `--connections` concurrent
/// connections. Reports client-side throughput and latency percentiles
/// plus the server's own counters.
fn bench(addr: &str, args: &Args) -> Result<String, ArgError> {
    let db = load_db(args)?;
    if db.is_empty() {
        return Err(ArgError("--bench needs a nonempty --db".to_owned()));
    }
    let limit = args.get_parsed_or("limit", db.len())?.min(db.len()).max(1);
    let repeat = args.get_parsed_or("repeat", 2usize)?.max(1);
    let connections = args.get_parsed_or("connections", 4usize)?.max(1);
    let builder = client_builder(args)?;

    // Each query graph is serialized standalone against the shared vocab.
    let texts: Vec<String> = db
        .graphs()
        .iter()
        .take(limit)
        .map(|g| gss_graph::format::write_database(std::slice::from_ref(g), db.vocab()))
        .collect();

    struct WorkerReport {
        latencies_us: Vec<u64>,
        sent: usize,
        failures: usize,
    }

    let started = Instant::now();
    let reports: Vec<Result<WorkerReport, ArgError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|worker| {
                let texts = &texts;
                let builder = builder.clone();
                scope.spawn(move || -> Result<WorkerReport, ArgError> {
                    let mut client = connect_with(builder, addr)?;
                    let mut report = WorkerReport {
                        latencies_us: Vec::new(),
                        sent: 0,
                        failures: 0,
                    };
                    for _pass in 0..repeat {
                        for text in texts.iter().skip(worker).step_by(connections) {
                            let t0 = Instant::now();
                            let response = client.query(text).map_err(io_err)?;
                            report.latencies_us.push(t0.elapsed().as_micros() as u64);
                            report.sent += 1;
                            if !response.is_ok() {
                                report.failures += 1;
                            }
                        }
                    }
                    Ok(report)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bench worker panicked"))
            .collect()
    });
    let wall = started.elapsed().as_secs_f64();

    let mut latencies: Vec<u64> = Vec::new();
    let mut sent = 0usize;
    let mut failures = 0usize;
    for r in reports {
        let r = r?;
        latencies.extend(r.latencies_us);
        sent += r.sent;
        failures += r.failures;
    }
    latencies.sort_unstable();

    let server_stats = connect(addr)?.stats().map_err(io_err)?;
    let hit_rate = server_stats
        .get("cache_hit_rate")
        .and_then(Value::as_f64)
        .unwrap_or(0.0);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "bench: {sent} queries ({} distinct × {repeat} passes) over {connections} connections in {:.2} s",
        texts.len(),
        wall
    );
    let _ = writeln!(
        out,
        "throughput: {:.1} queries/s; latency p50 {:.0} µs, p99 {:.0} µs, max {:.0} µs",
        sent as f64 / wall.max(1e-9),
        percentile_us(&latencies, 50),
        percentile_us(&latencies, 99),
        latencies.last().copied().unwrap_or(0) as f64,
    );
    let _ = writeln!(
        out,
        "failures: {failures}; server cache hit rate: {:.1}%",
        hit_rate * 100.0
    );
    let _ = writeln!(out, "server stats: {}", server_stats.to_compact());
    if failures > 0 {
        return Err(ArgError(format!(
            "{failures} of {sent} requests failed\n{out}"
        )));
    }
    Ok(out)
}
