//! The `gss` binary: a thin shell over [`gss_cli::run`].

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match gss_cli::run(raw) {
        Ok(output) => {
            print!("{output}");
        }
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
    }
}
