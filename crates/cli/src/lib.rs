//! # gss-cli — the `gss` command-line tool
//!
//! Similarity-skyline graph queries from the shell, over databases in the
//! `t/v/e` text format (see `gss_graph::format`):
//!
//! ```text
//! gss query    --db db.gdb --query-name q [--refine K] [--approx] [--threads N]
//!              [--prefilter] [--index db.gsi]
//! gss measure  --db db.gdb --a g1 --b g2
//! gss topk     --db db.gdb --query-name q --measure ed|mcs|gu [--k K]
//! gss index    build --db db.gdb --out db.gsi [--pivots K] [--rings R]
//! gss index    stats --index db.gsi [--db db.gdb]
//! gss serve    --db db.gdb [--index db.gsi] [--addr HOST:PORT]
//!              [--data-dir DIR [--fsync always|off|every-N] [--checkpoint-every N]]
//! gss client   --addr HOST:PORT [--query-file q.gdb|-] [--bench --db db.gdb]
//!              [--retry N]
//! gss wal      inspect DIR
//! gss pack     --db db.gdb --out db.gsb               # compact binary format
//! gss generate --kind molecule|uniform --count N [--vertices V] [--seed S]
//! gss convert  --db db.gdb [--graph NAME]           # Graphviz DOT
//! gss paper                                          # reproduce Tables I–V
//! ```
//!
//! All command implementations live in this library (returning their output
//! as `String`) so they are unit-testable; the `gss` binary is a thin shell.

#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod net;

pub use args::{ArgError, Args};

/// Runs the CLI against raw arguments (excluding the program name), writing
/// nothing: returns the output text or an error message.
pub fn run<I: IntoIterator<Item = String>>(raw: I) -> Result<String, String> {
    let args = Args::parse(raw);
    let command = args
        .positional()
        .first()
        .map(String::as_str)
        .unwrap_or("help");
    match command {
        "query" => commands::query(&args).map_err(|e| e.to_string()),
        "measure" => commands::measure(&args).map_err(|e| e.to_string()),
        "topk" => commands::topk(&args).map_err(|e| e.to_string()),
        "skyband" => commands::skyband(&args).map_err(|e| e.to_string()),
        "index" => commands::index(&args).map_err(|e| e.to_string()),
        "serve" => net::serve(&args).map_err(|e| e.to_string()),
        "client" => net::client(&args).map_err(|e| e.to_string()),
        "wal" => net::wal(&args).map_err(|e| e.to_string()),
        "pack" => commands::pack(&args).map_err(|e| e.to_string()),
        "generate" => commands::generate(&args).map_err(|e| e.to_string()),
        "convert" => commands::convert(&args).map_err(|e| e.to_string()),
        "paper" => Ok(commands::paper()),
        "help" | "--help" | "-h" => Ok(commands::help()),
        other => Err(format!("unknown command {other:?}\n\n{}", commands::help())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_lists_commands() {
        let out = run(["help".to_string()]).unwrap();
        for cmd in [
            "query", "measure", "topk", "skyband", "index", "generate", "convert", "paper",
        ] {
            assert!(out.contains(cmd), "help must mention {cmd}");
        }
        // No-args behaves like help.
        assert_eq!(run(Vec::<String>::new()).unwrap(), out);
    }

    #[test]
    fn unknown_command_errors_with_help() {
        let err = run(["frobnicate".to_string()]).unwrap_err();
        assert!(err.contains("unknown command"));
        assert!(err.contains("query"));
    }
}
