//! The `gss` subcommand implementations.
//!
//! Every command returns its report as a `String` (testable, pipe-friendly);
//! file-system access is limited to reading `--db`/`--query-file` inputs and
//! optional `--out` writing handled by the binary shell.

use std::fmt::Write as _;
use std::sync::Arc;

use gss_core::{
    graph_similarity_skyband, graph_similarity_skyline, refine_skyline, top_k_by_measure, GedMode,
    GraphDatabase, GraphId, McsMode, MeasureKind, Plan, PruneStats, QueryOptions, RefineOptions,
    SolverConfig,
};
use gss_datasets::workload::{Workload, WorkloadConfig, WorkloadKind};
use gss_ged::{bipartite::bipartite_ged, edit_path_for_mapping, exact_ged, CostModel, GedOptions};
use gss_graph::format::to_dot;
use gss_graph::Graph;
use gss_index::{PivotIndex, PivotIndexConfig};

use crate::args::{ArgError, Args};

/// The `gss help` text.
pub fn help() -> String {
    "\
gss — similarity-skyline graph queries (Abbaci et al., GDM/ICDE 2011)

USAGE:
  gss query    --db FILE (--query-name NAME | --query-file FILE)
               [--refine K] [--approx] [--prefilter] [--index IDX]
               [--plan auto|naive|prefilter|indexed|sharded] [--shards N]
               [--threads N] [--algo naive|bnl|sfs] [--format text|json]
  gss measure  --db FILE --a NAME --b NAME
  gss topk     --db FILE --query-name NAME --measure ed|ned|mcs|gu [--k K]
  gss skyband  --db FILE --query-name NAME [--k K] [--approx] [--threads N]
               [--prefilter] [--index IDX]
               [--plan auto|naive|prefilter|indexed|sharded] [--shards N]
  gss index    build --db FILE --out IDX [--pivots K] [--rings R]
               [--exclude NAME]
  gss index    stats --index IDX [--db FILE]
  gss serve    --db FILE [--index IDX] [--addr HOST:PORT] [--workers N]
               [--reactor-threads N] [--shards N] [--queue N] [--cache N]
               [--batch N] [--prefilter] [--approx] [--staleness-budget N]
               [--data-dir DIR [--fsync always|off|every-N]
               [--checkpoint-every N]]
  gss client   --addr HOST:PORT [--query-file FILE|-] [--stats] [--shutdown]
               [--insert-file FILE|-] [--remove NAME[,NAME…]]
               [--update NAME --update-file FILE|-]
               [--bench --db FILE [--connections C] [--repeat R] [--limit N]]
               [--prefilter] [--approx] [--algo naive|bnl|sfs] [--plan PLAN]
               [--deadline-ms MS] [--retry N]
  gss wal      inspect DIR
  gss pack     --db FILE --out FILE
  gss generate --kind molecule|uniform --count N [--vertices V] [--seed S]
               [--related FRACTION] [--max-edits E]
  gss convert  --db FILE [--graph NAME]
  gss paper

Databases use the t/v/e text format:
  t <name>
  v <index> <label>
  e <u> <v> <label>

`pack` converts a text database into the compact checksummed binary format
(CSR arenas + precomputed stats columns). Every --db flag accepts either
format — the binary one loads without re-parsing or recomputing
summaries, so `gss serve` over a packed file starts near-instantly. Both
representations answer every query byte-identically.

`query` runs the compound-similarity skyline (DistEd, DistMcs, DistGu).
With --query-name the named graph is removed from the database and queried
against the rest; with --query-file the database is used whole and the
query graph is the first graph of the given file (use `-` to read it from
stdin, so scripts can pipe queries). With --prefilter it runs
the filter-and-verify pipeline: cheap lower bounds prune candidates before
the exact solvers, with identical results (the report then includes
pruning statistics). With --index it also consults a pivot index built by
`gss index build`, skipping whole candidate partitions up front — build
with --exclude NAME when querying by --query-name so the index matches the
database the query actually scans. --plan forces one evaluation strategy
(all strategies return identical answers); the default `auto` picks from
the database size and index availability, and the report names the
strategy that actually ran. `skyband` accepts the same pruning flags: the
k-skyband now runs through the same staged executor, excluding candidates
whose lower bounds already have k verified dominators without solving them.

`serve` runs the long-lived query server (newline-delimited JSON protocol,
result caching, admission control — see the gss-server crate docs). The
served database is live: `client` mutation flags (--insert-file, --remove,
--update … --update-file) apply atomic batches that bump the store epoch,
maintain the pivot index incrementally (--staleness-budget caps drift
before a partial rebuild), and invalidate cached results. `client` also
does one-shot queries, stats, graceful shutdown, and a --bench load
generator reporting queries/sec and latency percentiles.

With --data-dir the served store is durable: every acknowledged mutation
is appended to a checksummed write-ahead log and fsynced per --fsync
before the ack, periodic snapshot checkpoints (--checkpoint-every) bound
replay time, and a restart from the same directory recovers exactly the
acknowledged mutations (torn tails are truncated, ambiguous logs refused).
`wal inspect` prints segments, record counts, checksum status and the
recoverable epoch range of such a directory. `client --retry N` retries
transient failures and backpressure with exponential backoff and jitter;
retried mutations carry a mutation_id the durable server deduplicates, so
a resend never double-applies.
"
    .to_owned()
}

/// Loads `--db`, sniffing the format: the compact binary format (made by
/// `gss pack`) is adopted without parsing; anything else is `t/v/e` text.
pub(crate) fn load_db(args: &Args) -> Result<GraphDatabase, ArgError> {
    let path = args.require("db")?;
    let data =
        std::fs::read(path).map_err(|e| ArgError(format!("cannot read --db {path}: {e}")))?;
    if GraphDatabase::is_binary(&data) {
        return GraphDatabase::load_bytes(&data)
            .map_err(|e| ArgError(format!("corrupt binary database {path}: {e}")));
    }
    let text = String::from_utf8(data)
        .map_err(|e| ArgError(format!("--db {path} is neither binary nor UTF-8 text: {e}")))?;
    GraphDatabase::from_text(&text).map_err(|e| ArgError(format!("parse error in {path}: {e}")))
}

/// Splits off the named query graph, returning the remaining database and
/// the query.
pub(crate) fn split_query(
    db: GraphDatabase,
    name: &str,
) -> Result<(GraphDatabase, Graph), ArgError> {
    let id = db
        .find_by_name(name)
        .ok_or_else(|| ArgError(format!("no graph named {name:?} in the database")))?;
    let mut rest = GraphDatabase::from_parts(db.vocab().clone(), Vec::new());
    let mut query = None;
    for (gid, g) in db.iter() {
        if gid == id {
            query = Some(g.clone());
        } else {
            rest.push(g.clone());
        }
    }
    Ok((rest, query.expect("id was found")))
}

pub(crate) fn solver_config(args: &Args) -> SolverConfig {
    if args.flag("approx") {
        SolverConfig {
            ged: GedMode::Bipartite,
            mcs: McsMode::Greedy,
        }
    } else {
        SolverConfig::default()
    }
}

/// Parses `--plan` (default `auto`) and validates it against the loaded
/// index: the indexed plan without `--index` would panic deep in the
/// engine, so fail with a usable message here instead.
pub(crate) fn parse_plan(args: &Args, has_index: bool) -> Result<Plan, ArgError> {
    let plan = match args.get("plan") {
        None => Plan::Auto,
        Some(token) => Plan::parse(token).ok_or_else(|| {
            ArgError(format!(
                "unknown --plan {token:?} (auto|naive|prefilter|indexed|sharded)"
            ))
        })?,
    };
    if plan == Plan::Indexed && !has_index {
        return Err(ArgError(
            "--plan indexed requires --index IDX (build one with `gss index build`)".to_owned(),
        ));
    }
    Ok(plan)
}

/// [`parse_plan`] plus the `--shards` convenience: asking for more than
/// one shard without naming a plan means the sharded plan.
pub(crate) fn parse_plan_sharded(args: &Args, has_index: bool) -> Result<Plan, ArgError> {
    let plan = parse_plan(args, has_index)?;
    if args.get("plan").is_none() && args.get_parsed_or("shards", 1usize)? > 1 {
        return Ok(Plan::Sharded);
    }
    Ok(plan)
}

/// The one-line plan report shown by `query` and `skyband`.
fn plan_line(requested: Plan, resolved: gss_core::ResolvedPlan) -> String {
    if requested == Plan::Auto {
        format!("plan: {} (selected by auto)", resolved.name())
    } else {
        format!("plan: {}", resolved.name())
    }
}

/// The pruning-statistics lines shown by `query` and `skyband` whenever
/// the filter-and-verify pipeline ran.
fn write_prune_stats(out: &mut String, stats: &PruneStats) {
    let _ = writeln!(
        out,
        "\nprefilter: {} verified, {} pruned, {} short-circuited of {} candidates ({:.0}% skipped exact solving)",
        stats.verified,
        stats.pruned,
        stats.short_circuited,
        stats.candidates,
        stats.pruning_rate() * 100.0
    );
    if stats.index_partitions > 0 {
        let _ = writeln!(
            out,
            "index: {} of {} partitions skipped wholesale — {} candidates ({:.0}%) never \
             reached candidate filtering; {} pivot probes",
            stats.index_partitions_skipped,
            stats.index_partitions,
            stats.index_skipped,
            stats.index_skip_rate() * 100.0,
            stats.pivot_probes
        );
    }
}

fn parse_measure(token: &str) -> Result<MeasureKind, ArgError> {
    match token {
        "ed" => Ok(MeasureKind::EditDistance),
        "ned" => Ok(MeasureKind::NormalizedEditDistance),
        "mcs" => Ok(MeasureKind::Mcs),
        "gu" => Ok(MeasureKind::Gu),
        other => Err(ArgError(format!(
            "unknown measure {other:?} (ed|ned|mcs|gu)"
        ))),
    }
}

/// Reads a text input that is either a file path or `-` for stdin (so
/// scripts and the serving client can pipe queries without temp files).
pub(crate) fn read_text_input(path: &str, flag: &str) -> Result<String, ArgError> {
    if path == "-" {
        use std::io::Read as _;
        let mut text = String::new();
        std::io::stdin()
            .read_to_string(&mut text)
            .map_err(|e| ArgError(format!("cannot read stdin for {flag}: {e}")))?;
        Ok(text)
    } else {
        std::fs::read_to_string(path)
            .map_err(|e| ArgError(format!("cannot read {flag} {path}: {e}")))
    }
}

/// Resolves the query graph: `--query-name` splits it out of the database,
/// `--query-file` reads it from its own file, or from stdin when the path
/// is `-` (database used whole in both file cases).
fn resolve_query(db: GraphDatabase, args: &Args) -> Result<(GraphDatabase, Graph), ArgError> {
    match (args.get("query-name"), args.get("query-file")) {
        (Some(name), None) => split_query(db, name),
        (None, Some(path)) => {
            let text = read_text_input(path, "--query-file")?;
            let mut db = db;
            let graphs = gss_graph::format::parse_database(&text, db.vocab_mut())
                .map_err(|e| ArgError(format!("parse error in {path}: {e}")))?;
            let q = graphs
                .into_iter()
                .next()
                .ok_or_else(|| ArgError(format!("--query-file {path} contains no graph")))?;
            Ok((db, q))
        }
        _ => Err(ArgError(
            "provide exactly one of --query-name or --query-file".to_owned(),
        )),
    }
}

/// Loads and validates the pivot index named by `--index`, if any.
pub(crate) fn load_index(
    db: &GraphDatabase,
    args: &Args,
) -> Result<Option<Arc<PivotIndex>>, ArgError> {
    let Some(path) = args.get("index") else {
        return Ok(None);
    };
    let index = PivotIndex::load(path).map_err(|e| ArgError(format!("--index {path}: {e}")))?;
    index.validate(db).map_err(|e| {
        ArgError(format!(
            "--index {path}: {e} (with --query-name, build the index with --exclude NAME \
             so it covers the database the query scans)"
        ))
    })?;
    Ok(Some(Arc::new(index)))
}

/// `gss query` — similarity skyline with optional diversity refinement.
pub fn query(args: &Args) -> Result<String, ArgError> {
    args.reject_unknown(&[
        "db",
        "query-name",
        "query-file",
        "refine",
        "approx",
        "prefilter",
        "index",
        "plan",
        "shards",
        "threads",
        "algo",
        "format",
    ])?;
    let db = load_db(args)?;
    let (db, q) = resolve_query(db, args)?;
    let index = load_index(&db, args)?;
    let plan = parse_plan_sharded(args, index.is_some())?;
    let shards = args.get_parsed_or("shards", 1usize)?.max(1);
    let threads = args.get_parsed_or("threads", 1usize)?;
    let algo = match args.get_or("algo", "bnl") {
        "naive" => gss_skyline::Algorithm::Naive,
        "bnl" => gss_skyline::Algorithm::Bnl,
        "sfs" => gss_skyline::Algorithm::Sfs,
        other => {
            return Err(ArgError(format!(
                "unknown --algo {other:?} (naive|bnl|sfs)"
            )))
        }
    };
    let options = QueryOptions {
        solvers: solver_config(args),
        threads,
        skyline_algorithm: algo,
        plan,
        shards,
        prefilter: args.flag("prefilter"),
        index: index.map(|i| i as Arc<dyn gss_core::QueryIndex>),
        ..Default::default()
    };
    let result = graph_similarity_skyline(&db, &q, &options);

    match args.get_or("format", "text") {
        "json" => return Ok(gss_core::to_json(&db, &result)),
        "text" => {}
        other => return Err(ArgError(format!("unknown --format {other:?} (text|json)"))),
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "database: {} graphs; query: {} ({} vertices, {} edges)",
        db.len(),
        q.name(),
        q.order(),
        q.size()
    );
    let _ = writeln!(out, "{}", plan_line(plan, result.plan));
    let _ = writeln!(
        out,
        "\n{:<20} {:>8} {:>8} {:>8}  skyline",
        "graph", "DistEd", "DistMcs", "DistGu"
    );
    for (i, gcs) in result.gcs.iter().enumerate() {
        let id = GraphId(i);
        let _ = writeln!(
            out,
            "{:<20} {:>8.2} {:>8.3} {:>8.3}  {}",
            db.get(id).name(),
            gcs.values[0],
            gcs.values[1],
            gcs.values[2],
            if result.contains(id) {
                "yes"
            } else if !result.is_exact(id) {
                "pruned (bounds shown)"
            } else {
                ""
            }
        );
    }
    let _ = writeln!(
        out,
        "\nsimilarity skyline ({} members):",
        result.skyline.len()
    );
    for id in &result.skyline {
        let _ = writeln!(out, "  {}", db.get(*id).name());
    }
    for w in &result.dominated {
        let _ = writeln!(
            out,
            "  [{} dominated by {}]",
            db.get(w.graph).name(),
            db.get(w.dominator).name()
        );
    }
    if let Some(stats) = &result.pruning {
        write_prune_stats(&mut out, stats);
    }

    if let Some(k) = args.get("refine") {
        let k: usize = k
            .parse()
            .map_err(|_| ArgError(format!("--refine needs a number, got {k:?}")))?;
        match refine_skyline(&db, &result.skyline, k, &RefineOptions::default()) {
            Ok(refined) => {
                let _ = writeln!(out, "\nmost diverse {k}-subset:");
                for id in &refined.selected {
                    let _ = writeln!(out, "  {}", db.get(*id).name());
                }
                if refined.evaluation.tied.len() > 1 {
                    let _ = writeln!(
                        out,
                        "  ({} candidates tied on rank-sum)",
                        refined.evaluation.tied.len()
                    );
                }
            }
            Err(e) => {
                let _ = writeln!(out, "\nrefinement skipped: {e}");
            }
        }
    }
    Ok(out)
}

/// `gss measure` — all measures plus the optimal edit script for one pair.
pub fn measure(args: &Args) -> Result<String, ArgError> {
    args.reject_unknown(&["db", "a", "b"])?;
    let db = load_db(args)?;
    let name_a = args.require("a")?;
    let name_b = args.require("b")?;
    let a_id = db
        .find_by_name(name_a)
        .ok_or_else(|| ArgError(format!("no graph named {name_a:?}")))?;
    let b_id = db
        .find_by_name(name_b)
        .ok_or_else(|| ArgError(format!("no graph named {name_b:?}")))?;
    let (a, b) = (db.get(a_id), db.get(b_id));

    let cost = CostModel::uniform();
    let warm = bipartite_ged(a, b, &cost);
    let ged = exact_ged(
        a,
        b,
        &GedOptions {
            cost,
            warm_start: Some(warm.mapping),
            node_limit: None,
        },
    );
    let p = gss_core::compute_primitives(a, b, &SolverConfig::default());

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} (|g|={}) vs {} (|g|={})",
        a.name(),
        a.size(),
        b.name(),
        b.size()
    );
    let _ = writeln!(out, "  DistEd    = {}", ged.cost);
    let _ = writeln!(out, "  |mcs|     = {}", p.mcs_edges);
    let _ = writeln!(
        out,
        "  DistN-Ed  = {:.4}",
        MeasureKind::NormalizedEditDistance.from_primitives(&p)
    );
    let _ = writeln!(
        out,
        "  DistMcs   = {:.4}",
        MeasureKind::Mcs.from_primitives(&p)
    );
    let _ = writeln!(
        out,
        "  DistGu    = {:.4}",
        MeasureKind::Gu.from_primitives(&p)
    );
    let _ = writeln!(out, "  isomorphic: {}", gss_iso::are_isomorphic(a, b));
    let _ = writeln!(
        out,
        "optimal edit script ({} ops):",
        edit_path_for_mapping(a, b, &ged.mapping).len()
    );
    for op in edit_path_for_mapping(a, b, &ged.mapping) {
        let _ = writeln!(out, "  - {}", op.kind());
    }
    Ok(out)
}

/// `gss skyband` — the k-skyband relaxation of the similarity skyline:
/// graphs dominated by fewer than `k` others (`k = 1` is the skyline).
/// Runs through the staged executor, so the pruning flags of `gss query`
/// (`--prefilter`, `--index`, `--plan`) apply here too, with identical
/// membership and a pruning report when the pipeline ran.
pub fn skyband(args: &Args) -> Result<String, ArgError> {
    args.reject_unknown(&[
        "db",
        "query-name",
        "k",
        "approx",
        "threads",
        "prefilter",
        "index",
        "plan",
        "shards",
    ])?;
    let db = load_db(args)?;
    let (db, q) = split_query(db, args.require("query-name")?)?;
    let index = load_index(&db, args)?;
    let plan = parse_plan_sharded(args, index.is_some())?;
    let shards = args.get_parsed_or("shards", 1usize)?.max(1);
    let k = args.get_parsed_or("k", 2usize)?;
    let threads = args.get_parsed_or("threads", 1usize)?;
    let options = QueryOptions {
        solvers: solver_config(args),
        threads,
        plan,
        shards,
        prefilter: args.flag("prefilter"),
        index: index.map(|i| i as Arc<dyn gss_core::QueryIndex>),
        ..Default::default()
    };
    let band = graph_similarity_skyband(&db, &q, k, &options);
    let mut out = String::new();
    let _ = writeln!(out, "{}", plan_line(plan, band.plan));
    let _ = writeln!(out, "{k}-skyband ({} members):", band.members.len());
    for id in &band.members {
        let _ = writeln!(out, "  {}", db.get(*id).name());
    }
    if let Some(stats) = &band.pruning {
        write_prune_stats(&mut out, stats);
    }
    Ok(out)
}

/// `gss topk` — single-measure baseline retrieval.
pub fn topk(args: &Args) -> Result<String, ArgError> {
    args.reject_unknown(&["db", "query-name", "measure", "k", "approx", "threads"])?;
    let db = load_db(args)?;
    let (db, q) = split_query(db, args.require("query-name")?)?;
    let measure = parse_measure(args.get_or("measure", "ed"))?;
    let k = args.get_parsed_or("k", 3usize)?;
    let threads = args.get_parsed_or("threads", 1usize)?;
    let scored = top_k_by_measure(&db, &q, measure, k, &solver_config(args), threads);
    let mut out = String::new();
    let _ = writeln!(out, "top-{k} by {}:", measure.name());
    for s in scored {
        let _ = writeln!(out, "  {:<20} {:.4}", db.get(s.id).name(), s.distance);
    }
    Ok(out)
}

/// `gss index build|stats` — build, persist and inspect the pivot index.
pub fn index(args: &Args) -> Result<String, ArgError> {
    match args.positional().get(1).map(String::as_str) {
        Some("build") => index_build(args),
        Some("stats") => index_stats(args),
        other => Err(ArgError(format!(
            "unknown index subcommand {other:?} (build|stats)"
        ))),
    }
}

fn index_build(args: &Args) -> Result<String, ArgError> {
    args.reject_unknown(&["db", "out", "pivots", "rings", "exclude"])?;
    let mut db = load_db(args)?;
    if let Some(name) = args.get("exclude") {
        let (rest, _query) = split_query(db, name)?;
        db = rest;
    }
    let config = PivotIndexConfig {
        pivots: args.get_parsed_or("pivots", PivotIndexConfig::default().pivots)?,
        rings: args.get_parsed_or("rings", PivotIndexConfig::default().rings)?,
    };
    let out_path = args.require("out")?;
    let start = std::time::Instant::now();
    let index = PivotIndex::build(&db, &config);
    let built = start.elapsed();
    let bytes = index.to_bytes();
    std::fs::write(out_path, &bytes)
        .map_err(|e| ArgError(format!("cannot write --out {out_path}: {e}")))?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "built {} in {:.1} ms",
        gss_core::QueryIndex::describe(&index),
        built.as_secs_f64() * 1e3
    );
    let _ = writeln!(
        out,
        "wrote {out_path} ({} bytes, database fingerprint {:016x})",
        bytes.len(),
        index.database_fingerprint()
    );
    Ok(out)
}

fn index_stats(args: &Args) -> Result<String, ArgError> {
    args.reject_unknown(&["index", "db"])?;
    let path = args.require("index")?;
    let index = PivotIndex::load(path).map_err(|e| ArgError(format!("--index {path}: {e}")))?;
    let mut out = String::new();
    let _ = writeln!(out, "{}", gss_core::QueryIndex::describe(&index));
    let _ = writeln!(
        out,
        "config: {} pivots requested, {} rings per pivot cell",
        index.config().pivots,
        index.config().rings
    );
    let _ = writeln!(
        out,
        "pivot graph ids: {:?}",
        index.pivots().iter().map(|g| g.index()).collect::<Vec<_>>()
    );
    let _ = writeln!(
        out,
        "database fingerprint: {:016x}",
        index.database_fingerprint()
    );
    if args.get("db").is_some() {
        let load_start = std::time::Instant::now();
        let db = load_db(args)?;
        let load_ms = load_start.elapsed().as_secs_f64() * 1e3;
        match index.validate(&db) {
            Ok(()) => {
                let _ = writeln!(out, "database match: ok ({} graphs)", db.len());
            }
            Err(e) => {
                let _ = writeln!(out, "database match: MISMATCH — {e}");
            }
        }
        let _ = writeln!(out, "database load: {load_ms:.1} ms");
        out.push_str(&memory_report(&db.memory_stats()));
    }
    Ok(out)
}

/// Renders one memory-stats block as indented text (shared by `pack`,
/// `index stats` and the served `stats` verb's client rendering).
pub(crate) fn memory_report(mem: &gss_core::database::MemoryStats) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "memory:");
    let _ = writeln!(
        out,
        "  graphs: {} ({} arena-backed, {} materialized)",
        mem.graphs, mem.arena_graphs, mem.materialized
    );
    let _ = writeln!(
        out,
        "  arena: {} bytes ({:.1} B/graph), stats columns {} bytes",
        mem.arena_bytes,
        mem.arena_bytes_per_graph(),
        mem.stats_columns_bytes
    );
    let _ = writeln!(
        out,
        "  pointer-rich estimate: {} bytes ({:.1} B/graph)",
        mem.pointer_rich_bytes,
        mem.pointer_rich_bytes_per_graph()
    );
    let _ = writeln!(
        out,
        "  label pool: {} entries, {} bytes",
        mem.pool_entries, mem.pool_bytes
    );
    out
}

/// `gss pack` — convert a database (either format) into the compact binary
/// format: interned CSR arenas plus precomputed stats columns under one
/// checksummed frame. The written file is verified by reloading it and
/// comparing fingerprints before this command reports success.
pub fn pack(args: &Args) -> Result<String, ArgError> {
    args.reject_unknown(&["db", "out"])?;
    let out_path = args.require("out")?.to_owned();
    let parse_start = std::time::Instant::now();
    let mut db = load_db(args)?;
    let parsed_ms = parse_start.elapsed().as_secs_f64() * 1e3;
    db.compact();
    let bytes = db.save_bytes();
    std::fs::write(&out_path, &bytes)
        .map_err(|e| ArgError(format!("cannot write --out {out_path}: {e}")))?;

    let reload_start = std::time::Instant::now();
    let reloaded = GraphDatabase::load_bytes(&bytes)
        .map_err(|e| ArgError(format!("packed file failed verification: {e}")))?;
    let reload_ms = reload_start.elapsed().as_secs_f64() * 1e3;
    if reloaded.fingerprint() != db.fingerprint() {
        return Err(ArgError(
            "packed file failed verification: fingerprint mismatch".to_owned(),
        ));
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "packed {} graphs into {out_path} ({} bytes)",
        db.len(),
        bytes.len()
    );
    let _ = writeln!(
        out,
        "load: source {parsed_ms:.1} ms, packed {reload_ms:.1} ms (zero-parse)"
    );
    out.push_str(&memory_report(&db.memory_stats()));
    Ok(out)
}

/// `gss generate` — emit a synthetic workload in the text format. The query
/// graph appears first, named `query`.
pub fn generate(args: &Args) -> Result<String, ArgError> {
    args.reject_unknown(&["kind", "count", "vertices", "seed", "related", "max-edits"])?;
    let kind = match args.get_or("kind", "molecule") {
        "molecule" => WorkloadKind::Molecule,
        "uniform" => WorkloadKind::Uniform,
        other => {
            return Err(ArgError(format!(
                "unknown --kind {other:?} (molecule|uniform)"
            )))
        }
    };
    let cfg = WorkloadConfig {
        kind,
        database_size: args.get_parsed_or("count", 12usize)?,
        graph_vertices: args.get_parsed_or("vertices", 7usize)?,
        related_fraction: args.get_parsed_or("related", 0.5f64)?,
        max_edits: args.get_parsed_or("max-edits", 4usize)?,
        seed: args.get_parsed_or("seed", 0xDA7Au64)?,
    };
    let w = Workload::generate(&cfg);
    let mut all = vec![w.query.clone()];
    all.extend(w.graphs.iter().cloned());
    Ok(gss_graph::format::write_database(&all, &w.vocab))
}

/// `gss convert` — Graphviz DOT for one graph or the whole database.
pub fn convert(args: &Args) -> Result<String, ArgError> {
    args.reject_unknown(&["db", "graph"])?;
    let db = load_db(args)?;
    let mut out = String::new();
    match args.get("graph") {
        Some(name) => {
            let id = db
                .find_by_name(name)
                .ok_or_else(|| ArgError(format!("no graph named {name:?}")))?;
            out.push_str(&to_dot(db.get(id), db.vocab()));
        }
        None => {
            for (_, g) in db.iter() {
                out.push_str(&to_dot(g, db.vocab()));
                out.push('\n');
            }
        }
    }
    Ok(out)
}

/// `gss paper` — the headline reproduction summary (the full table-by-table
/// report lives in `cargo run -p gss-bench --bin tables`).
pub fn paper() -> String {
    use gss_datasets::paper::{expected, figure3_database};
    let data = figure3_database();
    let db = GraphDatabase::from_parts(data.vocab, data.graphs);
    let r = graph_similarity_skyline(&db, &data.query, &QueryOptions::default());
    let members: Vec<GraphId> = r.skyline.clone();
    let refined = refine_skyline(&db, &members, 2, &RefineOptions::default());

    let mut out = String::new();
    let sky: Vec<String> = r
        .skyline
        .iter()
        .map(|g| format!("g{}", g.index() + 1))
        .collect();
    let _ = writeln!(out, "GSS(D, q)     = {sky:?}   (paper: [g1, g4, g5, g7])");
    let ok = r.skyline.iter().map(|g| g.index()).collect::<Vec<_>>() == expected::SKYLINE.to_vec();
    let _ = writeln!(
        out,
        "skyline match = {}",
        if ok { "exact" } else { "DIFFERS" }
    );
    if let Ok(refined) = refined {
        let sel: Vec<String> = refined
            .selected
            .iter()
            .map(|g| format!("g{}", g.index() + 1))
            .collect();
        let _ = writeln!(out, "refined 𝕊     = {sel:?}   (paper: [g1, g4])");
    }
    let _ = writeln!(out, "full report: cargo run -p gss-bench --bin tables");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_temp_db() -> (tempdir::TempPath, String) {
        // Small self-contained db: a query-like path and two variants.
        let text = "\
t needle
v 0 A
v 1 B
v 2 C
e 0 1 -
e 1 2 -

t close
v 0 A
v 1 B
v 2 C
e 0 1 -
e 1 2 =

t far
v 0 X
v 1 Y
e 0 1 -
";
        let path = tempdir::write(text);
        let p = path.as_str().to_owned();
        (path, p)
    }

    /// Minimal temp-file helper (std only).
    mod tempdir {
        use std::path::PathBuf;
        use std::sync::atomic::{AtomicU64, Ordering};

        static COUNTER: AtomicU64 = AtomicU64::new(0);

        pub struct TempPath(PathBuf);
        impl TempPath {
            pub fn as_str(&self) -> &str {
                self.0.to_str().expect("utf-8 temp path")
            }
        }
        impl Drop for TempPath {
            fn drop(&mut self) {
                let _ = std::fs::remove_file(&self.0);
            }
        }

        pub fn write(content: &str) -> TempPath {
            let n = COUNTER.fetch_add(1, Ordering::SeqCst);
            let mut p = std::env::temp_dir();
            p.push(format!("gss-cli-test-{}-{n}.gdb", std::process::id()));
            std::fs::write(&p, content).expect("write temp db");
            TempPath(p)
        }
    }

    fn args(words: &[&str]) -> Args {
        Args::parse(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn query_reports_skyline() {
        let (_keep, path) = write_temp_db();
        let out = query(&args(&["--db", &path, "--query-name", "needle"])).unwrap();
        assert!(out.contains("database: 2 graphs"));
        assert!(out.contains("close"));
        assert!(out.contains("similarity skyline"));
        // `close` (1 edit away) must be in the skyline; `far` is dominated.
        assert!(out.contains("[far dominated by close]"), "{out}");
    }

    #[test]
    fn query_with_approx_and_threads() {
        let (_keep, path) = write_temp_db();
        let out = query(&args(&[
            "--db",
            &path,
            "--query-name",
            "needle",
            "--approx",
            "--threads",
            "2",
            "--algo",
            "sfs",
        ]))
        .unwrap();
        assert!(out.contains("similarity skyline"));
    }

    #[test]
    fn measure_prints_all_values() {
        let (_keep, path) = write_temp_db();
        let out = measure(&args(&["--db", &path, "--a", "needle", "--b", "close"])).unwrap();
        assert!(out.contains("DistEd    = 1"));
        assert!(out.contains("|mcs|     = 1"));
        assert!(out.contains("edge-relabel"));
        assert!(out.contains("isomorphic: false"));
    }

    #[test]
    fn topk_ranks_by_measure() {
        let (_keep, path) = write_temp_db();
        let out = topk(&args(&[
            "--db",
            &path,
            "--query-name",
            "needle",
            "--measure",
            "ed",
            "--k",
            "2",
        ]))
        .unwrap();
        let close_pos = out.find("close").expect("close listed");
        let far_pos = out.find("far").expect("far listed");
        assert!(close_pos < far_pos, "close must rank before far:\n{out}");
    }

    #[test]
    fn generate_emits_parseable_database() {
        let out = generate(&args(&[
            "--kind", "molecule", "--count", "5", "--seed", "9",
        ]))
        .unwrap();
        let db = GraphDatabase::from_text(&out).unwrap();
        assert_eq!(db.len(), 6, "query + 5 graphs");
        assert!(db.find_by_name("query").is_some());
        // Determinism.
        let again = generate(&args(&[
            "--kind", "molecule", "--count", "5", "--seed", "9",
        ]))
        .unwrap();
        assert_eq!(out, again);
    }

    #[test]
    fn pack_round_trips_and_binary_db_works_everywhere() {
        let (_keep, path) = write_temp_db();
        let packed = std::env::temp_dir().join(format!("gss-pack-test-{}.gsb", std::process::id()));
        let packed_str = packed.to_str().unwrap().to_owned();

        let report = pack(&args(&["--db", &path, "--out", &packed_str])).unwrap();
        assert!(report.contains("packed 3 graphs"), "{report}");
        assert!(report.contains("memory:"), "{report}");
        assert!(report.contains("arena-backed"), "{report}");

        // The packed file answers the same query as the text original.
        let from_text = query(&args(&["--db", &path, "--query-name", "needle"])).unwrap();
        let from_binary = query(&args(&["--db", &packed_str, "--query-name", "needle"])).unwrap();
        assert_eq!(from_text, from_binary);

        // Corruption is refused, not misparsed.
        let mut bytes = std::fs::read(&packed).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&packed, &bytes).unwrap();
        let err = query(&args(&["--db", &packed_str, "--query-name", "needle"])).unwrap_err();
        assert!(err.to_string().contains("corrupt"), "{err}");
        std::fs::remove_file(&packed).unwrap();
    }

    #[test]
    fn convert_produces_dot() {
        let (_keep, path) = write_temp_db();
        let one = convert(&args(&["--db", &path, "--graph", "needle"])).unwrap();
        assert!(one.starts_with("graph needle {"));
        let all = convert(&args(&["--db", &path])).unwrap();
        assert_eq!(all.matches("graph ").count(), 3);
    }

    #[test]
    fn query_json_format() {
        let (_keep, path) = write_temp_db();
        let out = query(&args(&[
            "--db",
            &path,
            "--query-name",
            "needle",
            "--format",
            "json",
        ]))
        .unwrap();
        assert!(out.contains("\"measures\": [\"DistEd\", \"DistMcs\", \"DistGu\"]"));
        assert!(out.contains("\"skyline\": [\"close\"]"));
        assert!(query(&args(&[
            "--db",
            &path,
            "--query-name",
            "needle",
            "--format",
            "yaml"
        ]))
        .is_err());
    }

    #[test]
    fn skyband_relaxes_the_skyline() {
        let (_keep, path) = write_temp_db();
        let band1 = skyband(&args(&[
            "--db",
            &path,
            "--query-name",
            "needle",
            "--k",
            "1",
        ]))
        .unwrap();
        let band9 = skyband(&args(&[
            "--db",
            &path,
            "--query-name",
            "needle",
            "--k",
            "9",
        ]))
        .unwrap();
        assert!(band1.contains("close"));
        assert!(
            !band1.contains("far"),
            "k=1 skyband is the skyline:\n{band1}"
        );
        assert!(band9.contains("far"), "large k keeps everything");
    }

    #[test]
    fn query_with_prefilter_reports_stats_and_same_skyline() {
        let (_keep, path) = write_temp_db();
        let naive = query(&args(&["--db", &path, "--query-name", "needle"])).unwrap();
        let pruned = query(&args(&[
            "--db",
            &path,
            "--query-name",
            "needle",
            "--prefilter",
        ]))
        .unwrap();
        assert!(pruned.contains("prefilter:"), "{pruned}");
        assert!(pruned.contains("candidates"), "{pruned}");
        assert!(
            !naive.contains("prefilter:"),
            "naive runs must not print stats"
        );
        // Same skyline and witness lines in both modes.
        assert!(pruned.contains("[far dominated by close]"), "{pruned}");
        let sky = |s: &str| {
            s.lines()
                .skip_while(|l| !l.starts_with("similarity skyline"))
                .take(2)
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(sky(&naive), sky(&pruned));
        // JSON gains the pruning object only with --prefilter.
        let json = query(&args(&[
            "--db",
            &path,
            "--query-name",
            "needle",
            "--prefilter",
            "--format",
            "json",
        ]))
        .unwrap();
        assert!(json.contains("\"pruning\": {"), "{json}");
        assert!(json.contains("\"exact\":"), "{json}");
        let naive_json = query(&args(&[
            "--db",
            &path,
            "--query-name",
            "needle",
            "--format",
            "json",
        ]))
        .unwrap();
        assert!(!naive_json.contains("\"pruning\""));
    }

    #[test]
    fn index_build_stats_and_indexed_query() {
        let (_keep, path) = write_temp_db();
        let idx_path = {
            let n = std::process::id();
            std::env::temp_dir()
                .join(format!("gss-cli-test-{n}-roundtrip.gsi"))
                .to_str()
                .unwrap()
                .to_owned()
        };

        // Build excluding the query graph, so the index matches the
        // database `gss query --query-name needle` actually scans.
        let built = index(&args(&[
            "index",
            "build",
            "--db",
            &path,
            "--out",
            &idx_path,
            "--exclude",
            "needle",
            "--pivots",
            "2",
            "--rings",
            "2",
        ]))
        .unwrap();
        assert!(built.contains("pivot index"), "{built}");
        assert!(built.contains("wrote"), "{built}");

        let stats = index(&args(&["index", "stats", "--index", &idx_path])).unwrap();
        assert!(stats.contains("pivot index"), "{stats}");
        assert!(stats.contains("database fingerprint"), "{stats}");

        // Indexed query: same skyline as the plain query, plus index stats.
        let naive = query(&args(&["--db", &path, "--query-name", "needle"])).unwrap();
        let indexed = query(&args(&[
            "--db",
            &path,
            "--query-name",
            "needle",
            "--index",
            &idx_path,
        ]))
        .unwrap();
        assert!(indexed.contains("index: "), "{indexed}");
        assert!(indexed.contains("pivot probes"), "{indexed}");
        let sky = |s: &str| {
            s.lines()
                .skip_while(|l| !l.starts_with("similarity skyline"))
                .take(2)
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(sky(&naive), sky(&indexed));

        // JSON explain output carries the index fields.
        let json = query(&args(&[
            "--db",
            &path,
            "--query-name",
            "needle",
            "--index",
            &idx_path,
            "--format",
            "json",
        ]))
        .unwrap();
        assert!(json.contains("\"index_skip_rate\""), "{json}");
        assert!(json.contains("\"pivot_probes\""), "{json}");

        // Without --exclude the index covers the whole file and must be
        // rejected against the split database…
        let full_idx = format!("{idx_path}.full");
        index(&args(&[
            "index", "build", "--db", &path, "--out", &full_idx,
        ]))
        .unwrap();
        let err = query(&args(&[
            "--db",
            &path,
            "--query-name",
            "needle",
            "--index",
            &full_idx,
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("different database"), "{err}");

        // …but works with --query-file, which keeps the database whole.
        let qfile = format!("{idx_path}.query");
        std::fs::write(&qfile, "t q\nv 0 A\nv 1 B\ne 0 1 -\n").unwrap();
        let by_file = query(&args(&[
            "--db",
            &path,
            "--query-file",
            &qfile,
            "--index",
            &full_idx,
        ]))
        .unwrap();
        assert!(by_file.contains("database: 3 graphs"), "{by_file}");
        assert!(by_file.contains("index: "), "{by_file}");

        for p in [&idx_path, &full_idx, &qfile] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn query_reports_the_plan_and_accepts_plan_flags() {
        let (_keep, path) = write_temp_db();
        let auto = query(&args(&["--db", &path, "--query-name", "needle"])).unwrap();
        assert!(auto.contains("plan: naive (selected by auto)"), "{auto}");
        let forced = query(&args(&[
            "--db",
            &path,
            "--query-name",
            "needle",
            "--plan",
            "prefilter",
        ]))
        .unwrap();
        assert!(forced.contains("plan: prefilter\n"), "{forced}");
        assert!(forced.contains("prefilter:"), "{forced}");
        // Same skyline regardless of plan.
        let sky = |s: &str| {
            s.lines()
                .skip_while(|l| !l.starts_with("similarity skyline"))
                .take(2)
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(sky(&auto), sky(&forced));
        // JSON names the resolved plan.
        let json = query(&args(&[
            "--db",
            &path,
            "--query-name",
            "needle",
            "--format",
            "json",
        ]))
        .unwrap();
        assert!(json.contains("\"plan\": \"naive\""), "{json}");
        // Bad plans fail loudly; indexed without an index is refused.
        assert!(query(&args(&[
            "--db",
            &path,
            "--query-name",
            "needle",
            "--plan",
            "quantum"
        ]))
        .is_err());
        let err = query(&args(&[
            "--db",
            &path,
            "--query-name",
            "needle",
            "--plan",
            "indexed",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--index"), "{err}");
    }

    #[test]
    fn skyband_supports_pruning_flags_and_reports_stats() {
        let (_keep, path) = write_temp_db();
        let base = skyband(&args(&[
            "--db",
            &path,
            "--query-name",
            "needle",
            "--k",
            "1",
        ]))
        .unwrap();
        assert!(base.contains("plan: naive (selected by auto)"), "{base}");
        assert!(!base.contains("prefilter:"), "{base}");
        let pruned = skyband(&args(&[
            "--db",
            &path,
            "--query-name",
            "needle",
            "--k",
            "1",
            "--prefilter",
        ]))
        .unwrap();
        assert!(pruned.contains("plan: prefilter"), "{pruned}");
        assert!(pruned.contains("prefilter:"), "{pruned}");
        assert!(pruned.contains("candidates"), "{pruned}");
        // Same members in both modes.
        let members = |s: &str| {
            s.lines()
                .skip_while(|l| !l.contains("-skyband ("))
                .collect::<Vec<_>>()
                .join("\n")
        };
        let strip_stats = |s: String| {
            s.split("\nprefilter:")
                .next()
                .unwrap()
                .trim_end()
                .to_owned()
        };
        assert_eq!(members(&base).trim_end(), strip_stats(members(&pruned)));

        // An index built with --exclude works for the skyband too.
        let idx_path = std::env::temp_dir()
            .join(format!("gss-cli-test-{}-skyband.gsi", std::process::id()))
            .to_str()
            .unwrap()
            .to_owned();
        index(&args(&[
            "index",
            "build",
            "--db",
            &path,
            "--out",
            &idx_path,
            "--exclude",
            "needle",
            "--pivots",
            "2",
            "--rings",
            "2",
        ]))
        .unwrap();
        let indexed = skyband(&args(&[
            "--db",
            &path,
            "--query-name",
            "needle",
            "--k",
            "1",
            "--index",
            &idx_path,
        ]))
        .unwrap();
        assert!(indexed.contains("plan: indexed"), "{indexed}");
        assert!(indexed.contains("pivot probes"), "{indexed}");
        assert_eq!(
            members(&base).trim_end(),
            strip_stats(members(&indexed)),
            "indexed skyband must keep membership"
        );
        let _ = std::fs::remove_file(&idx_path);
    }

    #[test]
    fn query_rejects_ambiguous_query_source() {
        let (_keep, path) = write_temp_db();
        let err = query(&args(&["--db", &path])).unwrap_err();
        assert!(err.to_string().contains("exactly one of"), "{err}");
        let err = query(&args(&[
            "--db",
            &path,
            "--query-name",
            "needle",
            "--query-file",
            "also.gdb",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("exactly one of"), "{err}");
    }

    #[test]
    fn index_subcommand_errors() {
        let (_keep, path) = write_temp_db();
        assert!(index(&args(&["index"])).is_err());
        assert!(index(&args(&["index", "frobnicate"])).is_err());
        assert!(
            index(&args(&["index", "build", "--db", &path])).is_err(),
            "--out required"
        );
        assert!(index(&args(&["index", "stats", "--index", "/no/such/file.gsi"])).is_err());
    }

    #[test]
    fn error_paths() {
        let (_keep, path) = write_temp_db();
        assert!(query(&args(&["--db", &path, "--query-name", "nope"])).is_err());
        assert!(query(&args(&["--db", "/no/such/file", "--query-name", "x"])).is_err());
        assert!(query(&args(&[
            "--db",
            &path,
            "--query-name",
            "needle",
            "--bogus",
            "1"
        ]))
        .is_err());
        assert!(topk(&args(&[
            "--db",
            &path,
            "--query-name",
            "needle",
            "--measure",
            "zzz"
        ]))
        .is_err());
        assert!(generate(&args(&["--kind", "alien"])).is_err());
    }

    #[test]
    fn paper_summary_matches() {
        let out = paper();
        assert!(out.contains("skyline match = exact"));
        assert!(out.contains("[\"g1\", \"g4\"]"));
    }
}
