//! End-to-end CLI tests for the serving subcommands and stdin queries,
//! driving the real `gss` binary (`CARGO_BIN_EXE_gss`) as a user would.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};

const DB_TEXT: &str = "\
t needle
v 0 A
v 1 B
v 2 C
e 0 1 -
e 1 2 -

t close
v 0 A
v 1 B
v 2 C
e 0 1 -
e 1 2 =

t far
v 0 X
v 1 Y
e 0 1 -
";

const QUERY_TEXT: &str = "t q\nv 0 A\nv 1 B\nv 2 C\ne 0 1 -\ne 1 2 -\n";

fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("gss-srv-cli-{}-{name}", std::process::id()));
    std::fs::write(&path, content).expect("write temp file");
    path
}

fn gss() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gss"))
}

/// Starts `gss serve` on an OS-assigned port and returns the child plus
/// the bound address parsed from its stderr announcement.
fn start_server(db_path: &std::path::Path) -> (Child, String) {
    let mut child = gss()
        .args([
            "serve",
            "--db",
            db_path.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn gss serve");
    let stderr = child.stderr.take().expect("piped stderr");
    let mut line = String::new();
    BufReader::new(stderr)
        .read_line(&mut line)
        .expect("read the listening announcement");
    let addr = line
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in announcement {line:?}"))
        .to_owned();
    (child, addr)
}

fn run_client(args: &[&str]) -> String {
    let out = gss()
        .arg("client")
        .args(args)
        .output()
        .expect("run gss client");
    assert!(
        out.status.success(),
        "client {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 client output")
}

#[test]
fn serve_query_stats_shutdown_round_trip() {
    let db_path = write_temp("db.gdb", DB_TEXT);
    let query_path = write_temp("q.gdb", QUERY_TEXT);
    let (mut child, addr) = start_server(&db_path);

    // Plain ping.
    let pong = run_client(&["--addr", &addr]);
    assert!(pong.contains("pong"), "{pong}");

    // One-shot query from a file; ask twice so the second hits the cache.
    let first = run_client(&[
        "--addr",
        &addr,
        "--query-file",
        query_path.to_str().unwrap(),
    ]);
    assert!(first.contains("\"ok\":true"), "{first}");
    assert!(first.contains("\"cached\":false"), "{first}");
    assert!(first.contains("\"skyline\":[\"needle\"]"), "{first}");
    let second = run_client(&[
        "--addr",
        &addr,
        "--query-file",
        query_path.to_str().unwrap(),
    ]);
    assert!(second.contains("\"cached\":true"), "{second}");
    // The result payload is byte-identical between miss and hit.
    let result_of = |s: &str| {
        let idx = s.find("\"result\":").expect("result field");
        s[idx..].trim_end().to_owned()
    };
    assert_eq!(result_of(&first), result_of(&second));

    // The same query piped through stdin (`--query-file -`).
    let mut piped = gss()
        .args(["client", "--addr", &addr, "--query-file", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn piped client");
    piped
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(QUERY_TEXT.as_bytes())
        .expect("pipe query");
    let piped_out = piped.wait_with_output().expect("piped client");
    assert!(piped_out.status.success());
    let piped_text = String::from_utf8(piped_out.stdout).unwrap();
    assert_eq!(
        result_of(&piped_text),
        result_of(&first),
        "stdin query answers identically (and hits the cache)"
    );

    // Stats show the traffic.
    let stats = run_client(&["--addr", &addr, "--stats"]);
    assert!(stats.contains("\"cache_hits\":2"), "{stats}");
    assert!(stats.contains("\"queries\":3"), "{stats}");

    // Graceful shutdown: the serve process drains and exits 0.
    let ack = run_client(&["--addr", &addr, "--shutdown"]);
    assert!(ack.contains("\"draining\":true"), "{ack}");
    let status = child.wait().expect("serve exits after drain");
    assert!(status.success(), "serve exited {status:?}");

    for p in [db_path, query_path] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn query_reads_query_file_from_stdin() {
    let db_path = write_temp("stdin-db.gdb", DB_TEXT);
    let mut child = gss()
        .args([
            "query",
            "--db",
            db_path.to_str().unwrap(),
            "--query-file",
            "-",
            "--format",
            "json",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn gss query");
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(QUERY_TEXT.as_bytes())
        .expect("pipe query");
    let out = child.wait_with_output().expect("gss query");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    // The database is used whole (3 graphs) and `needle` (isomorphic to
    // the piped query) must be in the skyline.
    assert!(text.contains("\"skyline\": [\"needle\"]"), "{text}");
    let _ = std::fs::remove_file(db_path);
}

#[test]
fn client_bench_reports_throughput_and_cache_hits() {
    let db_path = write_temp("bench-db.gdb", DB_TEXT);
    let (mut child, addr) = start_server(&db_path);

    let report = run_client(&[
        "--addr",
        &addr,
        "--bench",
        "--db",
        db_path.to_str().unwrap(),
        "--connections",
        "2",
        "--repeat",
        "3",
    ]);
    assert!(report.contains("bench: 9 queries"), "{report}");
    assert!(report.contains("throughput:"), "{report}");
    assert!(report.contains("failures: 0"), "{report}");
    // Passes 2 and 3 hit the cache: the server-side hit rate is positive.
    assert!(!report.contains("cache hit rate: 0.0%"), "{report}");

    run_client(&["--addr", &addr, "--shutdown"]);
    child.wait().expect("serve exits");
    let _ = std::fs::remove_file(db_path);
}
