//! A vendored, dependency-free micro-subset of the `proptest` property
//! testing crate.
//!
//! The build environment for this workspace has no network access, so the
//! real `proptest` crate cannot be fetched. This stub implements the slice
//! of its API the workspace tests use — the [`Strategy`] trait over numeric
//! ranges, `any::<T>()`, `prop::collection::vec`, `.prop_map`, the
//! [`proptest!`] macro (with `#![proptest_config(..)]`) and the
//! `prop_assert*` macros — on top of a deterministic SplitMix64 generator.
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case panics with its case number and the
//!   generated inputs' `Debug` rendering instead of a minimized example;
//! * **deterministic seeding** — the RNG seed derives from the test name,
//!   so every run explores the same cases (reproducible CI);
//! * `prop_assert!` is plain `assert!` (panics instead of returning
//!   `Err(TestCaseError)`).
//!
//! Swapping back to the real crate is a one-line `Cargo.toml` change.

use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 stream used to generate test cases.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the stream from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(h)
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of values for one test argument.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Types with a full-domain default strategy (see [`any`]).
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`, like proptest's `any::<T>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection size specification: fixed or ranged.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// The `prop::` namespace mirrored from real proptest.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};

        /// Strategy producing `Vec`s of values from an element strategy.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `Vec` strategy with the given element strategy and size range.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = self.size.hi() - self.size.lo();
                let n = self.size.lo()
                    + if span == 0 {
                        0
                    } else {
                        (rng.next_u64() % (span as u64 + 1)) as usize
                    };
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

impl SizeRange {
    fn lo(&self) -> usize {
        self.lo
    }
    fn hi(&self) -> usize {
        self.hi
    }
}

/// Per-block configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for API compatibility; this stub never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// Failure type for early `return Ok(())` / `Err(..)` exits from property
/// bodies (the stub's `prop_assert!` panics instead of producing this).
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

/// The everything-import mirrored from real proptest.
pub mod prelude {
    pub use crate::{any, prop, Arbitrary, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn` runs `config.cases` times over
/// deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )+
                    let debug_inputs = format!(
                        concat!($(stringify!($arg), " = {:?}, ",)+),
                        $(&$arg),+
                    );
                    let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                        || -> ::std::result::Result<(), $crate::TestCaseError> { $body Ok(()) },
                    ));
                    match result {
                        Err(panic) => {
                            eprintln!(
                                "proptest case {case} failed for {} with inputs: {}",
                                stringify!($name),
                                debug_inputs
                            );
                            ::std::panic::resume_unwind(panic);
                        }
                        Ok(Err(e)) => {
                            panic!(
                                "proptest case {case} of {} returned {:?} with inputs: {}",
                                stringify!($name),
                                e,
                                debug_inputs
                            );
                        }
                        Ok(Ok(())) => {}
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $( $(#[$meta])* fn $name( $($arg in $strat),+ ) $body )*
        }
    };
}

/// Asserts a condition inside a property (panics on failure in this stub).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..200 {
            let x = Strategy::generate(&(2usize..10), &mut rng);
            assert!((2..10).contains(&x));
            let y = Strategy::generate(&(1u8..=3), &mut rng);
            assert!((1..=3).contains(&y));
            let f = Strategy::generate(&(0.0f64..1.0), &mut rng);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = TestRng::from_name("sizes");
        for _ in 0..100 {
            let v = Strategy::generate(&prop::collection::vec(0u8..4, 1..30), &mut rng);
            assert!((1..30).contains(&v.len()));
            let fixed = Strategy::generate(&prop::collection::vec(0u8..4, 3), &mut rng);
            assert_eq!(fixed.len(), 3);
        }
    }

    #[test]
    fn determinism() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        #[test]
        fn macro_generates_inputs(x in any::<u64>(), n in 1usize..5) {
            prop_assert!((1..5).contains(&n), "n = {n}");
            prop_assert_eq!(x, x);
            prop_assert_ne!(n, 0);
        }
    }
}
