//! A vendored, dependency-free micro-subset of the `criterion` benchmark
//! harness API.
//!
//! The build environment for this workspace has no network access, so the
//! real `criterion` crate cannot be fetched. This stub implements the small
//! slice of its API the `gss-bench` benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId` and the `criterion_group!` / `criterion_main!` macros — with
//! a simple warmup-then-sample wall-clock loop that prints
//! `<group>/<id>  time: [median .. mean .. max]` lines. Swapping back to the
//! real crate is a one-line `Cargo.toml` change; no bench source changes.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` works like the real crate.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifier of a benchmark: a function name plus a parameter value.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("solver", 128)` renders as `solver/128`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`: a short warmup, then `sample_size` timed samples (capped
    /// by a total measurement budget so exhaustive solvers stay bounded).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warmup call (touch caches, JIT-free so one is enough here).
        std_black_box(f());
        let budget = Duration::from_millis(500);
        let start = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std_black_box(f());
            self.samples.push(t0.elapsed());
            if start.elapsed() > budget {
                break;
            }
        }
    }
}

fn report(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{label:<48} time: [no samples]");
        return;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    let max = *sorted.last().expect("non-empty");
    println!(
        "{label:<48} time: [{} {} {}] ({} samples)",
        fmt_dur(median),
        fmt_dur(mean),
        fmt_dur(max),
        sorted.len()
    );
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the target number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` with a shared input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b.samples);
        self
    }

    /// Benchmarks a plain closure.
    pub fn bench_function<S: Display, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b.samples);
        self
    }

    /// Ends the group (prints a separator, matching real criterion's flow).
    pub fn finish(self) {
        println!();
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 20,
        }
    }

    /// Benchmarks a plain closure outside any group.
    pub fn bench_function<S: Display, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 20,
        };
        f(&mut b);
        report(&id.to_string(), &b.samples);
        self
    }
}

/// Declares a benchmark group function, like the real macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main`, like the real macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 5,
        };
        b.iter(|| 1 + 1);
        assert!(!b.samples.is_empty() && b.samples.len() <= 5);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_dur(Duration::from_nanos(10)), "10 ns");
        assert_eq!(fmt_dur(Duration::from_micros(1500)), "1.50 ms");
    }
}
