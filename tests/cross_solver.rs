//! Cross-solver consistency: every approximate or alternative solver must
//! bound (or match) its exact counterpart, across crates, on deterministic
//! random inputs.

use similarity_skyline::datasets::synth::{
    molecule_like_graph, perturb, random_connected_graph, MoleculeConfig, RandomGraphConfig,
};
use similarity_skyline::ged::{beam::beam_ged, bipartite::bipartite_ged, exact_ged, GedOptions};
use similarity_skyline::mcs::{greedy::greedy_mcs, oracle::mcs_edges_by_definition};
use similarity_skyline::prelude::*;

fn molecule_pairs(count: usize) -> Vec<(Vocabulary, Graph, Graph)> {
    (0..count)
        .map(|i| {
            let mut vocab = Vocabulary::new();
            let mut rng = Rng::seed_from_u64(0xCAFE + i as u64);
            let g1 = molecule_like_graph(
                "m1",
                &MoleculeConfig {
                    atoms: 6,
                    ..Default::default()
                },
                &mut vocab,
                &mut rng,
            );
            let g2 = perturb(&g1, 1 + i % 4, &mut vocab, &mut rng, "X");
            (vocab, g1, g2)
        })
        .collect()
}

#[test]
fn ged_solver_sandwich_on_molecules() {
    for (i, (_v, g1, g2)) in molecule_pairs(12).into_iter().enumerate() {
        let cost = CostModel::uniform();
        let exact = exact_ged(&g1, &g2, &GedOptions::default()).cost;
        let lb = similarity_skyline::ged::lower_bound(&g1, &g2);
        let bip = bipartite_ged(&g1, &g2, &cost).cost;
        let beam = beam_ged(&g1, &g2, &cost, 8).cost;
        assert!(
            lb <= exact + 1e-9,
            "case {i}: lower bound {lb} > exact {exact}"
        );
        assert!(
            bip >= exact - 1e-9,
            "case {i}: bipartite {bip} < exact {exact}"
        );
        assert!(
            beam >= exact - 1e-9,
            "case {i}: beam {beam} < exact {exact}"
        );
    }
}

#[test]
fn mcs_exact_matches_definition_oracle_on_molecules() {
    for (i, (_v, g1, g2)) in molecule_pairs(8).into_iter().enumerate() {
        let fast = mcs_edge_size(&g1, &g2);
        let slow = mcs_edges_by_definition(&g1, &g2);
        assert_eq!(fast, slow, "case {i}");
        let greedy = greedy_mcs(&g1, &g2, usize::MAX).edges();
        assert!(greedy <= fast, "case {i}: greedy {greedy} > exact {fast}");
    }
}

#[test]
fn zero_ged_iff_isomorphic() {
    let mut vocab = Vocabulary::new();
    let mut rng = Rng::seed_from_u64(0x150);
    for i in 0..10 {
        let cfg = RandomGraphConfig {
            vertices: 4 + i % 3,
            edges: 5,
            ..Default::default()
        };
        let g1 = random_connected_graph("g1", &cfg, &mut vocab, &mut rng);
        // A structurally identical copy entered in a different vertex order.
        let mut order: Vec<usize> = (0..g1.order()).collect();
        rng.shuffle(&mut order);
        let mut g2 = Graph::new("g2");
        let mut back = vec![0usize; g1.order()];
        for (new_idx, &old_idx) in order.iter().enumerate() {
            back[old_idx] = new_idx;
            g2.add_vertex(g1.vertex_label(similarity_skyline::graph::VertexId::new(old_idx)));
            let _ = new_idx;
        }
        for e in g1.edges() {
            let edge = g1.edge(e);
            g2.add_edge(
                similarity_skyline::graph::VertexId::new(back[edge.u.index()]),
                similarity_skyline::graph::VertexId::new(back[edge.v.index()]),
                edge.label,
            )
            .unwrap();
        }
        assert!(
            are_isomorphic(&g1, &g2),
            "case {i}: permuted copy must be isomorphic"
        );
        assert_eq!(ged(&g1, &g2), 0.0, "case {i}: isomorphic ⟹ GED 0");
        // And a single relabel breaks both.
        let mut g3 = g2.clone();
        let fresh = vocab.intern("FRESH");
        g3.relabel_vertex(similarity_skyline::graph::VertexId::new(0), fresh)
            .unwrap();
        assert!(!are_isomorphic(&g1, &g3));
        assert!(ged(&g1, &g3) >= 1.0);
    }
}

#[test]
fn vf2_embedding_consistency_with_mcs() {
    // If the pattern embeds, |mcs| equals the pattern size; otherwise it is
    // strictly smaller (for connected patterns).
    let mut vocab = Vocabulary::new();
    let mut rng = Rng::seed_from_u64(0xADD);
    for i in 0..10 {
        let host_cfg = RandomGraphConfig {
            vertices: 7,
            edges: 10,
            ..Default::default()
        };
        let host = random_connected_graph("host", &host_cfg, &mut vocab, &mut rng);
        let pat_cfg = RandomGraphConfig {
            vertices: 3,
            edges: 3,
            ..Default::default()
        };
        let pattern = random_connected_graph("pat", &pat_cfg, &mut vocab, &mut rng);
        let m = mcs_edge_size(&pattern, &host);
        if is_subgraph_isomorphic(&pattern, &host) {
            assert_eq!(
                m,
                pattern.size(),
                "case {i}: embedded pattern is its own mcs"
            );
        } else {
            assert!(
                m < pattern.size(),
                "case {i}: non-embeddable pattern must lose edges"
            );
        }
    }
}

#[test]
fn budgeted_exact_ged_is_anytime() {
    let (_v, g1, g2) = molecule_pairs(1).remove(0);
    let full = exact_ged(&g1, &g2, &GedOptions::default());
    assert!(full.exact);
    for limit in [1u64, 4, 16, 64, 256, 1024] {
        let r = exact_ged(
            &g1,
            &g2,
            &GedOptions {
                node_limit: Some(limit),
                ..Default::default()
            },
        );
        assert!(
            r.cost >= full.cost - 1e-9,
            "budget {limit}: {} < {}",
            r.cost,
            full.cost
        );
        if r.exact {
            assert_eq!(r.cost, full.cost, "budget {limit} claims exactness");
        }
    }
}
