//! Mutate-while-querying loopback tests for the live store behind
//! `gss-server`.
//!
//! A writer client streams `insert` / `remove` / `update` verbs at a
//! running server while reader clients hammer it with queries. The
//! guarantees under test:
//!
//! 1. **Epoch consistency** — every served result is byte-identical to
//!    the single-threaded oracle evaluated on *some* recorded epoch's
//!    snapshot (with that epoch's maintained index), and the epochs a
//!    connection observes never go backwards.
//! 2. **Cache isolation across epochs** — once the database stops
//!    changing, replays hit the cache with bytes equal to the final
//!    epoch's oracle; mid-churn hits can only come from the same epoch
//!    because the epoch-folded fingerprint is the cache key's database
//!    component.
//! 3. **Counters** — the `stats` verb reports the epoch, the `mutated`
//!    counter, the store totals and the index maintenance counters; the
//!    tiny staleness budget forces partial rebuilds during the run.
//! 4. **Drain** — a draining server refuses mutations.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use similarity_skyline::core::jsonio::Value;
use similarity_skyline::datasets::workload::{Workload, WorkloadConfig, WorkloadKind};
use similarity_skyline::prelude::*;
use similarity_skyline::protocol::Response;
use similarity_skyline::server::{serve_store, Client, ServerConfig};

/// The single-threaded oracle for one snapshot: what the server must
/// serve for queries admitted at that epoch, byte for byte — including
/// the epoch's own maintained index, which the engine installs into the
/// effective options at parse time.
fn oracle(snap: &Snapshot, query: &Graph) -> String {
    let db = snap.database();
    let result = similarity_skyline::core::graph_similarity_skyline(
        db,
        query,
        &QueryOptions {
            threads: 1,
            index: snap.query_index(),
            ..QueryOptions::default()
        },
    );
    Value::parse(&similarity_skyline::core::to_json(db, &result))
        .expect("explain output is valid JSON")
        .to_compact()
}

fn workload_db(size: usize, seed: u64) -> (GraphDatabase, Vec<Graph>) {
    let w = Workload::generate(&WorkloadConfig {
        kind: WorkloadKind::Molecule,
        database_size: size,
        graph_vertices: 6,
        related_fraction: 0.4,
        max_edits: 3,
        seed,
    });
    let query = w.query.clone();
    let db = GraphDatabase::from_parts(w.vocab, w.graphs);
    let second = db.get(GraphId(db.len() / 2)).clone();
    (db, vec![query, second])
}

fn graph_text(db: &GraphDatabase, g: &Graph) -> String {
    similarity_skyline::graph::format::write_database(std::slice::from_ref(g), db.vocab())
}

/// Serializes database graph `id` standalone under a new name, so writer
/// traffic reuses existing structure and never grows the vocabulary
/// (queries parsed against any epoch's vocab then agree token for token).
fn renamed_text(db: &GraphDatabase, id: usize, new_name: &str) -> String {
    let text = graph_text(db, db.get(GraphId(id)));
    let body = text.split_once('\n').map_or("", |(_, b)| b);
    format!("t {new_name}\n{body}")
}

#[test]
fn mutations_while_querying_serve_epoch_consistent_bytes() {
    let (db, queries) = workload_db(16, 0x11FE);
    let db = Arc::new(db);
    let store = Arc::new(
        GraphStore::with_index(
            Arc::clone(&db),
            Arc::new(PivotIndex::build(&db, &PivotIndexConfig::default())),
            StoreConfig {
                index: None,
                // Tiny budget: single-graph batches trip partial rebuilds
                // while the readers are querying.
                staleness_budget: 2,
            },
        )
        .expect("fresh index validates"),
    );
    let handle = serve_store(
        Arc::clone(&store),
        QueryOptions::default(),
        ServerConfig {
            workers: 3,
            batch_max: 4,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = handle.addr();

    // Query texts are fixed up front (epoch-0 serialization); the writer
    // only ever inserts renamed copies of epoch-0 graphs, so these texts
    // parse identically against every later epoch's vocabulary.
    let texts: Vec<String> = queries.iter().map(|q| graph_text(&db, q)).collect();

    // The writer thread: 10 single-op batches over the wire, recording
    // the snapshot of every epoch it creates. It is the only mutator, so
    // after an ack for epoch N the head snapshot *is* epoch N.
    let done = AtomicBool::new(false);
    let (snapshots, reader_logs) = std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            let mut client = Client::connect(addr).expect("writer connect");
            let mut snapshots = vec![store.snapshot()];
            let mut op = |response: Response| {
                let epoch = match response {
                    Response::Mutated { epoch, .. } => epoch,
                    other => panic!("mutation refused mid-run: {other:?}"),
                };
                let snap = store.snapshot();
                assert_eq!(snap.epoch(), epoch, "single writer: ack is the head");
                snapshots.push(snap);
                std::thread::sleep(Duration::from_millis(20));
            };
            for i in 0..4 {
                let text = renamed_text(&db, i, &format!("live{i}"));
                op(client.insert(&text).expect("insert"));
            }
            op(client.remove(&["live0".to_owned()]).expect("remove"));
            // live1 was inserted this run, so it cannot be a pivot: the
            // update stays on the incremental/partial maintenance path.
            op(client
                .update("live1", &renamed_text(&db, 5, "live1"))
                .expect("update"));
            for i in 4..8 {
                let text = renamed_text(&db, i, &format!("live{i}"));
                op(client.insert(&text).expect("insert"));
            }
            done.store(true, Ordering::SeqCst);
            snapshots
        });

        const READERS: usize = 3;
        let readers: Vec<_> = (0..READERS)
            .map(|r| {
                let texts = &texts;
                let done = &done;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("reader connect");
                    let mut log: Vec<(usize, String)> = Vec::new();
                    let mut i = r; // stagger starting query per reader
                    while !done.load(Ordering::SeqCst) || log.len() < 4 {
                        let qi = i % texts.len();
                        match client.query(&texts[qi]).expect("query") {
                            Response::Result { result, .. } => log.push((qi, result)),
                            other => panic!("reader {r}: {other:?}"),
                        }
                        i += 1;
                    }
                    log
                })
            })
            .collect();

        let snapshots = writer.join().expect("writer");
        let logs: Vec<_> = readers
            .into_iter()
            .map(|h| h.join().expect("reader"))
            .collect();
        (snapshots, logs)
    });

    assert_eq!(snapshots.len(), 11, "10 batches = epochs 0..=10");
    assert_eq!(store.epoch(), 10);

    // Oracle documents per (epoch, query), evaluated on the recorded
    // snapshots with their own maintained indexes.
    let oracles: Vec<Vec<String>> = snapshots
        .iter()
        .map(|snap| queries.iter().map(|q| oracle(snap, q)).collect())
        .collect();

    // Every served byte matches some epoch's oracle, and each connection
    // admits a nondecreasing epoch assignment (queries pin the head
    // snapshot at parse time; a blocking connection can never observe an
    // older epoch after a newer one).
    for (r, log) in reader_logs.iter().enumerate() {
        let mut min_epoch = 0usize;
        for (j, (qi, served)) in log.iter().enumerate() {
            let epoch = (min_epoch..oracles.len())
                .find(|&e| &oracles[e][*qi] == served)
                .unwrap_or_else(|| {
                    panic!(
                        "reader {r} response {j} (query {qi}) matches no epoch \
                         >= {min_epoch}: {served}"
                    )
                });
            min_epoch = epoch;
        }
        assert!(log.len() >= 4, "reader {r} issued too few queries");
    }

    // Quiescent cache identity: with mutations stopped, a replayed query
    // is served from the cache, byte-identical to the final epoch.
    let mut client = Client::connect(addr).expect("connect");
    for (qi, text) in texts.iter().enumerate() {
        let first = match client.query(text).expect("fresh") {
            Response::Result { result, .. } => result,
            other => panic!("{other:?}"),
        };
        let replay = match client.query(text).expect("replay") {
            Response::Result { cached, result, .. } => {
                assert!(cached, "quiescent replay must hit the cache");
                result
            }
            other => panic!("{other:?}"),
        };
        assert_eq!(first, oracles[10][qi], "head serves the final epoch");
        assert_eq!(replay, first, "cache hit changed the bytes");
    }

    // Counters: the stats verb reports the mutation epoch, totals and the
    // index maintenance that the staleness budget forced mid-run.
    let stats = client.stats().expect("stats");
    let count = |v: &Value, k: &str| v.get(k).and_then(Value::as_f64).expect(k);
    assert_eq!(count(&stats, "epoch"), 10.0, "{stats:?}");
    assert_eq!(count(&stats, "mutated"), 10.0, "{stats:?}");
    let totals = stats.get("store").expect("store totals");
    assert_eq!(count(totals, "inserted"), 8.0);
    assert_eq!(count(totals, "removed"), 1.0);
    assert_eq!(count(totals, "updated"), 1.0);
    let index = stats.get("index").expect("index counters");
    assert!(
        count(index, "partial_rebuilds") >= 1.0,
        "a budget of 2 over 10 batches must trip partial rebuilds: {stats:?}"
    );
    assert_eq!(count(index, "rebuilds"), 0.0, "no pivot was mutated");
    let store_stats = store.stats();
    assert_eq!(
        store_stats.index_partial_rebuilds.map(|p| p >= 1),
        Some(true)
    );
    assert!(store_stats.index_stale_ops.expect("indexed") <= 2);

    // Drain refuses mutations: the epoch is frozen once shutdown begins.
    let ack = client.shutdown().expect("shutdown");
    assert!(matches!(ack, Response::Draining { .. }), "{ack:?}");
    match client.insert(&renamed_text(&db, 0, "toolate")) {
        Ok(Response::Error { message, .. }) => {
            assert!(message.contains("draining"), "{message}")
        }
        Ok(other) => panic!("draining server must refuse mutations: {other:?}"),
        Err(_) => {} // connection already torn down — a valid drain outcome
    }
    handle.join();
    assert_eq!(store.epoch(), 10, "drain froze the epoch");
}
