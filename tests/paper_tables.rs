//! Integration test: the full paper reproduction through the public facade.
//!
//! Asserts every number the paper publishes (Tables I–V, Examples 1–5,
//! Figures 1–3) against values computed end-to-end by the library — the
//! repository-level contract that the reproduction holds.

use similarity_skyline::datasets::paper::{expected, figure1_pair, figure3_database, hotels};
use similarity_skyline::prelude::*;

#[test]
fn table1_hotel_skyline() {
    let (_names, rows) = hotels();
    let sky = similarity_skyline::skyline::skyline(&rows, Algorithm::Bnl);
    assert_eq!(sky, expected::HOTEL_SKYLINE.to_vec());
}

#[test]
fn examples_2_3_4_figure1() {
    let pair = figure1_pair();
    assert_eq!(ged(&pair.left, &pair.right), 4.0, "Example 2");
    let m = mcs_edge_size(&pair.left, &pair.right);
    assert_eq!(m, 4, "Example 3 mcs size");
    assert!(
        (1.0 - m as f64 / 6.0 - 0.333).abs() < 0.001,
        "Example 3 DistMcs"
    );
    assert!(
        (1.0 - m as f64 / (12.0 - m as f64) - 0.5).abs() < 1e-12,
        "Example 4 DistGu"
    );
}

#[test]
fn example_2_edit_script_has_the_paper_op_kinds() {
    use similarity_skyline::ged::{
        bipartite::bipartite_ged, edit_path_for_mapping, exact_ged, GedOptions,
    };
    let pair = figure1_pair();
    let warm = bipartite_ged(&pair.left, &pair.right, &CostModel::uniform());
    let r = exact_ged(
        &pair.left,
        &pair.right,
        &GedOptions {
            warm_start: Some(warm.mapping),
            ..Default::default()
        },
    );
    let mut kinds: Vec<&str> = edit_path_for_mapping(&pair.left, &pair.right, &r.mapping)
        .iter()
        .map(|op| op.kind())
        .collect();
    kinds.sort();
    // Paper: one edge deletion, one edge relabeling, one vertex relabeling,
    // one edge insertion.
    assert_eq!(
        kinds,
        vec![
            "edge-delete",
            "edge-insert",
            "edge-relabel",
            "vertex-relabel"
        ]
    );
}

#[test]
fn tables_2_and_3_reproduce_exactly() {
    let data = figure3_database();
    let db = GraphDatabase::from_parts(data.vocab, data.graphs);
    // Sizes as printed in Section VI.
    let sizes: Vec<usize> = db.iter().map(|(_, g)| g.size()).collect();
    assert_eq!(sizes, expected::SIZES.to_vec());
    assert_eq!(data.query.size(), expected::QUERY_SIZE);

    for (i, (_, g)) in db.iter().enumerate() {
        assert_eq!(
            mcs_edge_size(g, &data.query),
            expected::TABLE2_MCS[i],
            "Table II row {}",
            i + 1
        );
        assert_eq!(
            ged(g, &data.query),
            expected::TABLE3_ED[i],
            "Table III DistEd row {}",
            i + 1
        );
    }
}

#[test]
fn section6_skyline_and_witnesses() {
    let data = figure3_database();
    let db = GraphDatabase::from_parts(data.vocab, data.graphs);
    let r = graph_similarity_skyline(&db, &data.query, &QueryOptions::default());
    let got: Vec<usize> = r.skyline.iter().map(|g| g.index()).collect();
    assert_eq!(
        got,
        expected::SKYLINE.to_vec(),
        "GSS(D,q) = {{g1,g4,g5,g7}}"
    );

    // The paper's named dominators must dominate.
    for (loser, winner) in expected::DOMINANCE_WITNESSES {
        assert!(
            similarity_skyline::skyline::dominates(&r.gcs[winner].values, &r.gcs[loser].values),
            "g{} must dominate g{}",
            winner + 1,
            loser + 1
        );
    }
}

#[test]
fn section6_top_k_contrast() {
    let data = figure3_database();
    let db = GraphDatabase::from_parts(data.vocab, data.graphs);
    let top3 = top_k_by_measure(
        &db,
        &data.query,
        MeasureKind::EditDistance,
        3,
        &SolverConfig::default(),
        1,
    );
    let ids: Vec<usize> = top3.iter().map(|s| s.id.index()).collect();
    assert!(ids.contains(&2), "g3 in ED top-3");
    let r = graph_similarity_skyline(&db, &data.query, &QueryOptions::default());
    assert!(!r.contains(GraphId(2)), "g3 rejected by the skyline");
}

#[test]
fn section7_refinement_selects_g1_g4() {
    let data = figure3_database();
    let db = GraphDatabase::from_parts(data.vocab, data.graphs);
    let members: Vec<GraphId> = expected::SKYLINE.iter().map(|&i| GraphId(i)).collect();
    let refined = refine_skyline(&db, &members, 2, &RefineOptions::default()).unwrap();
    let got: Vec<usize> = refined.selected.iter().map(|g| g.index()).collect();
    assert_eq!(got, expected::REFINED.to_vec());

    // Table IV: all six v2 (DistMcs) and v3 (DistGu) diversity cells match
    // the paper to printing precision.
    for (idx, cand) in refined.evaluation.candidates.iter().enumerate() {
        assert!(
            (cand.diversity[1] - expected::TABLE4[idx][1]).abs() < 0.006,
            "v2 of S{}",
            idx + 1
        );
        assert!(
            (cand.diversity[2] - expected::TABLE4[idx][2]).abs() < 0.006,
            "v3 of S{}",
            idx + 1
        );
    }
    // v1 (normalized GED): four of six cells match; S3 and S5 deviate by
    // exactly the two unattainable Table IV GED entries (see EXPERIMENTS.md).
    let v1: Vec<f64> = refined
        .evaluation
        .candidates
        .iter()
        .map(|c| c.diversity[0])
        .collect();
    for idx in [0usize, 1, 3, 5] {
        assert!(
            (v1[idx] - expected::TABLE4[idx][0]).abs() < 0.011,
            "v1 of S{}",
            idx + 1
        );
    }
    assert!(
        (v1[2] - 6.0 / 7.0).abs() < 1e-12,
        "S3 = ged 6 (paper claims 7)"
    );
    assert!(
        (v1[4] - 6.0 / 7.0).abs() < 1e-12,
        "S5 = ged 6 (paper claims 5)"
    );
}

#[test]
fn table4_ged_cells_paper_vs_measured() {
    // Documents the measured pairwise GEDs among skyline members:
    // paper [6,5,7,4,5,3] vs measured [6,5,6,4,6,3].
    let data = figure3_database();
    let db = GraphDatabase::from_parts(data.vocab, data.graphs);
    let members: Vec<&Graph> = expected::SKYLINE
        .iter()
        .map(|&i| db.get(GraphId(i)))
        .collect();
    let mut measured = Vec::new();
    for a in 0..members.len() {
        for b in a + 1..members.len() {
            measured.push(ged(members[a], members[b]));
        }
    }
    assert_eq!(measured, vec![6.0, 5.0, 6.0, 4.0, 6.0, 3.0]);
    let matches = measured
        .iter()
        .zip(expected::TABLE4_GED)
        .filter(|(m, p)| **m == *p)
        .count();
    assert_eq!(
        matches, 4,
        "4 of 6 pairwise GED cells match the paper exactly"
    );
}
