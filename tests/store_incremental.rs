//! Property tests for the live store's incremental index maintenance.
//!
//! The invariant under test: after **any** sequence of mutation batches,
//! the incrementally maintained [`PivotIndex`] is answer-equivalent — at
//! **every epoch** — to an index rebuilt from scratch on that epoch's
//! database, and both match the index-less naive scan:
//!
//! * identical skylines and identical dominance witnesses,
//! * identical exact GCS vectors wherever both scans verified a graph,
//! * the maintained index validates against the epoch's database
//!   (fingerprint + size admissibility, the same check `gss serve`
//!   performs on a loaded index).
//!
//! The maintained index may hold *looser* partition brackets than the
//! rebuild (probe bounds instead of exact pivot distances), so pruning
//! counters are allowed to differ — answers are not. A tiny staleness
//! budget keeps the partial-rebuild path (ring re-quantiling) inside the
//! tested surface, and removals of pivot graphs exercise the full-rebuild
//! escape hatch.

use std::sync::Arc;

use proptest::prelude::*;
use similarity_skyline::datasets::workload::{Workload, WorkloadConfig, WorkloadKind};
use similarity_skyline::prelude::*;

fn workload_db(size: usize, seed: u64) -> (GraphDatabase, Graph) {
    let w = Workload::generate(&WorkloadConfig {
        kind: WorkloadKind::Molecule,
        database_size: size,
        graph_vertices: 6,
        related_fraction: 0.4,
        max_edits: 3,
        seed,
    });
    (GraphDatabase::from_parts(w.vocab, w.graphs), w.query)
}

/// Serializes one database graph standalone and renames it, so inserts
/// and updates reuse existing structure (and never grow the vocabulary).
fn renamed_text(db: &GraphDatabase, id: usize, new_name: &str) -> String {
    let g = db.get(GraphId(id));
    let text =
        similarity_skyline::graph::format::write_database(std::slice::from_ref(g), db.vocab());
    let body = text.split_once('\n').map_or("", |(_, b)| b);
    format!("t {new_name}\n{body}")
}

/// One deterministic mutation batch derived from `step` and `ops_seed`:
/// mostly inserts (the database must keep growing for brackets to
/// matter), with removes and in-place updates mixed in once the database
/// is large enough to afford them.
fn step_batch(db: &GraphDatabase, step: usize, ops_seed: u64) -> MutationBatch {
    let pick = |salt: u64| (ops_seed.rotate_left(step as u32 * 7 + salt as u32) ^ salt) as usize;
    match (ops_seed >> (2 * step)) & 3 {
        2 if db.len() > 6 => {
            let name = db.get(GraphId(pick(11) % db.len())).name().to_owned();
            MutationBatch::default().remove(&name)
        }
        3 => {
            let target = db.get(GraphId(pick(13) % db.len())).name().to_owned();
            let donor = pick(17) % db.len();
            MutationBatch::default().update(&target, &renamed_text(db, donor, &target))
        }
        _ => {
            let donor = pick(19) % db.len();
            MutationBatch::default().insert(&renamed_text(db, donor, &format!("ins{step}")))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn incremental_maintenance_equals_rebuild_at_every_epoch(
        seed in any::<u64>(),
        ops_seed in any::<u64>(),
        size in 8usize..14,
        steps in 2usize..6,
        budget in 0u64..4,
    ) {
        let (db, q) = workload_db(size, seed);
        let store = GraphStore::new(
            Arc::new(db),
            StoreConfig {
                index: Some(PivotIndexConfig::default()),
                staleness_budget: budget,
            },
        );

        for step in 0..steps {
            let head = store.snapshot();
            let batch = step_batch(head.database(), step, ops_seed);
            let receipt = store.apply(&batch).expect("derived batches are valid");
            prop_assert_eq!(receipt.epoch, step as u64 + 1);

            let snap = store.snapshot();
            let db = snap.database();
            let maintained = Arc::clone(snap.index().expect("store is indexed"));
            prop_assert!(
                maintained.validate(db).is_ok(),
                "epoch {}: maintained index must stay admissible",
                snap.epoch()
            );

            let rebuilt = Arc::new(PivotIndex::build(db, &maintained.config()));
            let naive = graph_similarity_skyline(db, &q, &QueryOptions::default());
            let with_maintained = graph_similarity_skyline(
                db,
                &q,
                &QueryOptions::default().with_index(maintained),
            );
            let with_rebuilt = graph_similarity_skyline(
                db,
                &q,
                &QueryOptions::default().with_index(rebuilt),
            );

            prop_assert_eq!(&with_maintained.skyline, &with_rebuilt.skyline);
            prop_assert_eq!(
                &with_maintained.dominated,
                &with_rebuilt.dominated,
                "epoch {}: witnesses must be identical",
                snap.epoch()
            );
            prop_assert_eq!(&with_maintained.skyline, &naive.skyline);
            prop_assert_eq!(&with_maintained.dominated, &naive.dominated);
            // Wherever both scans verified a graph, the exact vectors are
            // byte-identical (pruned graphs carry lower bounds and may
            // legitimately differ between index generations).
            for i in 0..db.len() {
                if with_maintained.is_exact(GraphId(i)) && with_rebuilt.is_exact(GraphId(i)) {
                    prop_assert_eq!(&with_maintained.gcs[i], &with_rebuilt.gcs[i]);
                }
            }
        }

        // The maintenance paths the run actually took are visible in the
        // stats; with a tiny budget and several batches at least one
        // non-trivial maintenance action must have happened.
        let stats = store.stats();
        prop_assert_eq!(stats.batches, steps as u64);
        prop_assert!(
            stats.index_stale_ops.expect("indexed") <= budget,
            "staleness budget must bound the drift: {:?}",
            stats
        );
    }
}
