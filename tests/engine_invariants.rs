//! Property-based tests of the query engine on synthetic workloads.
//!
//! Engine-level invariants that must hold regardless of data:
//! * skyline members are never dominated; every excluded graph is dominated
//!   by its recorded witness, and the witness is a skyline member;
//! * all skyline algorithms and thread counts agree;
//! * results are deterministic;
//! * the refined subset is always a subset of the skyline with the
//!   requested size.

use proptest::prelude::*;
use similarity_skyline::datasets::workload::{Workload, WorkloadConfig, WorkloadKind};
use similarity_skyline::prelude::*;

fn build_workload(seed: u64, size: usize, kind: WorkloadKind) -> (GraphDatabase, Graph) {
    let cfg = WorkloadConfig {
        kind,
        database_size: size,
        graph_vertices: 5,
        related_fraction: 0.5,
        max_edits: 3,
        seed,
    };
    let w = Workload::generate(&cfg);
    (GraphDatabase::from_parts(w.vocab, w.graphs), w.query)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn skyline_is_exactly_the_nondominated_set(
        seed in any::<u64>(),
        size in 2usize..10,
        molecule in any::<bool>(),
    ) {
        let kind = if molecule { WorkloadKind::Molecule } else { WorkloadKind::Uniform };
        let (db, q) = build_workload(seed, size, kind);
        let r = graph_similarity_skyline(&db, &q, &QueryOptions::default());

        let points: Vec<&Vec<f64>> = r.gcs.iter().map(|g| &g.values).collect();
        for i in 0..db.len() {
            let dominated = points
                .iter()
                .enumerate()
                .any(|(j, p)| j != i && similarity_skyline::skyline::dominates(p, points[i]));
            prop_assert_eq!(
                r.contains(GraphId(i)),
                !dominated,
                "graph {} skyline membership must equal non-dominance",
                i
            );
        }
        // Witness structure.
        for w in &r.dominated {
            prop_assert!(r.contains(w.dominator), "witness must be in the skyline");
            prop_assert!(similarity_skyline::skyline::dominates(
                &r.gcs[w.dominator.index()].values,
                &r.gcs[w.graph.index()].values
            ));
        }
        prop_assert_eq!(r.skyline.len() + r.dominated.len(), db.len());
    }

    #[test]
    fn algorithms_threads_and_reruns_agree(
        seed in any::<u64>(),
        size in 2usize..8,
    ) {
        let (db, q) = build_workload(seed, size, WorkloadKind::Molecule);
        let base = graph_similarity_skyline(&db, &q, &QueryOptions::default());
        for algo in [Algorithm::Naive, Algorithm::Sfs] {
            let r = graph_similarity_skyline(
                &db, &q,
                &QueryOptions { skyline_algorithm: algo, ..Default::default() },
            );
            prop_assert_eq!(&r.skyline, &base.skyline, "{:?}", algo);
        }
        let threaded = graph_similarity_skyline(
            &db, &q,
            &QueryOptions { threads: 3, ..Default::default() },
        );
        prop_assert_eq!(&threaded.skyline, &base.skyline);
        prop_assert_eq!(&threaded.gcs, &base.gcs);
        let rerun = graph_similarity_skyline(&db, &q, &QueryOptions::default());
        prop_assert_eq!(&rerun.skyline, &base.skyline);
    }

    #[test]
    fn refinement_returns_k_skyline_members(
        seed in any::<u64>(),
        size in 6usize..10,
    ) {
        let (db, q) = build_workload(seed, size, WorkloadKind::Molecule);
        let r = graph_similarity_skyline(&db, &q, &QueryOptions::default());
        if r.skyline.len() >= 3 {
            let refined = refine_skyline(&db, &r.skyline, 2, &RefineOptions::default()).unwrap();
            prop_assert_eq!(refined.selected.len(), 2);
            for id in &refined.selected {
                prop_assert!(r.skyline.contains(id));
            }
            // Greedy also returns valid members.
            let greedy = refine_skyline_greedy(&db, &r.skyline, 2, &RefineOptions::default());
            prop_assert_eq!(greedy.len(), 2);
            for id in &greedy {
                prop_assert!(r.skyline.contains(id));
            }
        }
    }

    #[test]
    fn identical_graph_always_makes_the_skyline(
        seed in any::<u64>(),
        size in 2usize..8,
    ) {
        // Plant an exact copy of the query: its GCS vector is all-zeros,
        // which can only be equalled, never dominated.
        let (mut db, q) = build_workload(seed, size, WorkloadKind::Molecule);
        let copy_id = db.push(q.clone());
        let r = graph_similarity_skyline(&db, &q, &QueryOptions::default());
        prop_assert!(r.contains(copy_id), "an exact match is Pareto-optimal");
        for v in &r.gcs[copy_id.index()].values {
            prop_assert_eq!(*v, 0.0);
        }
    }
}
