//! Crash-recovery and chaos tests for the durable store (WAL +
//! recovery + client retry).
//!
//! The pinned properties:
//!
//! 1. **Acked-prefix recovery** — crash the store (via deterministic
//!    fault injection) at *any* injection point of the WAL append,
//!    fsync or checkpoint path, after any prefix of a random mutation
//!    sequence: reopening the data directory recovers a store whose
//!    epoch and fingerprint equal a never-crashed oracle that saw
//!    exactly the acknowledged prefix of mutations. Nothing acked is
//!    lost; nothing unacked is resurrected.
//! 2. **Torn-tail corpus** — truncating the live segment at *every*
//!    byte offset always recovers (the torn tail is truncated, never
//!    replayed), landing on some acked prefix. Flipping any single
//!    byte either refuses recovery (interior corruption is ambiguous)
//!    or recovers a strict prefix — a corrupted record never survives
//!    its checksum.
//! 3. **Retry convergence** — injected connection resets between a
//!    durable server and a retrying client converge with **zero
//!    duplicate applications**: resent mutations carry the same
//!    `mutation_id`, the server replays the original receipt, and the
//!    final epoch equals the number of unique mutations.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use similarity_skyline::prelude::*;
use similarity_skyline::server::{serve_store, Client, Response, RetryPolicy, ServerConfig};
use similarity_skyline::store::{FaultPlan, MutationError, WalConfig};

/// A unique scratch directory per call (parallel tests never collide).
fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "gss-durability-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

fn copy_dir(from: &Path, to: &Path) {
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
    }
}

fn initial_db() -> Arc<GraphDatabase> {
    Arc::new(GraphDatabase::from_text("t a\nv 0 C\nv 1 O\ne 0 1 s\nt b\nv 0 N\n").unwrap())
}

/// The i-th batch of the deterministic mutation sequence: mostly
/// inserts of fresh graphs, every third an in-place update of `a` (so
/// replay exercises both op kinds). Every batch is valid at every step.
fn step_batch(i: usize) -> MutationBatch {
    if i % 3 == 2 {
        MutationBatch::default().update("a", &format!("t a\nv 0 C\nv 1 C\ne 0 1 u{i}\n"))
    } else {
        MutationBatch::default().insert(&format!("t x{i}\nv 0 C\nv 1 O\ne 0 1 b{}\n", i % 3))
    }
}

/// Oracle fingerprints: `fps[n]` is the fingerprint of a never-crashed,
/// non-durable store that applied exactly the first `n` batches.
fn oracle_fingerprints(k: usize) -> Vec<u64> {
    let store = GraphStore::new(initial_db(), StoreConfig::default());
    let mut fps = vec![store.snapshot().fingerprint()];
    for i in 0..k {
        store.apply(&step_batch(i)).unwrap();
        fps.push(store.snapshot().fingerprint());
    }
    fps
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn crash_at_any_injection_point_recovers_the_acked_prefix(
        k in 3usize..9,
        crash_hit in 1u64..8,
        point in 0usize..3,
        checkpoint_every in 0u64..4,
    ) {
        let point = ["wal.append", "wal.fsync", "checkpoint.write"][point];
        let dir = temp_dir("crash");
        let mut wal_config = WalConfig::new(&dir);
        wal_config.checkpoint_every = checkpoint_every;
        wal_config.faults = Arc::new(
            FaultPlan::parse(&format!("{point}@{crash_hit}=crash")).unwrap(),
        );

        // Run until the injected crash (or the end of the sequence),
        // counting exactly the acknowledged batches. A crash during
        // `open_durable` itself (initial checkpoint) acks nothing.
        let mut acked = 0usize;
        match GraphStore::open_durable(initial_db(), StoreConfig::default(), wal_config) {
            Err(_) => {}
            Ok(store) => {
                for i in 0..k {
                    match store.apply(&step_batch(i)) {
                        Ok(receipt) => {
                            acked += 1;
                            prop_assert_eq!(receipt.epoch, acked as u64);
                        }
                        Err(MutationError::Durability(_)) => break,
                        Err(e) => panic!("unexpected error: {e}"),
                    }
                }
            }
        }

        // Recovery equals the acked-prefix oracle, byte for byte
        // (fingerprints cover epoch, names, labels and structure).
        let recovered =
            GraphStore::open_durable(initial_db(), StoreConfig::default(), WalConfig::new(&dir))
                .expect("a crashed-then-reopened directory must recover");
        let fps = oracle_fingerprints(k);
        prop_assert_eq!(recovered.snapshot().epoch(), acked as u64);
        prop_assert_eq!(recovered.snapshot().fingerprint(), fps[acked]);
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn torn_tails_truncate_at_every_offset_and_flips_never_replay_corruption() {
    let dir = temp_dir("corpus");
    let k = 4usize;
    {
        // checkpoint_every = 0: keep every record in one live segment so
        // the corpus below covers the whole log.
        let mut wal_config = WalConfig::new(&dir);
        wal_config.checkpoint_every = 0;
        let store =
            GraphStore::open_durable(initial_db(), StoreConfig::default(), wal_config).unwrap();
        for i in 0..k {
            store.apply(&step_batch(i)).unwrap();
        }
    }
    let fps = oracle_fingerprints(k);
    let segment = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .find(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            name.starts_with("wal-") && name.ends_with(".log")
        })
        .expect("one live segment");
    let seg_name = segment.file_name();
    let bytes = std::fs::read(segment.path()).unwrap();
    assert!(bytes.len() > 100, "corpus must cover real records");

    // Truncation at every offset: always recoverable, always an acked
    // prefix (the torn tail is truncated, never replayed).
    for cut in 0..=bytes.len() {
        let scratch = temp_dir("cut");
        copy_dir(&dir, &scratch);
        std::fs::write(scratch.join(&seg_name), &bytes[..cut]).unwrap();
        let recovered = GraphStore::open_durable(
            initial_db(),
            StoreConfig::default(),
            WalConfig::new(&scratch),
        )
        .unwrap_or_else(|e| panic!("truncation at {cut} must recover: {e}"));
        let epoch = recovered.snapshot().epoch() as usize;
        assert!(epoch <= k, "truncation at {cut} resurrected records");
        assert_eq!(
            recovered.snapshot().fingerprint(),
            fps[epoch],
            "truncation at {cut}: recovered state is not the epoch-{epoch} oracle"
        );
        std::fs::remove_dir_all(&scratch).ok();
    }

    // Single-byte flips at every offset: either recovery refuses
    // (interior corruption) or a strict prefix survives — the flipped
    // record itself can never pass its checksum.
    for pos in 0..bytes.len() {
        let scratch = temp_dir("flip");
        copy_dir(&dir, &scratch);
        let mut corrupt = bytes.clone();
        corrupt[pos] ^= 0xff;
        std::fs::write(scratch.join(&seg_name), &corrupt).unwrap();
        match GraphStore::open_durable(
            initial_db(),
            StoreConfig::default(),
            WalConfig::new(&scratch),
        ) {
            Err(_) => {} // refused: ambiguous interior corruption
            Ok(recovered) => {
                let epoch = recovered.snapshot().epoch() as usize;
                assert!(
                    epoch < k,
                    "flip at {pos} survived its checksum (epoch {epoch})"
                );
                assert_eq!(
                    recovered.snapshot().fingerprint(),
                    fps[epoch],
                    "flip at {pos}: recovered state is not the epoch-{epoch} oracle"
                );
            }
        }
        std::fs::remove_dir_all(&scratch).ok();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn injected_resets_converge_with_zero_duplicate_applications() {
    let dir = temp_dir("chaos");
    let store = Arc::new(
        GraphStore::open_durable(initial_db(), StoreConfig::default(), WalConfig::new(&dir))
            .unwrap(),
    );
    // Two deterministic connection resets mid-run: each drops the ack
    // after the mutation applied, forcing the client to resend a
    // mutation the server already holds.
    let config = ServerConfig {
        faults: Arc::new(FaultPlan::parse("conn.write@3=reset;conn.write@7=reset").unwrap()),
        ..ServerConfig::default()
    };
    let handle = serve_store(Arc::clone(&store), QueryOptions::default(), config).unwrap();

    let mut client = Client::builder()
        .retry(RetryPolicy {
            max_retries: 6,
            base_delay_ms: 1,
            max_delay_ms: 20,
            jitter_seed: 7,
            timeout_ms: Some(5_000),
        })
        .connect(handle.addr())
        .unwrap();

    let unique = 10u64;
    let mut replays = 0u64;
    for i in 0..unique {
        match client.insert(&format!("t c{i}\nv 0 C\n")).unwrap() {
            Response::Mutated {
                epoch, replayed, ..
            } => {
                // Each unique mutation applies exactly once, reset or
                // not: the epoch sequence has no gaps and no repeats.
                assert_eq!(epoch, i + 1, "mutation {i} double-applied or lost");
                if replayed {
                    replays += 1;
                }
            }
            other => panic!("unexpected response: {}", other.to_line().trim_end()),
        }
    }
    assert!(
        client.retries() >= 2,
        "both injected resets must force resends (saw {})",
        client.retries()
    );
    assert!(
        replays >= 1,
        "at least one resend must be deduplicated server-side"
    );
    assert_eq!(store.stats().epoch, unique, "zero duplicate applications");

    handle.shutdown();
    handle.join();
    std::fs::remove_dir_all(&dir).ok();
}
