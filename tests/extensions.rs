//! Integration tests for the beyond-the-paper extensions through the facade:
//! k-skyband queries, the label-histogram measure, isomorphism classes, and
//! WL fingerprints.

use similarity_skyline::core::{graph_similarity_skyband, MeasureKind};
use similarity_skyline::datasets::paper::figure3_database;
use similarity_skyline::datasets::workload::{Workload, WorkloadConfig};
use similarity_skyline::graph::wl::wl_fingerprint;
use similarity_skyline::prelude::*;

#[test]
fn skyband_nests_around_the_skyline_on_workloads() {
    let w = Workload::generate(&WorkloadConfig {
        database_size: 10,
        seed: 0xBAD5EED,
        ..Default::default()
    });
    let db = GraphDatabase::from_parts(w.vocab, w.graphs);
    let opts = QueryOptions::default();
    let sky = graph_similarity_skyline(&db, &w.query, &opts).skyline;
    let mut previous: Vec<GraphId> = Vec::new();
    for k in 1..=4 {
        let band = graph_similarity_skyband(&db, &w.query, k, &opts).members;
        if k == 1 {
            assert_eq!(band, sky, "1-skyband is the skyline");
        }
        for id in &previous {
            assert!(band.contains(id), "skyband must be monotone in k");
        }
        previous = band;
    }
}

#[test]
fn label_histogram_is_a_usable_fourth_dimension() {
    let data = figure3_database();
    let db = GraphDatabase::from_parts(data.vocab, data.graphs);
    let opts = QueryOptions {
        measures: vec![
            MeasureKind::EditDistance,
            MeasureKind::Mcs,
            MeasureKind::Gu,
            MeasureKind::LabelHistogram,
        ],
        ..Default::default()
    };
    let r = graph_similarity_skyline(&db, &data.query, &opts);
    assert!(r.gcs.iter().all(|g| g.values.len() == 4));
    // DistLH ∈ [0, 1] everywhere and zero only for label-identical graphs.
    for gcs in &r.gcs {
        let lh = gcs.values[3];
        assert!((0.0..=1.0).contains(&lh));
    }
    // g7 ⊃ q: vertex labels identical (A–F both sides, mismatch 0); edge
    // labels are 6×"-" vs 10×"-" (mismatch 4). Total label occurrences =
    // (6+6) vertices + (6+10) edges = 28, so DistLH(g7, q) = 4/28.
    let g7 = &r.gcs[6];
    let expected = 4.0 / 28.0;
    assert!((g7.values[3] - expected).abs() < 1e-12);
}

#[test]
fn wl_fingerprint_constant_across_runs_and_isomorphs() {
    let data = figure3_database();
    // Pin a fingerprint's determinism (same value in two computations).
    let f1 = wl_fingerprint(&data.query, 2);
    let f2 = wl_fingerprint(&data.query, 2);
    assert_eq!(f1, f2);
    // The database graphs all differ from the query.
    for g in &data.graphs {
        assert_ne!(wl_fingerprint(g, 2), f1, "{} vs q", g.name());
    }
}

#[test]
fn isomorphism_classes_on_a_mixed_database() {
    let mut db = GraphDatabase::new();
    db.add("a1", |b| {
        b.vertices(&["x", "y", "z"], "C")
            .cycle(&["x", "y", "z"], "-")
    })
    .unwrap();
    db.add("b", |b| {
        b.vertices(&["x", "y", "z"], "N")
            .cycle(&["x", "y", "z"], "-")
    })
    .unwrap();
    db.add("a2", |b| {
        b.vertices(&["p", "q", "r"], "C")
            .cycle(&["r", "q", "p"], "-")
    })
    .unwrap();
    let classes = db.isomorphism_classes();
    assert_eq!(classes.len(), 2);
    assert_eq!(db.duplicate_ids().len(), 1);
    // Every class member really is isomorphic to its representative.
    for class in classes {
        for pair in class.windows(2) {
            assert!(are_isomorphic(db.get(pair[0]), db.get(pair[1])));
        }
    }
}

#[test]
fn skyband_respects_witness_counts() {
    // Direct cross-check of the skyband semantics on the paper data:
    // count dominators per graph from the GCS matrix.
    let data = figure3_database();
    let db = GraphDatabase::from_parts(data.vocab, data.graphs);
    let opts = QueryOptions::default();
    let r = graph_similarity_skyline(&db, &data.query, &opts);
    for k in 1..=3 {
        let band = graph_similarity_skyband(&db, &data.query, k, &opts);
        for i in 0..db.len() {
            let dominators = (0..db.len())
                .filter(|&j| {
                    j != i
                        && similarity_skyline::skyline::dominates(
                            &r.gcs[j].values,
                            &r.gcs[i].values,
                        )
                })
                .count();
            assert_eq!(
                band.contains(GraphId(i)),
                dominators < k,
                "g{} with {dominators} dominators vs k={k}",
                i + 1
            );
        }
    }
}
