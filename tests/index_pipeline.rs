//! Property tests for the pivot-index query pipeline.
//!
//! Three families of invariants:
//!
//! 1. **Admissibility** — every partition bound vector produced by an
//!    [`PivotIndex`] plan is ≤ the exact GCS vector of *every* partition
//!    member (an over-estimating bound would make partition skipping
//!    unsound);
//! 2. **Equivalence** — the indexed scan returns *identical* skylines and
//!    domination witnesses to the naive scan, across workload kinds,
//!    thread counts, solver configurations and index shapes;
//! 3. **Persistence** — save → load → query is byte-identical to querying
//!    the in-memory index (same skylines, witnesses, GCS matrix,
//!    evaluated flags and pruning stats), and corrupted artifacts are
//!    rejected up front.
//!
//! Plus one deliberate counterexample pinning down *why* the index only
//! applies the triangle inequality to the GED dimensions.

use std::sync::Arc;

use proptest::prelude::*;
use similarity_skyline::core::measures::compute_primitives;
use similarity_skyline::core::QueryIndex;
use similarity_skyline::datasets::workload::{Workload, WorkloadConfig, WorkloadKind};
use similarity_skyline::index::IndexError;
use similarity_skyline::prelude::*;

fn build_workload(seed: u64, size: usize, kind: WorkloadKind) -> (GraphDatabase, Graph) {
    let cfg = WorkloadConfig {
        kind,
        database_size: size,
        graph_vertices: 5,
        related_fraction: 0.5,
        max_edits: 3,
        seed,
    };
    let w = Workload::generate(&cfg);
    (GraphDatabase::from_parts(w.vocab, w.graphs), w.query)
}

fn indexed_options(
    db: &GraphDatabase,
    pivots: usize,
    rings: usize,
    threads: usize,
    solvers: SolverConfig,
) -> QueryOptions {
    let index = Arc::new(PivotIndex::build(db, &PivotIndexConfig { pivots, rings }));
    QueryOptions {
        threads,
        solvers,
        ..QueryOptions::default()
    }
    .with_index(index)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 20, ..ProptestConfig::default() })]

    #[test]
    fn partition_bounds_are_admissible(
        seed in any::<u64>(),
        size in 2usize..10,
        pivots in 1usize..4,
        rings in 1usize..4,
    ) {
        let (db, q) = build_workload(seed, size, WorkloadKind::Molecule);
        let index = PivotIndex::build(&db, &PivotIndexConfig { pivots, rings });
        let measures = vec![
            MeasureKind::EditDistance,
            MeasureKind::NormalizedEditDistance,
            MeasureKind::Mcs,
            MeasureKind::Gu,
            MeasureKind::LabelHistogram,
        ];
        let plan = index.plan(&db, &q, &measures);
        prop_assert_eq!(plan.pivot_probes, index.pivots().len());
        for part in &plan.partitions {
            for id in &part.members {
                let p = compute_primitives(db.get(*id), &q, &SolverConfig::default());
                for (d, m) in measures.iter().enumerate() {
                    let exact = m.from_primitives(&p);
                    prop_assert!(
                        part.bound.values[d] <= exact + 1e-9,
                        "partition bound {} exceeds exact {} for {} of graph {}",
                        part.bound.values[d], exact, m.name(), id.index()
                    );
                }
            }
        }
    }

    #[test]
    fn indexed_scan_equals_naive_scan(
        seed in any::<u64>(),
        size in 2usize..10,
        molecule in any::<bool>(),
        threads in 1usize..4,
        pivots in 1usize..4,
        rings in 1usize..4,
    ) {
        let kind = if molecule { WorkloadKind::Molecule } else { WorkloadKind::Uniform };
        let (db, q) = build_workload(seed, size, kind);
        let naive = graph_similarity_skyline(&db, &q, &QueryOptions::default());
        let opts = indexed_options(&db, pivots, rings, threads, SolverConfig::default());
        let indexed = graph_similarity_skyline(&db, &q, &opts);
        prop_assert_eq!(&indexed.skyline, &naive.skyline);
        prop_assert_eq!(&indexed.dominated, &naive.dominated, "witnesses must be identical");
        let stats = indexed.pruning.expect("indexed stats");
        prop_assert_eq!(
            stats.verified + stats.pruned + stats.short_circuited + stats.index_skipped,
            db.len()
        );
        // Verified vectors are byte-identical to the naive scan's.
        for i in 0..db.len() {
            if indexed.is_exact(GraphId(i)) {
                prop_assert_eq!(&indexed.gcs[i], &naive.gcs[i]);
            }
        }
    }

    #[test]
    fn indexed_scan_equals_prefilter_and_naive_with_approx_solvers(
        seed in any::<u64>(),
        size in 2usize..8,
        beam in any::<bool>(),
    ) {
        let (db, q) = build_workload(seed, size, WorkloadKind::Molecule);
        let solvers = if beam {
            SolverConfig { ged: GedMode::Beam(4), mcs: McsMode::Greedy }
        } else {
            SolverConfig { ged: GedMode::Bipartite, mcs: McsMode::Greedy }
        };
        let naive = graph_similarity_skyline(
            &db, &q, &QueryOptions { solvers, ..QueryOptions::default() },
        );
        let prefilter = graph_similarity_skyline(
            &db, &q, &QueryOptions { solvers, prefilter: true, ..QueryOptions::default() },
        );
        let indexed = graph_similarity_skyline(
            &db, &q, &indexed_options(&db, 2, 2, 1, solvers),
        );
        prop_assert_eq!(&indexed.skyline, &naive.skyline);
        prop_assert_eq!(&indexed.dominated, &naive.dominated);
        prop_assert_eq!(&prefilter.skyline, &naive.skyline);
    }

    #[test]
    fn save_load_query_is_byte_identical(
        seed in any::<u64>(),
        size in 2usize..8,
        threads in 1usize..4,
        approx in any::<bool>(),
    ) {
        let (db, q) = build_workload(seed, size, WorkloadKind::Molecule);
        let built = PivotIndex::build(&db, &PivotIndexConfig { pivots: 2, rings: 2 });
        let loaded = PivotIndex::from_bytes(&built.to_bytes()).expect("round trip");
        prop_assert_eq!(&loaded, &built, "deserialized index equals the in-memory one");

        let solvers = if approx {
            SolverConfig { ged: GedMode::Bipartite, mcs: McsMode::Greedy }
        } else {
            SolverConfig::default()
        };
        let base = QueryOptions { threads, solvers, ..QueryOptions::default() };
        let mem = graph_similarity_skyline(
            &db, &q, &base.clone().with_index(Arc::new(built)),
        );
        let disk = graph_similarity_skyline(
            &db, &q, &base.with_index(Arc::new(loaded)),
        );
        prop_assert_eq!(&mem.skyline, &disk.skyline);
        prop_assert_eq!(&mem.dominated, &disk.dominated, "witnesses must be identical");
        prop_assert_eq!(&mem.gcs, &disk.gcs, "the full GCS matrix must match");
        prop_assert_eq!(&mem.evaluated, &disk.evaluated);
        prop_assert_eq!(mem.pruning, disk.pruning, "stats must match");
    }

    #[test]
    fn serialized_index_rejects_any_single_byte_flip(
        seed in any::<u64>(),
        flip in any::<u64>(),
    ) {
        let (db, _) = build_workload(seed, 4, WorkloadKind::Molecule);
        let bytes = PivotIndex::build(&db, &PivotIndexConfig { pivots: 2, rings: 2 }).to_bytes();
        let at = (flip as usize) % bytes.len();
        let mut bad = bytes.clone();
        bad[at] ^= 0x10;
        // Any flip lands in the magic (BadMagic), the checksum tail, or the
        // checksummed payload — never in a silently-accepted region.
        prop_assert!(
            matches!(PivotIndex::from_bytes(&bad), Err(IndexError::Codec(_))),
            "flipping byte {} of {} must be rejected", at, bytes.len()
        );
    }
}

/// The C6 counterexample from the `gss-index` crate docs, kept as an
/// executable fact: `DistMcs` under the *connected* MCS violates the
/// triangle inequality, so the index must never apply pivot triangle
/// bounds to the MCS dimensions. If this test ever fails, the measure
/// changed and the index's bound strategy needs re-auditing.
#[test]
fn connected_mcs_distance_violates_triangle_inequality() {
    let mut db = GraphDatabase::new();
    let labels = ["L1", "L2", "L3", "L4", "L5", "L6"];
    let cycle: Vec<(usize, usize)> = (0..6).map(|i| (i, (i + 1) % 6)).collect();
    // g2 = C6; g1 drops edge (5,0); g3 drops edge (2,3).
    let add_path = |db: &mut GraphDatabase, name: &str, skip: Option<usize>| {
        db.add(name, |mut b| {
            for (i, l) in labels.iter().enumerate() {
                b = b.vertex(&format!("v{i}"), l);
            }
            for (e, &(u, v)) in cycle.iter().enumerate() {
                if Some(e) != skip {
                    b = b.edge(&format!("v{u}"), &format!("v{v}"), "-");
                }
            }
            b
        })
        .unwrap()
    };
    let g1 = add_path(&mut db, "g1", Some(5));
    let g2 = add_path(&mut db, "g2", None);
    let g3 = add_path(&mut db, "g3", Some(2));

    let dist = |a: GraphId, b: GraphId| {
        let p = compute_primitives(db.get(a), db.get(b), &SolverConfig::default());
        MeasureKind::Mcs.from_primitives(&p)
    };
    let d12 = dist(g1, g2);
    let d23 = dist(g2, g3);
    let d13 = dist(g1, g3);
    assert!((d12 - 1.0 / 6.0).abs() < 1e-12, "d12 = {d12}");
    assert!((d23 - 1.0 / 6.0).abs() < 1e-12, "d23 = {d23}");
    assert!((d13 - 3.0 / 5.0).abs() < 1e-12, "d13 = {d13}");
    assert!(
        d13 > d12 + d23 + 0.2,
        "triangle inequality must fail decisively: {d13} vs {} — \
         if it holds now, the MCS measure changed and gss-index needs a re-audit",
        d12 + d23
    );
}
