//! Property tests for the unified planner and staged executor
//! (`gss_core::exec`).
//!
//! Four families of invariants:
//!
//! 1. **Plan parity** — all five plans (`Auto | Naive | Prefilter |
//!    Indexed | Sharded`) yield byte-identical skylines, domination
//!    witnesses, verified GCS vectors and skyband memberships, across
//!    workload kinds, thread counts and solver configurations;
//! 2. **Shard invariance** — the sharded plan's *entire serialized
//!    explain document* is byte-identical across shard counts (the
//!    server's cache key exempts `shards`, so this is load-bearing);
//! 3. **Auto economy** — `Plan::Auto` never performs more exact solver
//!    calls than the best manual plan on the same query;
//! 4. **Cancellation** — a fired [`CancelToken`] aborts every plan (and
//!    each query of a batch independently) instead of returning a partial
//!    answer.

use std::sync::Arc;

use proptest::prelude::*;
use similarity_skyline::core::{
    try_graph_similarity_skyband, try_graph_similarity_skyline_batch, QueryIndex,
};
use similarity_skyline::datasets::workload::{Workload, WorkloadConfig, WorkloadKind};
use similarity_skyline::prelude::*;

const ALL_PLANS: [Plan; 5] = [
    Plan::Auto,
    Plan::Naive,
    Plan::Prefilter,
    Plan::Indexed,
    Plan::Sharded,
];

fn build_workload(seed: u64, size: usize, kind: WorkloadKind) -> (GraphDatabase, Graph) {
    let cfg = WorkloadConfig {
        kind,
        database_size: size,
        graph_vertices: 5,
        related_fraction: 0.5,
        max_edits: 3,
        seed,
    };
    let w = Workload::generate(&cfg);
    (GraphDatabase::from_parts(w.vocab, w.graphs), w.query)
}

/// Options with the index attached (so `Indexed` and `Auto` can use it)
/// and an explicit plan.
fn plan_options(
    index: &Arc<PivotIndex>,
    plan: Plan,
    threads: usize,
    solvers: SolverConfig,
) -> QueryOptions {
    QueryOptions {
        threads,
        solvers,
        plan,
        index: Some(Arc::clone(index) as Arc<dyn QueryIndex>),
        ..QueryOptions::default()
    }
}

/// Exact solver calls a result cost: the `verified` counter for pruned
/// plans, the full candidate count for a naive scan.
fn solver_calls(r: &GssResult) -> usize {
    r.pruning.map_or(r.gcs.len(), |p| p.verified)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn all_plans_agree_on_skyline_witnesses_and_vectors(
        seed in any::<u64>(),
        size in 2usize..10,
        molecule in any::<bool>(),
        threads in 1usize..4,
        pivots in 1usize..4,
        rings in 1usize..4,
        approx in any::<bool>(),
    ) {
        let kind = if molecule { WorkloadKind::Molecule } else { WorkloadKind::Uniform };
        let (db, q) = build_workload(seed, size, kind);
        let index = Arc::new(PivotIndex::build(&db, &PivotIndexConfig { pivots, rings }));
        let solvers = if approx {
            SolverConfig { ged: GedMode::Bipartite, mcs: McsMode::Greedy }
        } else {
            SolverConfig::default()
        };
        let baseline = graph_similarity_skyline(
            &db, &q, &plan_options(&index, Plan::Naive, 1, solvers),
        );
        prop_assert_eq!(baseline.plan, ResolvedPlan::Naive);
        prop_assert!(baseline.pruning.is_none());
        for plan in ALL_PLANS {
            let r = graph_similarity_skyline(
                &db, &q, &plan_options(&index, plan, threads, solvers),
            );
            prop_assert_eq!(&r.skyline, &baseline.skyline, "{:?}", plan);
            prop_assert_eq!(&r.dominated, &baseline.dominated, "{:?} witnesses", plan);
            prop_assert_eq!(r.measures.len(), baseline.measures.len());
            // Verified vectors are byte-identical to the naive scan's;
            // pruned entries hold admissible lower bounds.
            for i in 0..db.len() {
                if r.is_exact(GraphId(i)) {
                    prop_assert_eq!(&r.gcs[i], &baseline.gcs[i], "{:?} g{}", plan, i);
                } else {
                    for (lb, ex) in r.gcs[i].values.iter().zip(&baseline.gcs[i].values) {
                        prop_assert!(lb <= &(ex + 1e-9), "{:?} g{}", plan, i);
                    }
                }
            }
            if let Some(stats) = &r.pruning {
                prop_assert_eq!(
                    stats.verified + stats.pruned + stats.short_circuited + stats.index_skipped,
                    db.len(),
                    "{:?}", plan
                );
            }
        }
        // An index attached under Auto resolves to the indexed strategy.
        let auto = graph_similarity_skyline(&db, &q, &plan_options(&index, Plan::Auto, 1, solvers));
        prop_assert_eq!(auto.plan, ResolvedPlan::Indexed);
    }

    #[test]
    fn all_plans_agree_on_skyband_membership(
        seed in any::<u64>(),
        size in 2usize..10,
        k in 0usize..4,
        threads in 1usize..4,
        approx in any::<bool>(),
    ) {
        let (db, q) = build_workload(seed, size, WorkloadKind::Molecule);
        let index = Arc::new(PivotIndex::build(&db, &PivotIndexConfig { pivots: 2, rings: 2 }));
        let solvers = if approx {
            SolverConfig { ged: GedMode::Bipartite, mcs: McsMode::Greedy }
        } else {
            SolverConfig::default()
        };
        let baseline = graph_similarity_skyband(
            &db, &q, k, &plan_options(&index, Plan::Naive, 1, solvers),
        );
        prop_assert!(baseline.pruning.is_none());
        for plan in ALL_PLANS {
            let band = graph_similarity_skyband(
                &db, &q, k, &plan_options(&index, plan, threads, solvers),
            );
            prop_assert_eq!(&band.members, &baseline.members, "{:?} k={}", plan, k);
            prop_assert_eq!(band.k, k);
        }
        // The k = 1 band is exactly the skyline member set, under any plan.
        if k == 1 {
            let sky = graph_similarity_skyline(
                &db, &q, &plan_options(&index, Plan::Prefilter, 1, solvers),
            );
            prop_assert_eq!(&baseline.members, &sky.skyline);
        }
    }

    #[test]
    fn sharded_documents_are_byte_identical_across_shard_and_thread_counts(
        seed in any::<u64>(),
        size in 2usize..14,
        molecule in any::<bool>(),
        approx in any::<bool>(),
        k in 0usize..3,
    ) {
        let kind = if molecule { WorkloadKind::Molecule } else { WorkloadKind::Uniform };
        let (db, q) = build_workload(seed, size, kind);
        let solvers = if approx {
            SolverConfig { ged: GedMode::Bipartite, mcs: McsMode::Greedy }
        } else {
            SolverConfig::default()
        };
        let sharded = |shards: usize, threads: usize| QueryOptions {
            threads,
            solvers,
            ..QueryOptions::default()
        }
        .with_shards(shards);
        let naive = graph_similarity_skyline(
            &db, &q,
            &QueryOptions { solvers, plan: Plan::Naive, ..QueryOptions::default() },
        );

        // The shard count is *not* part of the server's cache key, so the
        // whole explain document — answer set, witnesses, reported
        // vectors, pruning stats — must not depend on it (nor on the
        // thread count fanning the shards out).
        let reference = similarity_skyline::core::to_json(
            &db,
            &graph_similarity_skyline(&db, &q, &sharded(1, 1)),
        );
        for shards in [2usize, 3, 5, 16] {
            for threads in [1usize, 3] {
                let r = graph_similarity_skyline(&db, &q, &sharded(shards, threads));
                prop_assert_eq!(r.plan, ResolvedPlan::Sharded);
                prop_assert_eq!(&r.skyline, &naive.skyline, "shards={}", shards);
                prop_assert_eq!(&r.dominated, &naive.dominated, "shards={} witnesses", shards);
                prop_assert_eq!(
                    &similarity_skyline::core::to_json(&db, &r), &reference,
                    "document drifted at shards={} threads={}", shards, threads
                );
            }
        }

        // Skyband membership is likewise shard-invariant.
        let band = graph_similarity_skyband(
            &db, &q, k,
            &QueryOptions { solvers, plan: Plan::Naive, ..QueryOptions::default() },
        );
        for shards in [2usize, 7] {
            let b = graph_similarity_skyband(&db, &q, k, &sharded(shards, 2));
            prop_assert_eq!(&b.members, &band.members, "k={} shards={}", k, shards);
        }
    }

    #[test]
    fn auto_plan_never_costs_more_solver_calls_than_the_best_manual_plan(
        seed in any::<u64>(),
        size in 2usize..24,
        with_index in any::<bool>(),
    ) {
        let (db, q) = build_workload(seed, size, WorkloadKind::Molecule);
        let index = Arc::new(PivotIndex::build(&db, &PivotIndexConfig { pivots: 2, rings: 2 }));
        let options = |plan: Plan| -> QueryOptions {
            let idx = with_index.then(|| Arc::clone(&index) as Arc<dyn QueryIndex>);
            QueryOptions { plan, index: idx, ..QueryOptions::default() }
        };
        let mut manual_best = usize::MAX;
        for plan in [Plan::Naive, Plan::Prefilter] {
            manual_best =
                manual_best.min(solver_calls(&graph_similarity_skyline(&db, &q, &options(plan))));
        }
        if with_index {
            manual_best = manual_best
                .min(solver_calls(&graph_similarity_skyline(&db, &q, &options(Plan::Indexed))));
        }
        let auto = graph_similarity_skyline(&db, &q, &options(Plan::Auto));
        if with_index || size >= similarity_skyline::core::exec::AUTO_PREFILTER_MIN {
            // Once Auto resolves to a pruned strategy it is solver-optimal:
            // prefilter never verifies more than naive, and the indexed
            // scan never verifies more than prefilter.
            prop_assert!(auto.plan != ResolvedPlan::Naive);
            prop_assert!(
                solver_calls(&auto) <= manual_best,
                "auto ({:?}) ran {} solver calls, best manual plan ran {}",
                auto.plan, solver_calls(&auto), manual_best
            );
        } else {
            // Tiny databases resolve to the naive scan on purpose (the
            // answers are identical and the scan is microseconds either
            // way); the solver-call guarantee starts at the threshold.
            prop_assert_eq!(auto.plan, ResolvedPlan::Naive);
            prop_assert_eq!(solver_calls(&auto), db.len());
        }
    }

    #[test]
    fn fired_tokens_abort_every_plan_and_batch_queries_independently(
        seed in any::<u64>(),
        size in 2usize..8,
    ) {
        let (db, q) = build_workload(seed, size, WorkloadKind::Molecule);
        let index = Arc::new(PivotIndex::build(&db, &PivotIndexConfig { pivots: 2, rings: 2 }));
        let fired = CancelToken::new();
        fired.cancel();
        for plan in ALL_PLANS {
            let opts = plan_options(&index, plan, 1, SolverConfig::default());
            prop_assert_eq!(
                try_graph_similarity_skyline(&db, &q, &opts, &fired).err(),
                Some(Cancelled),
                "{:?}", plan
            );
            prop_assert!(
                try_graph_similarity_skyband(&db, &q, 2, &opts, &fired).is_err(),
                "{:?} skyband", plan
            );
        }
        // Batch: only the cancelled slot errors; its neighbour still
        // returns the full answer.
        let live = CancelToken::new();
        let queries = vec![q.clone(), q.clone()];
        let results = try_graph_similarity_skyline_batch(
            &db,
            &queries,
            &QueryOptions::default(),
            &[live, fired],
        );
        let direct = graph_similarity_skyline(&db, &q, &QueryOptions::default());
        let ok = results[0].as_ref().expect("live token completes");
        prop_assert_eq!(&ok.skyline, &direct.skyline);
        prop_assert_eq!(&ok.dominated, &direct.dominated);
        prop_assert!(results[1].is_err());
    }
}
