//! Property tests for the filter-and-verify pipeline.
//!
//! Two families of invariants:
//!
//! 1. **Admissibility** — every prefilter lower bound is ≤ its exact
//!    distance on random synthetic graphs (lower bounds that could exceed
//!    the exact value would make pruning unsound);
//! 2. **Equivalence** — the pruned scan returns *identical* skylines and
//!    domination witnesses to the naive scan, across workload kinds, thread
//!    counts and solver configurations.

use proptest::prelude::*;
use similarity_skyline::core::prefilter::{summarize, PrefilterContext};
use similarity_skyline::core::{compute_primitives, graph_similarity_skyline_batch};
use similarity_skyline::datasets::synth::{perturb, random_connected_graph, RandomGraphConfig};
use similarity_skyline::datasets::workload::{Workload, WorkloadConfig, WorkloadKind};
use similarity_skyline::prelude::*;

const ALL_MEASURES: [MeasureKind; 5] = [
    MeasureKind::EditDistance,
    MeasureKind::NormalizedEditDistance,
    MeasureKind::Mcs,
    MeasureKind::Gu,
    MeasureKind::LabelHistogram,
];

fn random_pair(seed: u64, n1: usize, n2: usize) -> (Graph, Graph) {
    let mut vocab = Vocabulary::new();
    let mut rng = Rng::seed_from_u64(seed);
    let cfg1 = RandomGraphConfig {
        vertices: n1,
        edges: n1 + n1 / 2,
        ..Default::default()
    };
    let cfg2 = RandomGraphConfig {
        vertices: n2,
        edges: n2 + n2 / 2,
        ..Default::default()
    };
    let g1 = random_connected_graph("g1", &cfg1, &mut vocab, &mut rng);
    let g2 = random_connected_graph("g2", &cfg2, &mut vocab, &mut rng);
    (g1, g2)
}

/// An isomorphic copy of `g` with the vertex order reversed: same graph,
/// different encoding — exactly what the WL + VF2 short-circuit must
/// recognize and what approximate solvers may still score as nonzero.
fn permuted_copy(g: &Graph, name: &str) -> Graph {
    use similarity_skyline::graph::VertexId;
    let n = g.order();
    let mut h = Graph::new(name);
    for i in (0..n).rev() {
        h.add_vertex(g.vertex_label(VertexId::new(i)));
    }
    let newid = |old: VertexId| VertexId::new(n - 1 - old.index());
    for e in g.edges() {
        let edge = g.edge(e);
        h.add_edge(newid(edge.u), newid(edge.v), edge.label)
            .expect("copy of a simple graph stays simple");
    }
    h
}

fn build_workload(seed: u64, size: usize, kind: WorkloadKind) -> (GraphDatabase, Graph) {
    let cfg = WorkloadConfig {
        kind,
        database_size: size,
        graph_vertices: 5,
        related_fraction: 0.5,
        max_edits: 3,
        seed,
    };
    let w = Workload::generate(&cfg);
    (GraphDatabase::from_parts(w.vocab, w.graphs), w.query)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn lower_bounds_are_admissible_on_random_graphs(
        seed in any::<u64>(),
        n1 in 2usize..7,
        n2 in 2usize..7,
    ) {
        let (g1, g2) = random_pair(seed, n1, n2);
        let ctx = PrefilterContext::for_query(&g2, &SolverConfig::default(), true);
        let summary = summarize(&g1, &g2, &ALL_MEASURES, &ctx);
        let p = compute_primitives(&g1, &g2, &SolverConfig::default());
        for (i, m) in ALL_MEASURES.iter().enumerate() {
            let exact = m.from_primitives(&p);
            prop_assert!(
                summary.lower.values[i] <= exact + 1e-9,
                "{} lower bound {} exceeds exact {}",
                m.name(), summary.lower.values[i], exact
            );
        }
    }

    #[test]
    fn lower_bounds_are_admissible_on_perturbed_pairs(
        seed in any::<u64>(),
        n in 3usize..7,
        edits in 1usize..4,
    ) {
        // Perturbed pairs are the near-duplicate regime, where bounds are
        // tight and off-by-one unsoundness would actually show.
        let mut vocab = Vocabulary::new();
        let mut rng = Rng::seed_from_u64(seed);
        let cfg = RandomGraphConfig { vertices: n, edges: n + 1, ..Default::default() };
        let g1 = random_connected_graph("g1", &cfg, &mut vocab, &mut rng);
        let g2 = perturb(&g1, edits, &mut vocab, &mut rng, "P");
        let ctx = PrefilterContext::for_query(&g2, &SolverConfig::default(), true);
        let summary = summarize(&g1, &g2, &ALL_MEASURES, &ctx);
        let p = compute_primitives(&g1, &g2, &SolverConfig::default());
        for (i, m) in ALL_MEASURES.iter().enumerate() {
            prop_assert!(summary.lower.values[i] <= m.from_primitives(&p) + 1e-9, "{}", m.name());
        }
        if summary.isomorphic {
            // The short-circuit claims an all-zero exact vector; check it.
            for m in ALL_MEASURES {
                prop_assert_eq!(m.from_primitives(&p), 0.0);
            }
        }
    }

    #[test]
    fn pruned_scan_equals_naive_scan(
        seed in any::<u64>(),
        size in 2usize..10,
        molecule in any::<bool>(),
        threads in 1usize..4,
    ) {
        let kind = if molecule { WorkloadKind::Molecule } else { WorkloadKind::Uniform };
        let (db, q) = build_workload(seed, size, kind);
        let naive = graph_similarity_skyline(&db, &q, &QueryOptions::default());
        let pruned = graph_similarity_skyline(
            &db, &q,
            &QueryOptions { prefilter: true, threads, ..QueryOptions::default() },
        );
        prop_assert_eq!(&pruned.skyline, &naive.skyline);
        prop_assert_eq!(&pruned.dominated, &naive.dominated, "witnesses must be identical");
        let stats = pruned.pruning.expect("prefilter stats");
        prop_assert_eq!(stats.verified + stats.pruned + stats.short_circuited, db.len());
        // Verified vectors are byte-identical to the naive scan's.
        for i in 0..db.len() {
            if pruned.is_exact(GraphId(i)) {
                prop_assert_eq!(&pruned.gcs[i], &naive.gcs[i]);
            }
        }
    }

    #[test]
    fn pruned_scan_equals_naive_scan_with_approx_solvers(
        seed in any::<u64>(),
        size in 2usize..8,
    ) {
        let (db, q) = build_workload(seed, size, WorkloadKind::Molecule);
        let solvers = SolverConfig { ged: GedMode::Bipartite, mcs: McsMode::Greedy };
        let naive = graph_similarity_skyline(
            &db, &q, &QueryOptions { solvers, ..QueryOptions::default() },
        );
        let pruned = graph_similarity_skyline(
            &db, &q,
            &QueryOptions { solvers, prefilter: true, ..QueryOptions::default() },
        );
        prop_assert_eq!(&pruned.skyline, &naive.skyline);
        prop_assert_eq!(&pruned.dominated, &naive.dominated);
    }

    #[test]
    fn batch_api_matches_per_query_results(
        seed in any::<u64>(),
        size in 2usize..7,
        queries in 1usize..4,
        prefilter in any::<bool>(),
    ) {
        let (db, q) = build_workload(seed, size, WorkloadKind::Molecule);
        // Query set: the workload query plus some database members.
        let mut qs: Vec<Graph> = vec![q];
        for i in 0..queries.min(db.len()) {
            qs.push(db.get(GraphId(i)).clone());
        }
        let opts = QueryOptions { prefilter, threads: 3, ..QueryOptions::default() };
        let batch = graph_similarity_skyline_batch(&db, &qs, &opts);
        prop_assert_eq!(batch.len(), qs.len());
        let single_opts = QueryOptions { prefilter, ..QueryOptions::default() };
        for (i, query) in qs.iter().enumerate() {
            let single = graph_similarity_skyline(&db, query, &single_opts);
            prop_assert_eq!(&batch[i].skyline, &single.skyline, "query {}", i);
            prop_assert_eq!(&batch[i].dominated, &single.dominated, "query {}", i);
        }
    }

    #[test]
    fn permuted_duplicate_stays_equivalent_under_all_solvers(
        seed in any::<u64>(),
        size in 2usize..7,
    ) {
        // Regression: a vertex-permuted isomorphic copy of the query used to
        // short-circuit to an exact zero vector even under approximate
        // solvers, where the naive scan reports nonzero bipartite/greedy
        // values — changing the skyline. The short-circuit is now gated on
        // exact solvers.
        let (mut db, q) = build_workload(seed, size, WorkloadKind::Molecule);
        let copy = db.push(permuted_copy(&q, "twin"));
        for solvers in [
            SolverConfig::default(),
            SolverConfig { ged: GedMode::Bipartite, mcs: McsMode::Greedy },
            SolverConfig { ged: GedMode::Beam(4), mcs: McsMode::Greedy },
        ] {
            let naive = graph_similarity_skyline(
                &db, &q, &QueryOptions { solvers, ..QueryOptions::default() },
            );
            let pruned = graph_similarity_skyline(
                &db, &q,
                &QueryOptions { solvers, prefilter: true, ..QueryOptions::default() },
            );
            prop_assert_eq!(&pruned.skyline, &naive.skyline, "{:?}", solvers);
            prop_assert_eq!(&pruned.dominated, &naive.dominated, "{:?}", solvers);
        }
        // With exact solvers the copy short-circuits and tops the skyline.
        let r = graph_similarity_skyline(
            &db, &q, &QueryOptions { prefilter: true, ..QueryOptions::default() },
        );
        prop_assert!(r.contains(copy));
        prop_assert!(r.pruning.expect("stats").short_circuited >= 1);
    }

    #[test]
    fn planted_duplicate_short_circuits_and_prunes(
        seed in any::<u64>(),
        size in 2usize..8,
    ) {
        let (mut db, q) = build_workload(seed, size, WorkloadKind::Molecule);
        let copy = db.push(q.clone());
        let r = graph_similarity_skyline(
            &db, &q, &QueryOptions { prefilter: true, ..QueryOptions::default() },
        );
        prop_assert!(r.contains(copy), "an exact duplicate is Pareto-optimal");
        let stats = r.pruning.expect("stats");
        prop_assert!(stats.short_circuited >= 1, "the planted copy must short-circuit");
        let naive = graph_similarity_skyline(&db, &q, &QueryOptions::default());
        prop_assert_eq!(&r.skyline, &naive.skyline);
        prop_assert_eq!(&r.dominated, &naive.dominated);
    }
}
