//! Property test: serialization round-trips for arbitrary generated graphs.

use proptest::prelude::*;
use similarity_skyline::datasets::synth::{random_connected_graph, RandomGraphConfig};
use similarity_skyline::graph::format::{parse_database, to_dot, write_database};
use similarity_skyline::graph::Rng as GssRng;
use similarity_skyline::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn text_round_trip_preserves_structure(
        seed in any::<u64>(),
        n in 1usize..12,
        extra in 0usize..8,
        labels in 1usize..5,
    ) {
        let mut vocab = Vocabulary::new();
        let mut rng = GssRng::seed_from_u64(seed);
        let cfg = RandomGraphConfig {
            vertices: n,
            edges: n.saturating_sub(1) + extra,
            vertex_alphabet: (0..labels).map(|i| format!("V{i}")).collect(),
            edge_alphabet: vec!["-".into(), "=".into()],
        };
        let g = random_connected_graph("roundtrip", &cfg, &mut vocab, &mut rng);

        let text = write_database(std::slice::from_ref(&g), &vocab);
        let mut vocab2 = Vocabulary::new();
        let parsed = parse_database(&text, &mut vocab2).expect("own output must parse");
        prop_assert_eq!(parsed.len(), 1);
        let h = &parsed[0];
        prop_assert_eq!(h.name(), g.name());
        prop_assert_eq!(h.order(), g.order());
        prop_assert_eq!(h.size(), g.size());
        // Structural equality via label names (ids may differ across vocabs).
        for v in g.vertices() {
            prop_assert_eq!(
                vocab.name(g.vertex_label(v)),
                vocab2.name(h.vertex_label(v))
            );
        }
        for e in g.edges() {
            let ge = g.edge(e);
            let he = h.edge(e);
            prop_assert_eq!((ge.u, ge.v), (he.u, he.v));
            prop_assert_eq!(vocab.name(ge.label), vocab2.name(he.label));
        }
        // Idempotence: serialize again, byte-identical.
        let text2 = write_database(&parsed, &vocab2);
        prop_assert_eq!(text, text2);
        // Round-tripped graphs are isomorphic under the matcher too —
        // only meaningful when labels intern to the same ids, which holds
        // when parsing into the original vocabulary.
        let mut vocab3 = vocab.clone();
        let reparsed = parse_database(&write_database(std::slice::from_ref(&g), &vocab), &mut vocab3).unwrap();
        prop_assert!(are_isomorphic(&g, &reparsed[0]));
    }

    #[test]
    fn dot_mentions_every_vertex_and_edge(
        seed in any::<u64>(),
        n in 1usize..8,
    ) {
        let mut vocab = Vocabulary::new();
        let mut rng = GssRng::seed_from_u64(seed);
        let cfg = RandomGraphConfig { vertices: n, edges: n + 1, ..Default::default() };
        let g = random_connected_graph("dot", &cfg, &mut vocab, &mut rng);
        let dot = to_dot(&g, &vocab);
        prop_assert!(dot.starts_with("graph "));
        let closed = dot.trim_end().ends_with('\u{7d}');
        prop_assert!(closed, "dot output must close its block");
        for v in g.vertices() {
            let has_vertex = dot.contains(&format!("n{} ", v.index()));
            prop_assert!(has_vertex, "missing vertex n{}", v.index());
        }
        for e in g.edges() {
            let edge = g.edge(e);
            let has_edge = dot.contains(&format!("n{} -- n{}", edge.u.index(), edge.v.index()));
            prop_assert!(has_edge, "missing edge {:?}", edge);
        }
    }
}
