//! Property-based tests of the measure layer.
//!
//! The paper cites metricity results for its measures: uniform GED is a
//! metric; `DistMcs` (Bunke & Shearer 1998) and `DistGu` (Wallis et al.
//! 2001) are metrics on connected graphs; `SimGu ≤ SimMcs` (Section IV-C).
//! These properties are exercised here on deterministic random connected
//! graphs driven by proptest-chosen seeds.

use proptest::prelude::*;
use similarity_skyline::core::{compute_primitives, MeasureKind, SolverConfig};
use similarity_skyline::datasets::synth::{random_connected_graph, RandomGraphConfig};
use similarity_skyline::graph::Rng as GssRng;
use similarity_skyline::prelude::*;

/// Builds a small connected random graph from a proptest-chosen seed.
fn graph_from_seed(seed: u64, n: usize, m: usize, vocab: &mut Vocabulary) -> Graph {
    let mut rng = GssRng::seed_from_u64(seed);
    let cfg = RandomGraphConfig {
        vertices: n,
        edges: m,
        vertex_alphabet: vec!["A".into(), "B".into(), "C".into()],
        edge_alphabet: vec!["-".into(), "=".into()],
    };
    random_connected_graph("g", &cfg, vocab, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn ged_identity_symmetry_nonnegativity(
        s1 in any::<u64>(), s2 in any::<u64>(),
        n1 in 1usize..6, n2 in 1usize..6,
    ) {
        let mut vocab = Vocabulary::new();
        let g1 = graph_from_seed(s1, n1, n1 + 1, &mut vocab);
        let g2 = graph_from_seed(s2, n2, n2 + 1, &mut vocab);
        let d12 = ged(&g1, &g2);
        let d21 = ged(&g2, &g1);
        prop_assert!(d12 >= 0.0);
        prop_assert_eq!(d12, d21, "symmetry");
        prop_assert_eq!(ged(&g1, &g1), 0.0, "identity");
        // d = 0 ⟺ isomorphic (uniform costs).
        prop_assert_eq!(d12 == 0.0, are_isomorphic(&g1, &g2));
    }

    #[test]
    fn ged_triangle_inequality(
        s1 in any::<u64>(), s2 in any::<u64>(), s3 in any::<u64>(),
        n in 1usize..5,
    ) {
        let mut vocab = Vocabulary::new();
        let a = graph_from_seed(s1, n, n, &mut vocab);
        let b = graph_from_seed(s2, n + 1, n + 1, &mut vocab);
        let c = graph_from_seed(s3, n, n + 2, &mut vocab);
        let ab = ged(&a, &b);
        let bc = ged(&b, &c);
        let ac = ged(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-9, "triangle: {} > {} + {}", ac, ab, bc);
    }

    #[test]
    fn mcs_bounds_and_normalization(
        s1 in any::<u64>(), s2 in any::<u64>(),
        n1 in 2usize..6, n2 in 2usize..6,
    ) {
        let mut vocab = Vocabulary::new();
        let g1 = graph_from_seed(s1, n1, n1 + 1, &mut vocab);
        let g2 = graph_from_seed(s2, n2, n2 + 1, &mut vocab);
        let m = mcs_edge_size(&g1, &g2);
        prop_assert!(m <= g1.size().min(g2.size()), "|mcs| ≤ min sizes");
        prop_assert_eq!(m, mcs_edge_size(&g2, &g1), "mcs size symmetric");

        let p = compute_primitives(&g1, &g2, &SolverConfig::default());
        let dist_mcs = MeasureKind::Mcs.from_primitives(&p);
        let dist_gu = MeasureKind::Gu.from_primitives(&p);
        let dist_ned = MeasureKind::NormalizedEditDistance.from_primitives(&p);
        prop_assert!((0.0..=1.0).contains(&dist_mcs));
        prop_assert!((0.0..=1.0).contains(&dist_gu));
        prop_assert!((0.0..1.0).contains(&dist_ned));
        // Section IV-C: SimGu ≤ SimMcs ⟺ DistGu ≥ DistMcs.
        prop_assert!(dist_gu >= dist_mcs - 1e-12, "DistGu ≥ DistMcs");
    }

    #[test]
    fn mcs_of_connected_graph_with_itself_is_its_size(
        s in any::<u64>(), n in 2usize..6,
    ) {
        let mut vocab = Vocabulary::new();
        let g = graph_from_seed(s, n, n + 1, &mut vocab);
        prop_assert!(similarity_skyline::graph::algo::is_connected(&g));
        prop_assert_eq!(mcs_edge_size(&g, &g), g.size());
        let p = compute_primitives(&g, &g, &SolverConfig::default());
        prop_assert_eq!(MeasureKind::Mcs.from_primitives(&p), 0.0);
        prop_assert_eq!(MeasureKind::Gu.from_primitives(&p), 0.0);
    }

    #[test]
    fn ged_lower_bound_is_admissible(
        s1 in any::<u64>(), s2 in any::<u64>(), n in 1usize..6,
    ) {
        let mut vocab = Vocabulary::new();
        let g1 = graph_from_seed(s1, n, n + 1, &mut vocab);
        let g2 = graph_from_seed(s2, n + 1, n + 2, &mut vocab);
        prop_assert!(similarity_skyline::ged::lower_bound(&g1, &g2) <= ged(&g1, &g2) + 1e-9);
    }

    #[test]
    fn subgraph_relation_implies_mcs_equals_pattern_size(
        s in any::<u64>(), n in 2usize..6,
    ) {
        let mut vocab = Vocabulary::new();
        let host = graph_from_seed(s, n + 2, n + 4, &mut vocab);
        // Use the host's own connected subgraph: drop nothing — host vs host
        // is trivial, so instead check: q ⊆ host ⟹ |mcs(q, host)| = |q| for
        // a connected pattern extracted from the host.
        let edges: Vec<_> = host.edges().take(2).collect();
        let sub = host.edge_induced_subgraph(&edges);
        if similarity_skyline::graph::algo::is_connected(&sub) && sub.size() > 0 {
            prop_assert!(is_subgraph_isomorphic(&sub, &host));
            prop_assert_eq!(mcs_edge_size(&sub, &host), sub.size());
        }
    }
}
