//! End-to-end loopback tests for the `gss-server` serving subsystem.
//!
//! The core guarantees under test:
//!
//! 1. **Concurrent correctness** — N client threads hammering one server
//!    receive, for every query, a result document byte-identical to the
//!    single-threaded oracle (`graph_similarity_skyline` + `to_json`,
//!    compacted by the same `jsonio` writer).
//! 2. **Cache identity** — repeated queries are answered from the result
//!    cache (`cached: true`) with payloads byte-identical to the fresh
//!    evaluation, across random workloads and option sets (property
//!    test).
//! 3. **Front-end identity** — the epoll reactor and the legacy
//!    thread-per-connection front end serve byte-identical wire lines
//!    for the same traffic, and the reactor preserves per-connection
//!    request order under pipelining.
//! 4. **Protocol behavior** — stats counters, deadlines, graceful drain.
//!
//! Clients speak the typed [`similarity_skyline::protocol`] envelopes;
//! raw `send_line` is reserved for malformed-input and byte-parity
//! checks.

use std::sync::Arc;

use proptest::prelude::*;
use proptest::TestCaseError;
use similarity_skyline::core::jsonio::Value;
use similarity_skyline::datasets::workload::{Workload, WorkloadConfig, WorkloadKind};
use similarity_skyline::prelude::*;
use similarity_skyline::protocol::{QueryEnvelope, QueryOverrides, Request, Response};
use similarity_skyline::server::{serve, Client, ServerConfig};

/// The single-threaded oracle: what the server must serve, byte for byte.
fn oracle(db: &GraphDatabase, query: &Graph, options: &QueryOptions) -> String {
    let result = similarity_skyline::core::graph_similarity_skyline(
        db,
        query,
        &QueryOptions {
            threads: 1,
            ..options.clone()
        },
    );
    Value::parse(&similarity_skyline::core::to_json(db, &result))
        .expect("explain output is valid JSON")
        .to_compact()
}

fn workload_db(size: usize, seed: u64) -> (GraphDatabase, Vec<Graph>) {
    let w = Workload::generate(&WorkloadConfig {
        kind: WorkloadKind::Molecule,
        database_size: size,
        graph_vertices: 6,
        related_fraction: 0.4,
        max_edits: 3,
        seed,
    });
    let db = GraphDatabase::from_parts(w.vocab, w.graphs);
    // Queries: the planted query plus a handful of database members (their
    // skylines are nontrivial and they exercise the isomorphism
    // short-circuit).
    let mut queries = vec![w.query];
    for i in (0..db.len()).step_by(db.len().div_ceil(4).max(1)) {
        queries.push(db.get(GraphId(i)).clone());
    }
    (db, queries)
}

fn graph_text(db: &GraphDatabase, g: &Graph) -> String {
    similarity_skyline::graph::format::write_database(std::slice::from_ref(g), db.vocab())
}

/// A `query` request with per-request overrides (the builder covers the
/// per-connection case; tests that mix option sets on one connection go
/// through the envelope directly).
fn query_request(text: &str, overrides: &QueryOverrides) -> Request {
    Request::Query(Box::new(QueryEnvelope {
        id: None,
        graph: text.to_owned(),
        overrides: overrides.clone(),
        deadline_ms: None,
    }))
}

#[test]
fn concurrent_clients_match_the_single_threaded_oracle() {
    let (db, queries) = workload_db(24, 0xBEEF);
    let db = Arc::new(db);
    let handle = serve(
        Arc::clone(&db),
        QueryOptions::default(),
        ServerConfig {
            workers: 3,
            batch_max: 4,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = handle.addr();

    // Oracle answers per (query, options) pair, computed once up front.
    let option_sets: Vec<(QueryOverrides, QueryOptions)> = vec![
        (QueryOverrides::default(), QueryOptions::default()),
        (
            QueryOverrides {
                prefilter: Some(true),
                ..QueryOverrides::default()
            },
            QueryOptions {
                prefilter: true,
                ..QueryOptions::default()
            },
        ),
    ];
    let expected: Vec<Vec<String>> = option_sets
        .iter()
        .map(|(_, opts)| queries.iter().map(|q| oracle(&db, q, opts)).collect())
        .collect();

    // ≥ 4 concurrent clients, each issuing every (query, options) pair
    // twice in its own order — plenty of cache hits and batch overlap.
    const CLIENTS: usize = 6;
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let db = &db;
            let queries = &queries;
            let option_sets = &option_sets;
            let expected = &expected;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for round in 0..2 {
                    for (oi, (overrides, _)) in option_sets.iter().enumerate() {
                        for qi in 0..queries.len() {
                            // Stagger the order per client so batches mix
                            // different queries and option groups.
                            let qi = (qi + c + round) % queries.len();
                            let text = graph_text(db, &queries[qi]);
                            let response = client
                                .request(&query_request(&text, overrides))
                                .expect("query");
                            let served = match response {
                                Response::Result { result, .. } => result,
                                other => panic!("client {c}: {other:?}"),
                            };
                            assert_eq!(
                                served, expected[oi][qi],
                                "client {c} round {round} query {qi} option set {oi}"
                            );
                        }
                    }
                }
            });
        }
    });

    // Traffic shape: every query answered, cache hits happened, and the
    // dispatcher actually micro-batched (batched queries ≥ batches ≥ 1).
    let stats = Value::parse(&handle.stats_json()).expect("stats JSON");
    let count = |k: &str| stats.get(k).and_then(Value::as_f64).expect(k);
    let total = (CLIENTS * 2 * option_sets.len() * queries.len()) as f64;
    assert_eq!(count("queries"), total);
    assert!(count("cache_hits") > 0.0, "{stats:?}");
    assert_eq!(count("rejected"), 0.0, "{stats:?}");
    assert!(count("batches") >= 1.0);
    assert!(count("batched_queries") >= count("batches"));
    assert_eq!(
        count("cache_hits") + count("cache_misses"),
        total,
        "{stats:?}"
    );

    handle.shutdown();
    let final_stats = handle.join();
    assert!(final_stats.contains("\"draining\":true"), "{final_stats}");
}

/// The epoll reactor and the thread-per-connection front end must be
/// indistinguishable on the wire: same request lines in, byte-identical
/// response lines out — across verbs, malformed input, cache hits and
/// option overrides.
#[cfg(target_os = "linux")]
#[test]
fn reactor_and_threaded_front_ends_serve_identical_bytes() {
    let (db, queries) = workload_db(12, 0xFACE);
    let db = Arc::new(db);
    let front_end = |reactor_threads: usize| {
        serve(
            Arc::clone(&db),
            QueryOptions::default(),
            ServerConfig {
                reactor_threads,
                workers: 2,
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback")
    };
    let reactor = front_end(1);
    let threaded = front_end(0);

    let escape = similarity_skyline::core::jsonio::escape;
    let q0 = escape(&graph_text(&db, &queries[0]));
    let q1 = escape(&graph_text(&db, &queries[1]));
    let lines = vec![
        "{\"id\":1,\"op\":\"ping\"}".to_owned(),
        "not json at all".to_owned(),
        "{\"id\":2,\"op\":\"frobnicate\"}".to_owned(),
        "{\"op\":\"query\"}".to_owned(),
        format!("{{\"id\":\"q0\",\"op\":\"query\",\"graph\":\"{q0}\"}}"),
        // Again: served from the cache, so `cached` flips identically.
        format!("{{\"id\":\"q0\",\"op\":\"query\",\"graph\":\"{q0}\"}}"),
        format!("{{\"op\":\"query\",\"graph\":\"{q1}\",\"options\":{{\"prefilter\":true}}}}"),
        format!("{{\"op\":\"query\",\"graph\":\"{q1}\",\"options\":{{\"bogus\":1}}}}"),
        "{\"id\":9,\"op\":\"query\",\"graph\":\"t q\\nv 0\"}".to_owned(),
    ];

    let mut on_reactor = Client::connect(reactor.addr()).expect("connect reactor");
    let mut on_threaded = Client::connect(threaded.addr()).expect("connect threaded");
    for line in &lines {
        let a = on_reactor.send_line(line).expect("reactor response");
        let b = on_threaded.send_line(line).expect("threaded response");
        assert_eq!(a, b, "front ends disagree on {line:?}");
    }

    for handle in [reactor, threaded] {
        handle.shutdown();
        handle.join();
    }
}

/// Pipelined requests on one connection come back strictly in request
/// order, even though pings are answered inline while queries take the
/// dispatcher round-trip (the reactor's sequence-slot ordering).
#[cfg(target_os = "linux")]
#[test]
fn reactor_pipelines_responses_in_request_order() {
    use std::io::{BufRead, BufReader, Write};

    let (db, queries) = workload_db(10, 0xC0DE);
    let db = Arc::new(db);
    let handle = serve(
        Arc::clone(&db),
        QueryOptions::default(),
        ServerConfig {
            // Two reactors: the connection also exercises the accept
            // hand-off (injection) path, not just reactor 0.
            reactor_threads: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");

    let escape = similarity_skyline::core::jsonio::escape;
    let q0 = escape(&graph_text(&db, &queries[0]));
    let q1 = escape(&graph_text(&db, &queries[1]));
    let burst = format!(
        "{{\"id\":1,\"op\":\"ping\"}}\n\
         {{\"id\":2,\"op\":\"query\",\"graph\":\"{q0}\"}}\n\
         {{\"id\":3,\"op\":\"ping\"}}\n\
         garbage\n\
         {{\"id\":5,\"op\":\"query\",\"graph\":\"{q1}\"}}\n\
         {{\"id\":6,\"op\":\"ping\"}}\n"
    );

    let mut stream = std::net::TcpStream::connect(handle.addr()).expect("connect");
    stream.write_all(burst.as_bytes()).expect("write burst");
    stream.flush().expect("flush");

    let mut reader = BufReader::new(stream);
    let mut ids = Vec::new();
    for _ in 0..6 {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).expect("read response") > 0);
        let v = Value::parse(line.trim_end()).expect("response JSON");
        ids.push(v.get("id").and_then(Value::as_f64));
    }
    assert_eq!(
        ids,
        vec![Some(1.0), Some(2.0), Some(3.0), None, Some(5.0), Some(6.0)],
        "responses must arrive in request order"
    );

    handle.shutdown();
    handle.join();
}

#[test]
fn stats_and_drain_protocol() {
    let (db, queries) = workload_db(10, 0x51A7);
    let db = Arc::new(db);
    let handle = serve(
        Arc::clone(&db),
        QueryOptions::default(),
        ServerConfig::default(),
    )
    .expect("bind loopback");

    let mut client = Client::connect(handle.addr()).expect("connect");
    assert!(matches!(
        client.ping().expect("ping"),
        Response::Pong { .. }
    ));
    let text = graph_text(&db, &queries[0]);
    assert!(client.query(&text).expect("query").is_ok());
    let stats = client.stats().expect("stats");
    assert_eq!(stats.get("queries").and_then(Value::as_f64), Some(1.0));
    assert_eq!(stats.get("draining"), Some(&Value::Bool(false)));
    // Totals flow through from the engine's BatchStats aggregation.
    let totals = stats.get("totals").expect("totals");
    assert_eq!(
        totals.get("candidates").and_then(Value::as_f64),
        Some(db.len() as f64)
    );

    // Shutdown over the wire: acknowledged; cached queries may still be
    // served (drain stops admission of *work*, and a hit costs nothing),
    // but anything needing evaluation is refused with backpressure.
    let ack = client.shutdown().expect("shutdown");
    assert!(matches!(ack, Response::Draining { .. }), "{ack:?}");
    match client.query(&text) {
        Ok(Response::Result { cached, .. }) => assert!(cached, "drain admits no work"),
        Ok(other) => panic!("cached replay during drain: {other:?}"),
        Err(_) => {} // connection already torn down — a valid drain outcome
    }
    let uncached = client.request(&query_request(
        &graph_text(&db, &queries[1]),
        &QueryOverrides {
            prefilter: Some(true),
            ..QueryOverrides::default()
        },
    ));
    match uncached {
        Ok(Response::Backpressure { .. }) => {}
        Ok(other) => panic!("drain refusals carry the backpressure hint: {other:?}"),
        Err(_) => {} // ditto
    }
    let final_stats = handle.join();
    assert!(final_stats.contains("\"draining\":true"), "{final_stats}");
}

#[test]
fn deadline_aborts_a_long_query_mid_evaluation() {
    use similarity_skyline::core::{try_graph_similarity_skyline, CancelToken, Plan};
    use std::time::{Duration, Instant};

    const DEADLINE_MS: u64 = 200;
    // Grow the workload until a naive single-threaded scan provably
    // outlives the deadline *in this build mode*: the probe itself runs
    // through the executor with a deadline-armed CancelToken and must be
    // aborted mid-scan. This keeps the server half of the test
    // deterministic on fast and slow machines alike.
    let naive = QueryOptions {
        plan: Plan::Naive,
        ..QueryOptions::default()
    };
    let mut size = 30;
    let calibrated = loop {
        let w = Workload::generate(&WorkloadConfig {
            kind: WorkloadKind::Molecule,
            database_size: size,
            graph_vertices: 7,
            related_fraction: 0.3,
            max_edits: 4,
            seed: 0xABBA,
        });
        let db = GraphDatabase::from_parts(w.vocab, w.graphs);
        let token = CancelToken::with_deadline(Instant::now() + Duration::from_millis(DEADLINE_MS));
        let aborted = try_graph_similarity_skyline(&db, &w.query, &naive, &token).is_err();
        if aborted || size >= 122_880 {
            assert!(
                aborted,
                "even a {size}-graph naive scan finished in {DEADLINE_MS} ms"
            );
            break size;
        }
        size *= 2;
    };
    // Margin against CPU contention: with the whole suite running in
    // parallel the probe can calibrate small (the contended scan is
    // slow), yet the server evaluates later with the machine otherwise
    // idle. A 4× larger database keeps the server-side scan past the
    // deadline even at uncontended speed.
    let w = Workload::generate(&WorkloadConfig {
        kind: WorkloadKind::Molecule,
        database_size: calibrated * 4,
        graph_vertices: 7,
        related_fraction: 0.3,
        max_edits: 4,
        seed: 0xABBA,
    });
    let db = GraphDatabase::from_parts(w.vocab, w.graphs);
    let query = w.query;

    // The server evaluates the same scan (per-query single-threaded);
    // the request's deadline passes while it is being evaluated, so the
    // engine's CancelToken aborts it at a wave checkpoint and the client
    // gets the deadline error — counted as `cancelled`, not as the
    // in-queue `deadline_expired`.
    let db = Arc::new(db);
    let handle = serve(
        Arc::clone(&db),
        naive,
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let mut client = Client::builder()
        .deadline_ms(DEADLINE_MS)
        .connect(handle.addr())
        .expect("connect");
    let text = graph_text(&db, &query);
    let started = std::time::Instant::now();
    let response = client.query(&text).expect("response");
    assert!(matches!(response, Response::Expired { .. }), "{response:?}");
    // The abort happened promptly: well before a full scan would finish
    // (the probe proved a full scan outlives the deadline), bounded by
    // deadline + one wave of solver calls.
    assert!(
        started.elapsed() >= Duration::from_millis(DEADLINE_MS / 2),
        "a mid-scan abort cannot beat the deadline by much: {:?}",
        started.elapsed()
    );

    let stats = Value::parse(&handle.stats_json()).expect("stats JSON");
    let count = |k: &str| stats.get(k).and_then(Value::as_f64).expect(k);
    assert_eq!(count("cancelled"), 1.0, "{stats:?}");
    assert_eq!(
        count("deadline_expired"),
        0.0,
        "the abort must be mid-evaluation, not in-queue: {stats:?}"
    );
    handle.shutdown();
    handle.join();
}

#[test]
fn deadline_zero_expires_in_queue() {
    let (db, queries) = workload_db(10, 0xDEAD);
    let db = Arc::new(db);
    let handle = serve(
        Arc::clone(&db),
        QueryOptions::default(),
        ServerConfig::default(),
    )
    .expect("bind loopback");
    // A 0 ms deadline is already expired when the dispatcher pops it.
    let mut client = Client::builder()
        .deadline_ms(0)
        .connect(handle.addr())
        .expect("connect");
    let text = graph_text(&db, &queries[0]);
    let response = client.query(&text).expect("response");
    assert!(matches!(response, Response::Expired { .. }), "{response:?}");
    handle.shutdown();
    handle.join();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Cache hits never change answers: for random workloads, random
    /// query picks and random option sets, the cached response payload is
    /// byte-identical to the fresh evaluation — which itself matches the
    /// single-threaded oracle (skyline *and* witnesses, since both are
    /// part of the serialized document).
    #[test]
    fn cache_hits_are_byte_identical_to_fresh_evaluation(
        seed in any::<u64>(),
        size in 6usize..16,
        pick in any::<usize>(),
        prefilter in any::<bool>(),
        approx in any::<bool>(),
    ) {
        let (db, queries) = workload_db(size, seed);
        let db = Arc::new(db);
        let handle = serve(
            Arc::clone(&db),
            QueryOptions::default(),
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback");
        let mut builder = Client::builder();
        if prefilter { builder = builder.prefilter(true); }
        if approx { builder = builder.approx(true); }
        let mut client = builder.connect(handle.addr()).expect("connect");

        let query = &queries[pick % queries.len()];
        let mut options = QueryOptions { prefilter, ..QueryOptions::default() };
        if approx {
            options.solvers = SolverConfig { ged: GedMode::Bipartite, mcs: McsMode::Greedy };
        }

        let text = graph_text(&db, query);
        let fresh = match client.query(&text).expect("fresh") {
            Response::Result { cached, result, .. } => {
                prop_assert!(!cached, "first evaluation cannot be a hit");
                result
            }
            other => return Err(TestCaseError(format!("fresh: {other:?}"))),
        };
        let hit = match client.query(&text).expect("hit") {
            Response::Result { cached, result, .. } => {
                prop_assert!(cached, "replay must hit the cache");
                result
            }
            other => return Err(TestCaseError(format!("hit: {other:?}"))),
        };

        prop_assert_eq!(&hit, &fresh, "cache hit changed the bytes");
        prop_assert_eq!(&fresh, &oracle(&db, query, &options), "served != oracle");

        handle.shutdown();
        handle.join();
    }
}
