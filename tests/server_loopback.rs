//! End-to-end loopback tests for the `gss-server` serving subsystem.
//!
//! The core guarantees under test:
//!
//! 1. **Concurrent correctness** — N client threads hammering one server
//!    receive, for every query, a result document byte-identical to the
//!    single-threaded oracle (`graph_similarity_skyline` + `to_json`,
//!    compacted by the same `jsonio` writer).
//! 2. **Cache identity** — repeated queries are answered from the result
//!    cache (`"cached":true`) with payloads byte-identical to the fresh
//!    evaluation, across random workloads and option sets (property
//!    test).
//! 3. **Protocol behavior** — stats counters, graceful drain.

use std::sync::Arc;

use proptest::prelude::*;
use similarity_skyline::core::jsonio::Value;
use similarity_skyline::datasets::workload::{Workload, WorkloadConfig, WorkloadKind};
use similarity_skyline::prelude::*;
use similarity_skyline::server::{serve, Client, ServerConfig};

/// The single-threaded oracle: what the server must serve, byte for byte.
fn oracle(db: &GraphDatabase, query: &Graph, options: &QueryOptions) -> String {
    let result = similarity_skyline::core::graph_similarity_skyline(
        db,
        query,
        &QueryOptions {
            threads: 1,
            ..options.clone()
        },
    );
    Value::parse(&similarity_skyline::core::to_json(db, &result))
        .expect("explain output is valid JSON")
        .to_compact()
}

fn workload_db(size: usize, seed: u64) -> (GraphDatabase, Vec<Graph>) {
    let w = Workload::generate(&WorkloadConfig {
        kind: WorkloadKind::Molecule,
        database_size: size,
        graph_vertices: 6,
        related_fraction: 0.4,
        max_edits: 3,
        seed,
    });
    let db = GraphDatabase::from_parts(w.vocab, w.graphs);
    // Queries: the planted query plus a handful of database members (their
    // skylines are nontrivial and they exercise the isomorphism
    // short-circuit).
    let mut queries = vec![w.query];
    for i in (0..db.len()).step_by(db.len().div_ceil(4).max(1)) {
        queries.push(db.get(GraphId(i)).clone());
    }
    (db, queries)
}

fn graph_text(db: &GraphDatabase, g: &Graph) -> String {
    similarity_skyline::graph::format::write_database(std::slice::from_ref(g), db.vocab())
}

#[test]
fn concurrent_clients_match_the_single_threaded_oracle() {
    let (db, queries) = workload_db(24, 0xBEEF);
    let db = Arc::new(db);
    let handle = serve(
        Arc::clone(&db),
        QueryOptions::default(),
        ServerConfig {
            workers: 3,
            batch_max: 4,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = handle.addr();

    // Oracle answers per (query, options) pair, computed once up front.
    let option_sets: Vec<(&str, QueryOptions)> = vec![
        ("", QueryOptions::default()),
        (
            "{\"prefilter\":true}",
            QueryOptions {
                prefilter: true,
                ..QueryOptions::default()
            },
        ),
    ];
    let expected: Vec<Vec<String>> = option_sets
        .iter()
        .map(|(_, opts)| queries.iter().map(|q| oracle(&db, q, opts)).collect())
        .collect();

    // ≥ 4 concurrent clients, each issuing every (query, options) pair
    // twice in its own order — plenty of cache hits and batch overlap.
    const CLIENTS: usize = 6;
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let db = &db;
            let queries = &queries;
            let option_sets = &option_sets;
            let expected = &expected;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                for round in 0..2 {
                    for (oi, (options_json, _)) in option_sets.iter().enumerate() {
                        for qi in 0..queries.len() {
                            // Stagger the order per client so batches mix
                            // different queries and option groups.
                            let qi = (qi + c + round) % queries.len();
                            let text = graph_text(db, &queries[qi]);
                            let response = client.query_text(&text, options_json).expect("query");
                            assert_eq!(
                                response.get("ok"),
                                Some(&Value::Bool(true)),
                                "client {c}: {response:?}"
                            );
                            let served =
                                response.get("result").expect("result payload").to_compact();
                            assert_eq!(
                                served, expected[oi][qi],
                                "client {c} round {round} query {qi} options {options_json:?}"
                            );
                        }
                    }
                }
            });
        }
    });

    // Traffic shape: every query answered, cache hits happened, and the
    // dispatcher actually micro-batched (batched queries ≥ batches ≥ 1).
    let stats = Value::parse(&handle.stats_json()).expect("stats JSON");
    let count = |k: &str| stats.get(k).and_then(Value::as_f64).expect(k);
    let total = (CLIENTS * 2 * option_sets.len() * queries.len()) as f64;
    assert_eq!(count("queries"), total);
    assert!(count("cache_hits") > 0.0, "{stats:?}");
    assert_eq!(count("rejected"), 0.0, "{stats:?}");
    assert!(count("batches") >= 1.0);
    assert!(count("batched_queries") >= count("batches"));
    assert_eq!(
        count("cache_hits") + count("cache_misses"),
        total,
        "{stats:?}"
    );

    handle.shutdown();
    let final_stats = handle.join();
    assert!(final_stats.contains("\"draining\":true"), "{final_stats}");
}

#[test]
fn stats_and_drain_protocol() {
    let (db, queries) = workload_db(10, 0x51A7);
    let db = Arc::new(db);
    let handle = serve(
        Arc::clone(&db),
        QueryOptions::default(),
        ServerConfig::default(),
    )
    .expect("bind loopback");

    let mut client = Client::connect(handle.addr()).expect("connect");
    assert_eq!(
        client.ping().expect("ping").get("ok"),
        Some(&Value::Bool(true))
    );
    let text = graph_text(&db, &queries[0]);
    client.query_text(&text, "").expect("query");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.get("queries").and_then(Value::as_f64), Some(1.0));
    assert_eq!(stats.get("draining"), Some(&Value::Bool(false)));
    // Totals flow through from the engine's BatchStats aggregation.
    let totals = stats.get("totals").expect("totals");
    assert_eq!(
        totals.get("candidates").and_then(Value::as_f64),
        Some(db.len() as f64)
    );

    // Shutdown over the wire: acknowledged; cached queries may still be
    // served (drain stops admission of *work*, and a hit costs nothing),
    // but anything needing evaluation is refused with backpressure.
    let ack = client.shutdown().expect("shutdown");
    assert_eq!(ack.get("draining"), Some(&Value::Bool(true)));
    let still_cached = client.query_text(&text, "");
    if let Ok(v) = &still_cached {
        assert_eq!(v.get("cached"), Some(&Value::Bool(true)), "{v:?}");
    }
    let uncached = client.query_text(&graph_text(&db, &queries[1]), "{\"prefilter\":true}");
    // (An Err here would mean the connection was already torn down —
    // also a valid drain outcome.)
    if let Ok(v) = uncached {
        assert_eq!(v.get("ok"), Some(&Value::Bool(false)), "{v:?}");
        assert!(
            v.get("retry_after_ms").is_some(),
            "drain refusals carry the backpressure hint: {v:?}"
        );
    }
    let final_stats = handle.join();
    assert!(final_stats.contains("\"draining\":true"), "{final_stats}");
}

#[test]
fn deadline_aborts_a_long_query_mid_evaluation() {
    use similarity_skyline::core::{try_graph_similarity_skyline, CancelToken, Plan};
    use std::time::{Duration, Instant};

    const DEADLINE_MS: u64 = 200;
    // Grow the workload until a naive single-threaded scan provably
    // outlives the deadline *in this build mode*: the probe itself runs
    // through the executor with a deadline-armed CancelToken and must be
    // aborted mid-scan. This keeps the server half of the test
    // deterministic on fast and slow machines alike.
    let naive = QueryOptions {
        plan: Plan::Naive,
        ..QueryOptions::default()
    };
    let mut size = 30;
    let calibrated = loop {
        let w = Workload::generate(&WorkloadConfig {
            kind: WorkloadKind::Molecule,
            database_size: size,
            graph_vertices: 7,
            related_fraction: 0.3,
            max_edits: 4,
            seed: 0xABBA,
        });
        let db = GraphDatabase::from_parts(w.vocab, w.graphs);
        let token = CancelToken::with_deadline(Instant::now() + Duration::from_millis(DEADLINE_MS));
        let aborted = try_graph_similarity_skyline(&db, &w.query, &naive, &token).is_err();
        if aborted || size >= 122_880 {
            assert!(
                aborted,
                "even a {size}-graph naive scan finished in {DEADLINE_MS} ms"
            );
            break size;
        }
        size *= 2;
    };
    // Margin against CPU contention: with the whole suite running in
    // parallel the probe can calibrate small (the contended scan is
    // slow), yet the server evaluates later with the machine otherwise
    // idle. A 4× larger database keeps the server-side scan past the
    // deadline even at uncontended speed.
    let w = Workload::generate(&WorkloadConfig {
        kind: WorkloadKind::Molecule,
        database_size: calibrated * 4,
        graph_vertices: 7,
        related_fraction: 0.3,
        max_edits: 4,
        seed: 0xABBA,
    });
    let db = GraphDatabase::from_parts(w.vocab, w.graphs);
    let query = w.query;

    // The server evaluates the same scan (per-query single-threaded);
    // the request's deadline passes while it is being evaluated, so the
    // engine's CancelToken aborts it at a wave checkpoint and the client
    // gets the deadline error — counted as `cancelled`, not as the
    // in-queue `deadline_expired`.
    let db = Arc::new(db);
    let handle = serve(
        Arc::clone(&db),
        naive,
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let text = graph_text(&db, &query);
    let started = Instant::now();
    let line = format!(
        "{{\"op\":\"query\",\"graph\":\"{}\",\"deadline_ms\":{DEADLINE_MS}}}",
        similarity_skyline::core::jsonio::escape(&text)
    );
    let response = client.send(&line).expect("response");
    assert_eq!(
        response.get("ok"),
        Some(&Value::Bool(false)),
        "{response:?}"
    );
    assert_eq!(
        response.get("error").and_then(Value::as_str),
        Some("deadline exceeded")
    );
    // The abort happened promptly: well before a full scan would finish
    // (the probe proved a full scan outlives the deadline), bounded by
    // deadline + one wave of solver calls.
    assert!(
        started.elapsed() >= Duration::from_millis(DEADLINE_MS / 2),
        "a mid-scan abort cannot beat the deadline by much: {:?}",
        started.elapsed()
    );

    let stats = Value::parse(&handle.stats_json()).expect("stats JSON");
    let count = |k: &str| stats.get(k).and_then(Value::as_f64).expect(k);
    assert_eq!(count("cancelled"), 1.0, "{stats:?}");
    assert_eq!(
        count("deadline_expired"),
        0.0,
        "the abort must be mid-evaluation, not in-queue: {stats:?}"
    );
    handle.shutdown();
    handle.join();
}

#[test]
fn deadline_zero_expires_in_queue() {
    let (db, queries) = workload_db(10, 0xDEAD);
    let db = Arc::new(db);
    let handle = serve(
        Arc::clone(&db),
        QueryOptions::default(),
        ServerConfig::default(),
    )
    .expect("bind loopback");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let text = graph_text(&db, &queries[0]);
    // A 0 ms deadline is already expired when the dispatcher pops it.
    let line = format!(
        "{{\"op\":\"query\",\"graph\":\"{}\",\"deadline_ms\":0}}",
        similarity_skyline::core::jsonio::escape(&text)
    );
    let response = client.send(&line).expect("response");
    assert_eq!(
        response.get("ok"),
        Some(&Value::Bool(false)),
        "{response:?}"
    );
    assert_eq!(
        response.get("error").and_then(Value::as_str),
        Some("deadline exceeded")
    );
    handle.shutdown();
    handle.join();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Cache hits never change answers: for random workloads, random
    /// query picks and random option sets, the cached response payload is
    /// byte-identical to the fresh evaluation — which itself matches the
    /// single-threaded oracle (skyline *and* witnesses, since both are
    /// part of the serialized document).
    #[test]
    fn cache_hits_are_byte_identical_to_fresh_evaluation(
        seed in any::<u64>(),
        size in 6usize..16,
        pick in any::<usize>(),
        prefilter in any::<bool>(),
        approx in any::<bool>(),
    ) {
        let (db, queries) = workload_db(size, seed);
        let db = Arc::new(db);
        let handle = serve(
            Arc::clone(&db),
            QueryOptions::default(),
            ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        )
        .expect("bind loopback");
        let mut client = Client::connect(handle.addr()).expect("connect");

        let query = &queries[pick % queries.len()];
        let mut parts = Vec::new();
        if prefilter { parts.push("\"prefilter\":true"); }
        if approx { parts.push("\"approx\":true"); }
        let options_json = if parts.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", parts.join(","))
        };
        let mut options = QueryOptions { prefilter, ..QueryOptions::default() };
        if approx {
            options.solvers = SolverConfig { ged: GedMode::Bipartite, mcs: McsMode::Greedy };
        }

        let text = graph_text(&db, query);
        let fresh = client.query_text(&text, &options_json).expect("fresh");
        prop_assert_eq!(fresh.get("cached"), Some(&Value::Bool(false)));
        let hit = client.query_text(&text, &options_json).expect("hit");
        prop_assert_eq!(hit.get("cached"), Some(&Value::Bool(true)));

        let fresh_payload = fresh.get("result").expect("payload").to_compact();
        let hit_payload = hit.get("result").expect("payload").to_compact();
        prop_assert_eq!(&hit_payload, &fresh_payload, "cache hit changed the bytes");
        prop_assert_eq!(&fresh_payload, &oracle(&db, query, &options), "served != oracle");

        handle.shutdown();
        handle.join();
    }
}
