//! Quickstart: build a small graph database, run a similarity-skyline query,
//! inspect the compound-similarity vectors, and refine the answer set.
//!
//! Run with: `cargo run --example quickstart`

use similarity_skyline::prelude::*;

fn main() {
    // A database of five small labeled graphs. Labels are interned in the
    // database's vocabulary, so everything stays comparable.
    let mut db = GraphDatabase::new();
    db.add("ring", |b| {
        b.vertices(&["a", "b", "c", "d"], "C")
            .cycle(&["a", "b", "c", "d"], "-")
    })
    .unwrap();
    db.add("chain", |b| {
        b.vertices(&["a", "b", "c", "d"], "C")
            .path(&["a", "b", "c", "d"], "-")
    })
    .unwrap();
    db.add("branched", |b| {
        b.vertices(&["a", "b", "c", "d"], "C")
            .path(&["a", "b", "c"], "-")
            .edge("b", "d", "-")
    })
    .unwrap();
    db.add("with-oxygen", |b| {
        b.vertices(&["a", "b", "c"], "C")
            .vertex("o", "O")
            .path(&["a", "b", "c"], "-")
            .edge("c", "o", "=")
    })
    .unwrap();
    db.add("tiny", |b| b.vertices(&["a", "b"], "C").edge("a", "b", "-"))
        .unwrap();

    // The query: a 4-carbon chain.
    let query = db
        .build_query("query", |b| {
            b.vertices(&["w", "x", "y", "z"], "C")
                .path(&["w", "x", "y", "z"], "-")
        })
        .unwrap();

    // Compound similarity = (DistEd, DistMcs, DistGu); the skyline keeps
    // every graph not dominated on all three at once.
    let options = QueryOptions::default();
    let result = graph_similarity_skyline(&db, &query, &options);

    println!("GCS vectors (lower is more similar):");
    println!(
        "{:<14} {:>8} {:>8} {:>8}  in skyline?",
        "graph", "DistEd", "DistMcs", "DistGu"
    );
    for (i, gcs) in result.gcs.iter().enumerate() {
        let id = GraphId(i);
        println!(
            "{:<14} {:>8.2} {:>8.2} {:>8.2}  {}",
            db.get(id).name(),
            gcs.values[0],
            gcs.values[1],
            gcs.values[2],
            if result.contains(id) { "yes" } else { "no" }
        );
    }

    println!("\nSimilarity skyline:");
    for id in &result.skyline {
        println!("  {}", db.get(*id).name());
    }
    println!("\nWhy the others were excluded:");
    for w in &result.dominated {
        println!(
            "  {} is dominated by {}",
            db.get(w.graph).name(),
            db.get(w.dominator).name()
        );
    }

    // Contrast with a classical single-measure top-2.
    let top2 = top_k_by_measure(
        &db,
        &query,
        MeasureKind::EditDistance,
        2,
        &SolverConfig::default(),
        1,
    );
    println!("\nTop-2 by edit distance alone:");
    for s in &top2 {
        println!("  {} (DistEd = {})", db.get(s.id).name(), s.distance);
    }

    // Diversity refinement: the 2 most mutually-dissimilar skyline members.
    if result.skyline.len() > 2 {
        let refined = refine_skyline(&db, &result.skyline, 2, &RefineOptions::default())
            .expect("skyline is small enough for exact refinement");
        println!("\nMost diverse pair of skyline answers:");
        for id in &refined.selected {
            println!("  {}", db.get(*id).name());
        }
    }
}
