//! Chemical-compound similarity search — the workload class the paper's
//! introduction motivates (chemical compounds, bioinformatics).
//!
//! Generates a deterministic database of molecule-like graphs, plants a few
//! near-variants of the query, then compares:
//!
//! 1. the similarity skyline (compound measure), and
//! 2. single-measure top-k retrieval,
//!
//! showing how the skyline surfaces Pareto trade-offs a single score hides.
//!
//! Run with: `cargo run --example chemical_search`

use gss_datasets::workload::{Workload, WorkloadConfig, WorkloadKind};
use similarity_skyline::prelude::*;

fn main() {
    let cfg = WorkloadConfig {
        kind: WorkloadKind::Molecule,
        database_size: 24,
        graph_vertices: 7,
        related_fraction: 0.4,
        max_edits: 4,
        seed: 0xC0FFEE,
    };
    let w = Workload::generate(&cfg);
    let mut db = GraphDatabase::from_parts(w.vocab, w.graphs);
    println!(
        "database: {} molecule-like graphs ({} derived from the query)",
        db.len(),
        w.planted.len()
    );
    println!(
        "query: {} atoms, {} bonds\n",
        w.query.order(),
        w.query.size()
    );

    let options = QueryOptions {
        threads: 4,
        ..QueryOptions::default()
    };
    let result = graph_similarity_skyline(&db, &w.query, &options);

    println!("similarity skyline ({} members):", result.skyline.len());
    println!(
        "  {:<12} {:>7} {:>8} {:>8}",
        "graph", "DistEd", "DistMcs", "DistGu"
    );
    for id in &result.skyline {
        let gcs = &result.gcs[id.index()];
        println!(
            "  {:<12} {:>7.1} {:>8.3} {:>8.3}",
            db.get(*id).name(),
            gcs.values[0],
            gcs.values[1],
            gcs.values[2]
        );
    }

    // How many planted near-matches does each approach recover?
    let planted: Vec<GraphId> = w.planted.iter().map(|&(i, _)| GraphId(i)).collect();
    let k = result.skyline.len();
    let in_skyline = planted.iter().filter(|p| result.contains(**p)).count();
    println!(
        "\nplanted near-matches in the skyline: {in_skyline}/{}",
        planted.len()
    );

    for measure in [MeasureKind::EditDistance, MeasureKind::Mcs, MeasureKind::Gu] {
        let top = top_k_by_measure(&db, &w.query, measure, k, &SolverConfig::default(), 4);
        let hits = top.iter().filter(|s| planted.contains(&s.id)).count();
        println!(
            "planted near-matches in top-{k} by {} alone: {hits}/{}",
            measure.name(),
            planted.len()
        );
    }

    // Refine to a diverse short list for a chemist to eyeball.
    let k = 3.min(result.skyline.len());
    if result.skyline.len() > k && k >= 2 {
        let refined = refine_skyline(&db, &result.skyline, k, &RefineOptions::default()).unwrap();
        println!("\ndiverse {k}-subset of the skyline:");
        for id in &refined.selected {
            println!("  {}", db.get(*id).name());
        }
        if refined.evaluation.tied.len() > 1 {
            println!(
                "  ({} subsets tied on rank-sum)",
                refined.evaluation.tied.len()
            );
        }
    }

    // Export the query in DOT for visual inspection.
    println!("\nquery graph (Graphviz DOT):");
    // Rebuild access to the vocabulary through the database.
    print!("{}", gss_graph::format::to_dot(&w.query, db.vocab_mut()));
}
