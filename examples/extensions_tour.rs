//! Tour of the extensions this library adds beyond the paper:
//!
//! * the **k-skyband** relaxation (answer sets between "skyline" and "all");
//! * a fourth GCS dimension, the **label-histogram distance** (`DistLH`);
//! * **non-uniform edit-cost models** and their effect on the skyline.
//!
//! Run with: `cargo run --example extensions_tour`

use similarity_skyline::core::graph_similarity_skyband;
use similarity_skyline::datasets::paper::figure3_database;
use similarity_skyline::prelude::*;

fn main() {
    let data = figure3_database();
    let mut db = GraphDatabase::from_parts(data.vocab, data.graphs);
    let q = data.query;

    // --- k-skyband: relax the skyline gradually -------------------------
    println!("k-skyband of the paper's Fig. 3 query:");
    for k in 1..=3 {
        let band = graph_similarity_skyband(&db, &q, k, &QueryOptions::default());
        let names: Vec<String> = band
            .members
            .iter()
            .map(|g| format!("g{}", g.index() + 1))
            .collect();
        println!("  k = {k}: {names:?} (plan: {})", band.plan.name());
    }
    println!("  (k = 1 is exactly GSS(D, q); each step admits graphs with one more dominator)\n");

    // --- a fourth dimension: DistLH --------------------------------------
    let four_dim = QueryOptions {
        measures: vec![
            MeasureKind::EditDistance,
            MeasureKind::Mcs,
            MeasureKind::Gu,
            MeasureKind::LabelHistogram,
        ],
        ..Default::default()
    };
    let r3 = graph_similarity_skyline(&db, &q, &QueryOptions::default());
    let r4 = graph_similarity_skyline(&db, &q, &four_dim);
    println!(
        "skyline with the paper's 3 measures : {} members",
        r3.skyline.len()
    );
    println!(
        "skyline with DistLH as 4th measure  : {} members",
        r4.skyline.len()
    );
    println!("  DistLH is a structure-free O(|V|+|E|) histogram distance — extra");
    println!("  dimensions can admit new Pareto-optimal answers, never invalidate");
    println!("  strictly-better ones.\n");

    // --- cost models ------------------------------------------------------
    println!("edit distance of g5 vs q under different cost models:");
    let g5 = db.get(GraphId(4)).clone();
    for (name, cost) in [
        ("uniform (paper)", CostModel::uniform()),
        ("structure 2x", CostModel::structure_weighted(2.0)),
        ("structure 4x", CostModel::structure_weighted(4.0)),
    ] {
        let r = similarity_skyline::ged::exact_ged(
            &g5,
            &q,
            &similarity_skyline::ged::GedOptions {
                cost,
                ..Default::default()
            },
        );
        println!("  {name:<18} GED = {}", r.cost);
    }
    println!("  (g5 differs from q by one relabel and two insertions, so its GED");
    println!("  grows as 3, 5, 9 with the structural weight.)\n");

    // --- the gss CLI ------------------------------------------------------
    println!("the same analyses are scriptable via the `gss` binary:");
    println!("  cargo run -p gss-cli --bin gss -- query --db my.gdb --query-name q --refine 2");
    println!("  cargo run -p gss-cli --bin gss -- skyband --db my.gdb --query-name q --k 2");
    let _ = db.vocab_mut(); // keep the database mutable-borrow-checked in the example
}
