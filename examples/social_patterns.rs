//! Social-network pattern retrieval — another application class from the
//! paper's introduction (community mining, social networks).
//!
//! Vertices are people labeled by role, edges by relationship kind. We look
//! for interaction patterns similar to a "manager brokering two teams"
//! query, under approximate solvers (bipartite GED + greedy MCS) as one
//! would on larger graphs, and check how the approximation changes the
//! skyline versus the exact solvers — the A2 ablation in miniature.
//!
//! Run with: `cargo run --example social_patterns`

use similarity_skyline::prelude::*;

fn team(db: &mut GraphDatabase, name: &str, members: usize, bridged: bool) -> GraphId {
    db.add(name, |mut b| {
        b = b.vertex("mgr", "manager");
        for i in 0..members {
            let who = format!("e{i}");
            b = b.vertex(&who, "engineer").edge("mgr", &who, "reports");
        }
        // Engineers collaborate in a chain.
        for i in 1..members {
            b = b.edge(&format!("e{}", i - 1), &format!("e{i}"), "collab");
        }
        if bridged {
            b = b.vertex("ext", "manager").edge("mgr", "ext", "peers");
        }
        b
    })
    .unwrap()
}

fn main() {
    let mut db = GraphDatabase::new();
    team(&mut db, "team-of-3", 3, false);
    team(&mut db, "team-of-4", 4, false);
    team(&mut db, "bridged-3", 3, true);
    team(&mut db, "bridged-5", 5, true);
    db.add("committee", |b| {
        b.vertices(&["m1", "m2", "m3"], "manager")
            .cycle(&["m1", "m2", "m3"], "peers")
    })
    .unwrap();
    db.add("pair", |b| {
        b.vertex("mgr", "manager")
            .vertex("e", "engineer")
            .edge("mgr", "e", "reports")
    })
    .unwrap();

    let query = db
        .build_query("query", |b| {
            b.vertex("mgr", "manager")
                .vertices(&["a", "b", "c"], "engineer")
                .edge("mgr", "a", "reports")
                .edge("mgr", "b", "reports")
                .edge("mgr", "c", "reports")
                .edge("a", "b", "collab")
                .vertex("peer", "manager")
                .edge("mgr", "peer", "peers")
        })
        .unwrap();

    let exact = graph_similarity_skyline(&db, &query, &QueryOptions::default());
    let approx = graph_similarity_skyline(
        &db,
        &query,
        &QueryOptions {
            solvers: SolverConfig {
                ged: GedMode::Bipartite,
                mcs: McsMode::Greedy,
            },
            ..QueryOptions::default()
        },
    );

    println!("query: manager with three reports (two collaborating) + peer manager\n");
    println!(
        "{:<12} {:>7} {:>8} {:>8}   {:<10} {:<10}",
        "graph", "DistEd", "DistMcs", "DistGu", "exact-sky", "approx-sky"
    );
    for (i, gcs) in exact.gcs.iter().enumerate() {
        let id = GraphId(i);
        println!(
            "{:<12} {:>7.1} {:>8.3} {:>8.3}   {:<10} {:<10}",
            db.get(id).name(),
            gcs.values[0],
            gcs.values[1],
            gcs.values[2],
            if exact.contains(id) { "yes" } else { "-" },
            if approx.contains(id) { "yes" } else { "-" },
        );
    }

    let flips = (0..db.len())
        .filter(|&i| exact.contains(GraphId(i)) != approx.contains(GraphId(i)))
        .count();
    println!("\nskyline membership flips under approximate solvers: {flips}");
    println!("(approximate GED can only over-estimate, approximate MCS only under-estimate —");
    println!(" both push borderline graphs out of, or into, the skyline.)");
}
