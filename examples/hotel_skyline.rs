//! The classic relational skyline (the paper's Example 1) plus the related
//! operators this workspace ships: k-skyband and top-k dominating queries.
//!
//! Run with: `cargo run --example hotel_skyline`

use gss_datasets::paper::hotels;
use gss_skyline::{k_skyband, naive_skyline, sfs_skyline, top_k_dominating};

fn main() {
    let (names, rows) = hotels();

    println!("hotels (price in 100€, distance to beach in km):");
    for (i, n) in names.iter().enumerate() {
        println!("  {n}: ({}, {})", rows[i][0], rows[i][1]);
    }

    let sky = naive_skyline(&rows);
    println!("\nskyline (Pareto-optimal hotels):");
    for &i in &sky {
        println!("  {}", names[i]);
    }
    assert_eq!(sky, sfs_skyline(&rows), "all algorithms agree");

    println!("\n2-skyband (dominated by at most one other hotel):");
    for i in k_skyband(&rows, 2) {
        println!("  {}", names[i]);
    }

    println!("\ntop-2 dominating (hotels that dominate the most others):");
    for i in top_k_dominating(&rows, 2) {
        println!("  {}", names[i]);
    }

    println!(
        "\nnote: H7 dominates 2 hotels yet is NOT in the skyline (H6 beats it) —\n\
         dominance count and Pareto-optimality answer different questions."
    );
}
