//! Walks through every worked example of the paper, end to end, printing
//! each table next to the published values.
//!
//! Run with: `cargo run --example paper_walkthrough`
//!
//! * Example 1 / Table I — the hotel skyline;
//! * Examples 2–4 / Figs. 1–2 — the measure walkthrough on the
//!   reconstructed pair, including the explicit optimal edit script;
//! * Section VI / Tables II–III — the graph database, the GCS matrix, the
//!   similarity skyline and its dominance explanations;
//! * Section VII / Tables IV–V — the diversity refinement.

use gss_core::{
    graph_similarity_skyline, refine_skyline, top_k_by_measure, GraphDatabase, GraphId,
    MeasureKind, QueryOptions, RefineOptions, SolverConfig,
};
use gss_datasets::paper::{expected, figure1_pair, figure3_database, hotels};
use gss_ged::{bipartite::bipartite_ged, edit_path_for_mapping, exact_ged, CostModel, GedOptions};
use gss_mcs::{maximum_common_subgraph, Objective};
use gss_skyline::{skyline, Algorithm};

fn main() {
    hotel_example();
    figure1_example();
    section6_example();
    section7_example();
}

fn hotel_example() {
    println!("=== Example 1 / Table I: hotel skyline ===");
    let (names, rows) = hotels();
    let sky = skyline(&rows, Algorithm::Bnl);
    for (i, name) in names.iter().enumerate() {
        println!(
            "  {name}: price {:>4}  distance {:>5}  {}",
            rows[i][0],
            rows[i][1],
            if sky.contains(&i) { "← skyline" } else { "" }
        );
    }
    let got: Vec<&str> = sky.iter().map(|&i| names[i]).collect();
    println!("  skyline = {got:?} (paper: [H2, H4, H6])\n");
}

fn figure1_example() {
    println!("=== Examples 2–4 / Figs. 1–2: the three measures ===");
    let pair = figure1_pair();
    let cost = CostModel::uniform();
    let warm = bipartite_ged(&pair.left, &pair.right, &cost);
    let ged = exact_ged(
        &pair.left,
        &pair.right,
        &GedOptions {
            cost,
            warm_start: Some(warm.mapping),
            node_limit: None,
        },
    );
    println!("  DistEd(g1, g2) = {} (paper: 4)", ged.cost);
    println!("  optimal edit script:");
    for op in edit_path_for_mapping(&pair.left, &pair.right, &ged.mapping) {
        println!("    - {}", op.kind());
    }
    let mcs = maximum_common_subgraph(&pair.left, &pair.right, Objective::Edges);
    let m = mcs.edges() as f64;
    println!("  |mcs(g1, g2)| = {} (paper: 4)", mcs.edges());
    println!("  DistMcs = 1 - {m}/6 = {:.2} (paper: 0.33)", 1.0 - m / 6.0);
    println!(
        "  DistGu  = 1 - {m}/(6+6-{m}) = {:.2} (paper: 0.50)",
        1.0 - m / (12.0 - m)
    );
    println!("  mcs as a graph (Fig. 2):");
    let sub = mcs.as_graph(&pair.left);
    print!("{}", gss_graph::format::to_dot(&sub, &pair.vocab));
    println!();
}

fn section6_example() {
    println!("=== Section VI / Tables II–III: the similarity skyline ===");
    let data = figure3_database();
    let db = GraphDatabase::from_parts(data.vocab, data.graphs);
    let result = graph_similarity_skyline(&db, &data.query, &QueryOptions::default());

    println!(
        "  {:<4} {:>4} {:>7} {:>8} {:>8}  skyline?",
        "g", "|g|", "DistEd", "DistMcs", "DistGu"
    );
    for (i, gcs) in result.gcs.iter().enumerate() {
        println!(
            "  g{:<3} {:>4} {:>7} {:>8.2} {:>8.2}  {}",
            i + 1,
            db.get(GraphId(i)).size(),
            gcs.values[0],
            gcs.values[1],
            gcs.values[2],
            if result.contains(GraphId(i)) {
                "yes"
            } else {
                "no"
            }
        );
    }
    let sky: Vec<String> = result
        .skyline
        .iter()
        .map(|g| format!("g{}", g.index() + 1))
        .collect();
    println!("  GSS(D, q) = {sky:?} (paper: [g1, g4, g5, g7])");
    for w in &result.dominated {
        println!(
            "  g{} is dominated by g{}",
            w.graph.index() + 1,
            w.dominator.index() + 1
        );
    }

    println!("  contrast — top-3 by edit distance alone:");
    let top3 = top_k_by_measure(
        &db,
        &data.query,
        MeasureKind::EditDistance,
        3,
        &SolverConfig::default(),
        1,
    );
    for s in &top3 {
        println!("    g{} (DistEd {})", s.id.index() + 1, s.distance);
    }
    println!("  note: g3 appears here but is NOT Pareto-optimal (g5 does better).\n");
}

fn section7_example() {
    println!("=== Section VII / Tables IV–V: diversity refinement ===");
    let data = figure3_database();
    let db = GraphDatabase::from_parts(data.vocab, data.graphs);
    let members: Vec<GraphId> = expected::SKYLINE.iter().map(|&i| GraphId(i)).collect();
    let refined = refine_skyline(&db, &members, 2, &RefineOptions::default()).unwrap();

    println!(
        "  {:<12} {:>6} {:>6} {:>6} | {:>2} {:>2} {:>2} | val",
        "S", "v1", "v2", "v3", "r1", "r2", "r3"
    );
    for cand in &refined.evaluation.candidates {
        let names: Vec<String> = cand
            .members
            .iter()
            .map(|&i| format!("g{}", members[i].index() + 1))
            .collect();
        println!(
            "  {:<12} {:>6.2} {:>6.2} {:>6.2} | {:>2} {:>2} {:>2} | {}",
            format!("{{{}}}", names.join(",")),
            cand.diversity[0],
            cand.diversity[1],
            cand.diversity[2],
            cand.ranks[0],
            cand.ranks[1],
            cand.ranks[2],
            cand.val
        );
    }
    let sel: Vec<String> = refined
        .selected
        .iter()
        .map(|g| format!("g{}", g.index() + 1))
        .collect();
    println!("  refined subset 𝕊 = {sel:?} (paper: [g1, g4])");
}
