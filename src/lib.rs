//! # similarity-skyline
//!
//! A Rust implementation of **similarity-skyline graph queries**, after
//! Katia Abbaci, Allel Hadjali, Ludovic Liétard and Daniel Rocacher,
//! *"A Similarity Skyline Approach for Handling Graph Queries — A
//! Preliminary Report"*, GDM workshop @ IEEE ICDE 2011.
//!
//! Instead of ranking graphs by a *single* similarity score, a query is
//! evaluated under a **vector** of local distance measures — graph edit
//! distance, MCS-based distance, graph-union (Jaccard) distance — and the
//! answer is the set of graphs that are *Pareto-optimal* with respect to
//! that vector: the **graph similarity skyline**. A diversity-based
//! refinement then extracts a small, maximally-diverse subset.
//!
//! This crate is a facade re-exporting the workspace stack:
//!
//! | crate | contents |
//! |-------|----------|
//! | [`graph`] (gss-graph) | labeled graphs, vocabulary, formats, RNG |
//! | [`iso`] (gss-iso) | VF2 (sub)graph isomorphism |
//! | [`mcs`] (gss-mcs) | exact/greedy connected maximum common subgraph |
//! | [`ged`] (gss-ged) | exact/bipartite/beam graph edit distance |
//! | [`skyline`] (gss-skyline) | generic Pareto skyline operators |
//! | [`diversity`] (gss-diversity) | rank-sum diversity refinement |
//! | [`core`] (gss-core) | measures, GCS, the GSS query engine |
//! | [`index`] (gss-index) | pivot-based metric index for sublinear scans |
//! | [`store`] (gss-store) | live mutation: epoch-based MVCC snapshots, incremental index maintenance, checksummed WAL + crash recovery, deterministic fault injection |
//! | [`protocol`] (gss-protocol) | the typed wire protocol: request/response envelopes, line codecs |
//! | [`server`] (gss-server) | concurrent query serving: event-driven front end, caching, admission control |
//! | [`datasets`] (gss-datasets) | paper datasets, generators, workloads |
//!
//! ## Quickstart
//!
//! ```
//! use similarity_skyline::prelude::*;
//!
//! // Build a tiny chemical-flavoured database.
//! let mut db = GraphDatabase::new();
//! db.add("ethanol-ish", |b| {
//!     b.vertices(&["c1", "c2"], "C").vertex("o", "O")
//!         .path(&["c1", "c2", "o"], "-")
//! }).unwrap();
//! db.add("acetaldehyde-ish", |b| {
//!     b.vertices(&["c1", "c2"], "C").vertex("o", "O")
//!         .edge("c1", "c2", "-").edge("c2", "o", "=")
//! }).unwrap();
//!
//! // Query: a two-carbon fragment with a single-bonded oxygen.
//! let q = db.build_query("q", |b| {
//!     b.vertices(&["x", "y"], "C").vertex("o", "O")
//!         .path(&["x", "y", "o"], "-")
//! }).unwrap();
//!
//! let result = graph_similarity_skyline(&db, &q, &QueryOptions::default());
//! assert!(result.contains(GraphId(0))); // exact match is Pareto-optimal
//! ```

#![warn(missing_docs)]

pub use gss_core as core;
pub use gss_datasets as datasets;
pub use gss_diversity as diversity;
pub use gss_ged as ged;
pub use gss_graph as graph;
pub use gss_index as index;
pub use gss_iso as iso;
pub use gss_mcs as mcs;
pub use gss_protocol as protocol;
pub use gss_server as server;
pub use gss_skyline as skyline;
pub use gss_store as store;

/// One-stop import for applications.
pub mod prelude {
    pub use gss_core::{
        graph_similarity_skyband, graph_similarity_skyline, graph_similarity_skyline_batch,
        refine_skyline, refine_skyline_greedy, top_k_by_measure, try_graph_similarity_skyline,
        CancelToken, Cancelled, GcsVector, GedMode, GraphDatabase, GraphId, GssResult, McsMode,
        MeasureKind, Plan, PruneStats, QueryOptions, RefineOptions, ResolvedPlan, SkybandResult,
        SolverConfig,
    };
    pub use gss_ged::{ged, CostModel};
    pub use gss_graph::{Graph, GraphBuilder, Label, Rng, Vocabulary};
    pub use gss_index::{PivotIndex, PivotIndexConfig};
    pub use gss_iso::{are_isomorphic, is_subgraph_isomorphic};
    pub use gss_mcs::mcs_edge_size;
    pub use gss_skyline::Algorithm;
    pub use gss_store::{GraphStore, MutationBatch, MutationReceipt, Snapshot, StoreConfig};
}
